#![warn(missing_docs)]
//! Contextual **qualitative** preferences.
//!
//! The paper (Section 6) contrasts its quantitative scoring model with
//! the qualitative approach of Chomicki-style preference formulas —
//! binary relations stating *this tuple is better than that one* — and
//! notes that "this framework can also be readily extended to include
//! context". This crate is that extension:
//!
//! * A [`ContextualPriority`] scopes a binary priority `better ≻ worse`
//!   (two attribute clauses) by a context descriptor, exactly the way
//!   Definition 5 scopes a score.
//! * A [`QualitativeProfile`] stores priorities, rejecting cycles per
//!   context state — the qualitative analogue of the Definition 6
//!   conflict check (a cyclic preference relation has no best matches).
//! * Query answering uses the same two-step context resolution:
//!   priorities whose context **covers** the query state apply, most
//!   specific first, and the classical **winnow** operator (best
//!   matches only) or its iteration ([`QualitativeProfile::rank`])
//!   orders the relation.
//!
//! ```
//! use ctxpref_context::{ContextEnvironment, ContextState, parse_descriptor};
//! use ctxpref_hierarchy::Hierarchy;
//! use ctxpref_profile::AttributeClause;
//! use ctxpref_qualitative::{ContextualPriority, QualitativeProfile};
//! use ctxpref_relation::{AttrType, Relation, Schema};
//!
//! let env = ContextEnvironment::new(vec![
//!     Hierarchy::flat("company", &["friends", "family"]).unwrap(),
//! ]).unwrap();
//! let schema = Schema::new(&[("type", AttrType::Str)]).unwrap();
//! let mut rel = Relation::new("poi", schema);
//! let ty = rel.schema().attr("type").unwrap();
//! rel.insert(vec!["museum".into()]).unwrap();
//! rel.insert(vec!["brewery".into()]).unwrap();
//!
//! let mut profile = QualitativeProfile::new(env.clone());
//! // "a museum may be a better place to visit than a brewery in the
//! // context of family" — the paper's own example, qualitatively.
//! profile.insert(ContextualPriority::new(
//!     parse_descriptor(&env, "company = family").unwrap(),
//!     AttributeClause::eq(ty, "museum".into()),
//!     AttributeClause::eq(ty, "brewery".into()),
//! )).unwrap();
//!
//! let family = ContextState::parse(&env, &["family"]).unwrap();
//! let best = profile.winnow(&rel, &family).unwrap();
//! assert_eq!(best, vec![0]); // the museum
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;

use ctxpref_context::{ContextDescriptor, ContextEnvironment, ContextState};
use ctxpref_profile::{AttributeClause, ProfileError};
use ctxpref_relation::Relation;

/// A contextual binary priority: in every context state of
/// `descriptor`, tuples matching `better` dominate tuples matching
/// `worse`.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextualPriority {
    descriptor: ContextDescriptor,
    better: AttributeClause,
    worse: AttributeClause,
}

impl ContextualPriority {
    /// A priority `better ≻ worse` scoped by `descriptor`.
    pub fn new(
        descriptor: ContextDescriptor,
        better: AttributeClause,
        worse: AttributeClause,
    ) -> Self {
        Self {
            descriptor,
            better,
            worse,
        }
    }

    /// The context descriptor scoping the priority.
    pub fn descriptor(&self) -> &ContextDescriptor {
        &self.descriptor
    }

    /// The dominating clause.
    pub fn better(&self) -> &AttributeClause {
        &self.better
    }

    /// The dominated clause.
    pub fn worse(&self) -> &AttributeClause {
        &self.worse
    }
}

/// Errors of the qualitative layer.
#[derive(Debug, Clone, PartialEq)]
pub enum QualitativeError {
    /// Inserting the priority would create a preference cycle within
    /// some context state (e.g. `a ≻ b`, `b ≻ a` both applicable) —
    /// winnow would return no best matches for affected tuples.
    Cycle {
        /// A witness context state in which the cycle closes.
        state: ContextState,
    },
    /// A reflexive priority (`x ≻ x`) is never satisfiable.
    Reflexive,
    /// Underlying context error.
    Profile(ProfileError),
}

impl fmt::Display for QualitativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Cycle { .. } => {
                write!(f, "priority cycle within a shared context state")
            }
            Self::Reflexive => write!(f, "a priority must relate two different clauses"),
            Self::Profile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QualitativeError {}

impl From<ProfileError> for QualitativeError {
    fn from(e: ProfileError) -> Self {
        Self::Profile(e)
    }
}

impl From<ctxpref_context::ContextError> for QualitativeError {
    fn from(e: ctxpref_context::ContextError) -> Self {
        Self::Profile(e.into())
    }
}

/// A set of non-cyclic contextual priorities over one environment.
#[derive(Debug, Clone)]
pub struct QualitativeProfile {
    env: ContextEnvironment,
    priorities: Vec<ContextualPriority>,
}

/// Clause fingerprint used as a graph node.
fn clause_key(c: &AttributeClause) -> String {
    format!("{:?}", c)
}

impl QualitativeProfile {
    /// An empty qualitative profile over `env`.
    pub fn new(env: ContextEnvironment) -> Self {
        Self {
            env,
            priorities: Vec::new(),
        }
    }

    /// The context environment.
    pub fn env(&self) -> &ContextEnvironment {
        &self.env
    }

    /// Number of priorities.
    pub fn len(&self) -> usize {
        self.priorities.len()
    }

    /// True iff no priorities are stored.
    pub fn is_empty(&self) -> bool {
        self.priorities.is_empty()
    }

    /// The priorities, in insertion order.
    pub fn priorities(&self) -> &[ContextualPriority] {
        &self.priorities
    }

    /// Insert a priority, rejecting reflexive edges and per-state
    /// cycles (the qualitative conflict check).
    pub fn insert(&mut self, priority: ContextualPriority) -> Result<(), QualitativeError> {
        if priority.better == priority.worse {
            return Err(QualitativeError::Reflexive);
        }
        // Cycle check: for every state the new priority speaks about,
        // build the clause graph of all priorities applicable *in that
        // exact state* (shared states are where edges combine) and look
        // for a cycle through the new edge.
        let new_states = priority.descriptor.states(&self.env)?;
        for state in &new_states {
            let mut edges: Vec<(String, String)> =
                vec![(clause_key(&priority.better), clause_key(&priority.worse))];
            for p in &self.priorities {
                let states = p.descriptor.states(&self.env)?;
                if states.contains(state) {
                    edges.push((clause_key(&p.better), clause_key(&p.worse)));
                }
            }
            if has_cycle(&edges) {
                return Err(QualitativeError::Cycle {
                    state: state.clone(),
                });
            }
        }
        self.priorities.push(priority);
        Ok(())
    }

    /// The priorities applicable to a query state: those with a context
    /// state covering it. Following the paper's resolution, only the
    /// priorities of the *most specific* covering states are used: a
    /// priority is dropped if another applicable priority's covering
    /// state is strictly below it (covers-wise) *and* they relate the
    /// same clause pair (the more specific statement overrides the more
    /// general one).
    pub fn applicable(
        &self,
        query: &ContextState,
    ) -> Result<Vec<&ContextualPriority>, QualitativeError> {
        // (priority, most specific covering state) pairs.
        let mut hits: Vec<(&ContextualPriority, ContextState)> = Vec::new();
        for p in &self.priorities {
            let mut best: Option<ContextState> = None;
            for s in p.descriptor.states(&self.env)? {
                if s.covers(query, &self.env) {
                    best = match best {
                        None => Some(s),
                        Some(b) if b.covers(&s, &self.env) => Some(s),
                        Some(b) => Some(b),
                    };
                }
            }
            if let Some(s) = best {
                hits.push((p, s));
            }
        }
        // Override: drop (p, s) if some (q, t) with the same clause pair
        // has s covers t, s ≠ t.
        let out: Vec<&ContextualPriority> = hits
            .iter()
            .filter(|(p, s)| {
                !hits.iter().any(|(q, t)| {
                    s != t && s.covers(t, &self.env) && q.better == p.better && q.worse == p.worse
                })
            })
            .map(|(p, _)| *p)
            .collect();
        Ok(out)
    }

    /// Does `a` dominate `b` under the applicable priorities?
    fn dominates(priorities: &[&ContextualPriority], rel: &Relation, a: usize, b: usize) -> bool {
        priorities.iter().any(|p| {
            p.better.predicate().matches(rel.tuple(a)) && p.worse.predicate().matches(rel.tuple(b))
        })
    }

    /// **Winnow** (best matches only): the tuples of `rel` not dominated
    /// by any other tuple under the priorities applicable to `query`.
    pub fn winnow(
        &self,
        rel: &Relation,
        query: &ContextState,
    ) -> Result<Vec<usize>, QualitativeError> {
        let priorities = self.applicable(query)?;
        let all: Vec<usize> = (0..rel.len()).collect();
        Ok(Self::winnow_among(&priorities, rel, &all))
    }

    fn winnow_among(
        priorities: &[&ContextualPriority],
        rel: &Relation,
        among: &[usize],
    ) -> Vec<usize> {
        among
            .iter()
            .copied()
            .filter(|&t| {
                !among
                    .iter()
                    .any(|&other| other != t && Self::dominates(priorities, rel, other, t))
            })
            .collect()
    }

    /// Iterated winnow: partition the relation into dominance strata —
    /// stratum 0 is the winnow of the whole relation, stratum 1 the
    /// winnow of the rest, and so on. This is the qualitative analogue
    /// of a ranked answer.
    pub fn rank(
        &self,
        rel: &Relation,
        query: &ContextState,
    ) -> Result<Vec<Vec<usize>>, QualitativeError> {
        let priorities = self.applicable(query)?;
        let mut remaining: Vec<usize> = (0..rel.len()).collect();
        let mut strata = Vec::new();
        while !remaining.is_empty() {
            let best = Self::winnow_among(&priorities, rel, &remaining);
            if best.is_empty() {
                // Cannot happen with acyclic priorities, but never loop.
                strata.push(remaining);
                break;
            }
            let best_set: HashSet<usize> = best.iter().copied().collect();
            remaining.retain(|t| !best_set.contains(t));
            strata.push(best);
        }
        Ok(strata)
    }
}

/// Cycle detection over a clause-key edge list (iterative DFS).
fn has_cycle(edges: &[(String, String)]) -> bool {
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<&str, Mark> = HashMap::new();
    for (start, _) in edges {
        if marks.contains_key(start.as_str()) {
            continue;
        }
        // Stack of (node, next child index).
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        marks.insert(start, Mark::Visiting);
        while let Some((node, idx)) = stack.pop() {
            let children = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if idx < children.len() {
                stack.push((node, idx + 1));
                let child = children[idx];
                match marks.get(child) {
                    Some(Mark::Visiting) => return true,
                    Some(Mark::Done) => {}
                    None => {
                        marks.insert(child, Mark::Visiting);
                        stack.push((child, 0));
                    }
                }
            } else {
                marks.insert(node, Mark::Done);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_context::parse_descriptor;
    use ctxpref_hierarchy::HierarchyBuilder;
    use ctxpref_relation::{AttrType, Schema, Value};

    fn env() -> ContextEnvironment {
        let mut w = HierarchyBuilder::new("weather", &["Conditions", "Char"]);
        w.add("Char", "bad", None).unwrap();
        w.add("Char", "good", None).unwrap();
        w.add_leaves("bad", &["cold"]).unwrap();
        w.add_leaves("good", &["warm", "hot"]).unwrap();
        ContextEnvironment::new(vec![
            w.build().unwrap(),
            ctxpref_hierarchy::Hierarchy::flat("company", &["friends", "family"]).unwrap(),
        ])
        .unwrap()
    }

    fn rel() -> Relation {
        let schema = Schema::new(&[("type", AttrType::Str)]).unwrap();
        let mut rel = Relation::new("poi", schema);
        for t in ["museum", "brewery", "zoo", "park"] {
            rel.insert(vec![t.into()]).unwrap();
        }
        rel
    }

    fn ty_clause(rel: &Relation, v: &str) -> AttributeClause {
        AttributeClause::eq(rel.schema().attr("type").unwrap(), Value::str(v))
    }

    fn prio(
        env: &ContextEnvironment,
        rel: &Relation,
        cod: &str,
        b: &str,
        w: &str,
    ) -> ContextualPriority {
        ContextualPriority::new(
            parse_descriptor(env, cod).unwrap(),
            ty_clause(rel, b),
            ty_clause(rel, w),
        )
    }

    #[test]
    fn winnow_respects_context() {
        let env = env();
        let rel = rel();
        let mut p = QualitativeProfile::new(env.clone());
        p.insert(prio(&env, &rel, "company = family", "museum", "brewery"))
            .unwrap();
        p.insert(prio(&env, &rel, "company = friends", "brewery", "museum"))
            .unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());

        let family = ContextState::parse(&env, &["warm", "family"]).unwrap();
        let best = p.winnow(&rel, &family).unwrap();
        assert!(
            best.contains(&0) && !best.contains(&1),
            "museum in, brewery out"
        );

        let friends = ContextState::parse(&env, &["warm", "friends"]).unwrap();
        let best = p.winnow(&rel, &friends).unwrap();
        assert!(
            best.contains(&1) && !best.contains(&0),
            "brewery in, museum out"
        );

        // Undetermined tuples (zoo, park) are never dominated.
        assert!(best.contains(&2) && best.contains(&3));
    }

    #[test]
    fn reflexive_and_cycles_rejected() {
        let env = env();
        let rel = rel();
        let mut p = QualitativeProfile::new(env.clone());
        assert_eq!(
            p.insert(prio(&env, &rel, "company = family", "museum", "museum"))
                .unwrap_err(),
            QualitativeError::Reflexive
        );
        p.insert(prio(&env, &rel, "company = family", "museum", "brewery"))
            .unwrap();
        p.insert(prio(&env, &rel, "company = family", "brewery", "zoo"))
            .unwrap();
        // zoo ≻ museum under the same state closes a cycle.
        let err = p
            .insert(prio(&env, &rel, "company = family", "zoo", "museum"))
            .unwrap_err();
        assert!(matches!(err, QualitativeError::Cycle { .. }));
        // …but the same edge in a *different* context is fine.
        p.insert(prio(&env, &rel, "company = friends", "zoo", "museum"))
            .unwrap();
    }

    #[test]
    fn cycle_detection_spans_overlapping_descriptors() {
        let env = env();
        let rel = rel();
        let mut p = QualitativeProfile::new(env.clone());
        p.insert(prio(
            &env,
            &rel,
            "weather in {warm, hot}",
            "museum",
            "brewery",
        ))
        .unwrap();
        // Overlaps at (hot, all) → cycle.
        let err = p
            .insert(prio(&env, &rel, "weather = hot", "brewery", "museum"))
            .unwrap_err();
        assert!(matches!(err, QualitativeError::Cycle { .. }));
        // Disjoint state (cold) is fine.
        p.insert(prio(&env, &rel, "weather = cold", "brewery", "museum"))
            .unwrap();
    }

    #[test]
    fn specific_context_overrides_general() {
        let env = env();
        let rel = rel();
        let mut p = QualitativeProfile::new(env.clone());
        // Generally: museum over brewery…
        p.insert(prio(&env, &rel, "*", "museum", "brewery"))
            .unwrap();
        // …but with friends, the same pair is stated at a more specific
        // state — resolution uses only the most specific statement.
        // (Same direction here; the override semantics are observable
        // through `applicable`.)
        p.insert(prio(&env, &rel, "company = friends", "museum", "brewery"))
            .unwrap();
        let friends = ContextState::parse(&env, &["warm", "friends"]).unwrap();
        let applicable = p.applicable(&friends).unwrap();
        assert_eq!(applicable.len(), 1, "general statement suppressed");
        assert_eq!(
            applicable[0].descriptor().clause_count(),
            1,
            "the specific (company = friends) statement wins"
        );
        // For family, only the general statement applies.
        let family = ContextState::parse(&env, &["warm", "family"]).unwrap();
        let applicable = p.applicable(&family).unwrap();
        assert_eq!(applicable.len(), 1);
        assert_eq!(applicable[0].descriptor().clause_count(), 0);
    }

    #[test]
    fn rank_stratifies() {
        let env = env();
        let rel = rel();
        let mut p = QualitativeProfile::new(env.clone());
        p.insert(prio(&env, &rel, "*", "museum", "brewery"))
            .unwrap();
        p.insert(prio(&env, &rel, "*", "brewery", "zoo")).unwrap();
        let q = ContextState::parse(&env, &["warm", "family"]).unwrap();
        let strata = p.rank(&rel, &q).unwrap();
        // museum & park undominated; brewery next; zoo last.
        assert_eq!(strata.len(), 3);
        assert_eq!(strata[0], vec![0, 3]);
        assert_eq!(strata[1], vec![1]);
        assert_eq!(strata[2], vec![2]);
        // Strata partition the relation.
        let total: usize = strata.iter().map(Vec::len).sum();
        assert_eq!(total, rel.len());
    }

    #[test]
    fn covering_priorities_apply_to_detailed_states() {
        let env = env();
        let rel = rel();
        let mut p = QualitativeProfile::new(env.clone());
        // Stated at the Characterization level…
        p.insert(prio(&env, &rel, "weather = good", "park", "museum"))
            .unwrap();
        // …applies to the detailed state (warm, …).
        let q = ContextState::parse(&env, &["warm", "friends"]).unwrap();
        let best = p.winnow(&rel, &q).unwrap();
        assert!(best.contains(&3) && !best.contains(&0));
        // And not to (cold, …).
        let q = ContextState::parse(&env, &["cold", "friends"]).unwrap();
        let best = p.winnow(&rel, &q).unwrap();
        assert!(best.contains(&0));
    }

    #[test]
    fn empty_profile_returns_everything() {
        let env = env();
        let rel = rel();
        let p = QualitativeProfile::new(env.clone());
        let q = ContextState::parse(&env, &["warm", "friends"]).unwrap();
        assert_eq!(p.winnow(&rel, &q).unwrap().len(), rel.len());
        assert_eq!(p.rank(&rel, &q).unwrap().len(), 1);
    }
}
