use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::value::{AttrType, Value};

/// Index of an attribute within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl AttrId {
    #[inline]
    /// Zero-based index of the attribute.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Errors of the relational layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// Two attributes share a name.
    DuplicateAttr(String),
    /// An attribute name did not resolve.
    UnknownAttr(String),
    /// A tuple with the wrong number of values.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value of the wrong type for its attribute.
    TypeMismatch {
        /// The attribute whose value is mistyped.
        attr: String,
        /// The schema's type.
        expected: AttrType,
        /// The supplied value's type.
        got: AttrType,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateAttr(a) => write!(f, "duplicate attribute {a:?}"),
            Self::UnknownAttr(a) => write!(f, "unknown attribute {a:?}"),
            Self::ArityMismatch { expected, got } => {
                write!(f, "tuple arity mismatch: expected {expected}, got {got}")
            }
            Self::TypeMismatch {
                attr,
                expected,
                got,
            } => {
                write!(f, "attribute {attr:?} expects {expected}, got {got}")
            }
        }
    }
}

impl Error for RelationError {}

/// A relation schema: named, typed attributes.
#[derive(Debug, Clone)]
pub struct Schema {
    attrs: Vec<(String, AttrType)>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// A schema from `(name, type)` pairs; names must be unique.
    pub fn new(attrs: &[(&str, AttrType)]) -> Result<Self, RelationError> {
        let mut by_name = HashMap::with_capacity(attrs.len());
        let mut owned = Vec::with_capacity(attrs.len());
        for (i, &(name, ty)) in attrs.iter().enumerate() {
            if by_name.insert(name.to_string(), AttrId(i as u16)).is_some() {
                return Err(RelationError::DuplicateAttr(name.to_string()));
            }
            owned.push((name.to_string(), ty));
        }
        Ok(Self {
            attrs: owned,
            by_name,
        })
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True iff the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Resolve an attribute by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Like [`Self::attr`], with a typed error.
    pub fn require_attr(&self, name: &str) -> Result<AttrId, RelationError> {
        self.attr(name)
            .ok_or_else(|| RelationError::UnknownAttr(name.to_string()))
    }

    /// Name of an attribute.
    pub fn attr_name(&self, a: AttrId) -> &str {
        &self.attrs[a.index()].0
    }

    /// Type of an attribute.
    pub fn attr_type(&self, a: AttrId) -> AttrType {
        self.attrs[a.index()].1
    }

    /// Iterate over `(id, name, type)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str, AttrType)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, (n, t))| (AttrId(i as u16), n.as_str(), *t))
    }
}

/// A tuple: one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// A tuple from its values (validated on relation insert).
    pub fn new(values: Vec<Value>) -> Self {
        Self {
            values: values.into_boxed_slice(),
        }
    }

    #[inline]
    /// The value of one attribute.
    pub fn value(&self, a: AttrId) -> &Value {
        &self.values[a.index()]
    }

    /// All values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// The comparison operators `θ ∈ {=, <, >, ≤, ≥, ≠}` of Definition 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CompareOp {
    /// Evaluate `left θ right` using the total order on [`Value`].
    #[inline]
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        let ord = left.cmp(right);
        match self {
            Self::Eq => ord == std::cmp::Ordering::Equal,
            Self::Ne => ord != std::cmp::Ordering::Equal,
            Self::Lt => ord == std::cmp::Ordering::Less,
            Self::Le => ord != std::cmp::Ordering::Greater,
            Self::Gt => ord == std::cmp::Ordering::Greater,
            Self::Ge => ord != std::cmp::Ordering::Less,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Eq => "=",
            Self::Ne => "≠",
            Self::Lt => "<",
            Self::Le => "≤",
            Self::Gt => ">",
            Self::Ge => "≥",
        };
        write!(f, "{s}")
    }
}

/// A selection predicate `A θ a`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// The attribute to compare.
    pub attr: AttrId,
    /// The comparison operator θ.
    pub op: CompareOp,
    /// The constant to compare against.
    pub value: Value,
}

impl Predicate {
    /// A predicate `attr θ value`.
    pub fn new(attr: AttrId, op: CompareOp, value: Value) -> Self {
        Self { attr, op, value }
    }

    /// Equality predicate, the paper's simplified `A = a` form.
    pub fn eq(attr: AttrId, value: Value) -> Self {
        Self::new(attr, CompareOp::Eq, value)
    }

    #[inline]
    /// Evaluate the predicate against a tuple.
    pub fn matches(&self, t: &Tuple) -> bool {
        self.op.eval(t.value(self.attr), &self.value)
    }
}

/// An in-memory relation: a schema plus tuples, with schema validation
/// on insert and θ-selection (`σ_{A θ a}(R)`).
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn new(name: &str, schema: Schema) -> Self {
        Self {
            name: name.to_string(),
            schema,
            tuples: Vec::new(),
        }
    }

    /// Name of the relation.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple at `index`.
    pub fn tuple(&self, index: usize) -> &Tuple {
        &self.tuples[index]
    }

    /// All tuples, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Insert a tuple, validating arity and types. Returns its index.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<usize, RelationError> {
        if values.len() != self.schema.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.len(),
                got: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            let a = AttrId(i as u16);
            let expected = self.schema.attr_type(a);
            if v.attr_type() != expected {
                return Err(RelationError::TypeMismatch {
                    attr: self.schema.attr_name(a).to_string(),
                    expected,
                    got: v.attr_type(),
                });
            }
        }
        self.tuples.push(Tuple::new(values));
        Ok(self.tuples.len() - 1)
    }

    /// θ-selection: indices of tuples satisfying the predicate.
    pub fn select(&self, pred: &Predicate) -> impl Iterator<Item = usize> + '_ {
        let pred = pred.clone();
        self.tuples
            .iter()
            .enumerate()
            .filter(move |(_, t)| pred.matches(t))
            .map(|(i, _)| i)
    }

    /// Count of tuples satisfying the predicate.
    pub fn count(&self, pred: &Predicate) -> usize {
        self.select(pred).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poi() -> Relation {
        let schema = Schema::new(&[
            ("pid", AttrType::Int),
            ("name", AttrType::Str),
            ("type", AttrType::Str),
            ("open_air", AttrType::Bool),
            ("admission_cost", AttrType::Float),
        ])
        .unwrap();
        let mut r = Relation::new("Points_of_Interest", schema);
        r.insert(vec![
            1.into(),
            "Acropolis".into(),
            "monument".into(),
            true.into(),
            12.0.into(),
        ])
        .unwrap();
        r.insert(vec![
            2.into(),
            "Mikro Karaoke".into(),
            "brewery".into(),
            false.into(),
            0.0.into(),
        ])
        .unwrap();
        r.insert(vec![
            3.into(),
            "Benaki".into(),
            "museum".into(),
            false.into(),
            9.0.into(),
        ])
        .unwrap();
        r
    }

    #[test]
    fn schema_lookup_and_errors() {
        let s = Schema::new(&[("a", AttrType::Int), ("b", AttrType::Str)]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.attr("b"), Some(AttrId(1)));
        assert_eq!(s.attr_name(AttrId(0)), "a");
        assert_eq!(s.attr_type(AttrId(1)), AttrType::Str);
        assert!(s.require_attr("zz").is_err());
        assert!(matches!(
            Schema::new(&[("a", AttrType::Int), ("a", AttrType::Str)]).unwrap_err(),
            RelationError::DuplicateAttr(_)
        ));
        let names: Vec<&str> = s.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut r = poi();
        assert!(matches!(
            r.insert(vec![4.into()]).unwrap_err(),
            RelationError::ArityMismatch { .. }
        ));
        assert!(matches!(
            r.insert(vec![
                "x".into(),
                "y".into(),
                "z".into(),
                true.into(),
                1.0.into()
            ])
            .unwrap_err(),
            RelationError::TypeMismatch { .. }
        ));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn theta_selection() {
        let r = poi();
        let ty = r.schema().attr("type").unwrap();
        let cost = r.schema().attr("admission_cost").unwrap();
        let eq = Predicate::eq(ty, "museum".into());
        assert_eq!(r.select(&eq).collect::<Vec<_>>(), vec![2]);
        let cheap = Predicate::new(cost, CompareOp::Le, 9.0.into());
        assert_eq!(r.count(&cheap), 2);
        let not_brewery = Predicate::new(ty, CompareOp::Ne, "brewery".into());
        assert_eq!(r.count(&not_brewery), 2);
        let expensive = Predicate::new(cost, CompareOp::Gt, 100.0.into());
        assert_eq!(r.count(&expensive), 0);
    }

    #[test]
    fn all_compare_ops() {
        let one = Value::Int(1);
        let two = Value::Int(2);
        assert!(CompareOp::Eq.eval(&one, &one));
        assert!(CompareOp::Ne.eval(&one, &two));
        assert!(CompareOp::Lt.eval(&one, &two));
        assert!(CompareOp::Le.eval(&one, &one));
        assert!(CompareOp::Gt.eval(&two, &one));
        assert!(CompareOp::Ge.eval(&two, &two));
        assert!(!CompareOp::Lt.eval(&two, &one));
        assert_eq!(CompareOp::Le.to_string(), "≤");
    }

    #[test]
    fn tuple_accessors() {
        let r = poi();
        let t = r.tuple(0);
        assert_eq!(t.value(AttrId(1)), &Value::str("Acropolis"));
        assert_eq!(t.values().len(), 5);
        assert_eq!(r.tuples().len(), 3);
        assert_eq!(r.name(), "Points_of_Interest");
    }
}
