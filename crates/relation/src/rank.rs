//! Scored query answers.
//!
//! `Rank_CS` (Algorithm 2) annotates the tuples selected by each
//! preference expression with that preference's interest score. A tuple
//! can be selected by several expressions; the paper suggests removing
//! duplicates "by keeping the max (equivalently, avg, min, or some
//! weighted average)" — [`ScoreCombiner`] implements those policies.

use std::collections::HashMap;

/// One tuple of the answer, identified by its index in the underlying
/// relation, with its interest score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredTuple {
    /// Index of the tuple in the underlying relation.
    pub tuple_index: usize,
    /// Combined interest score.
    pub score: f64,
}

/// Policy for combining the scores of a tuple matched by more than one
/// preference expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScoreCombiner {
    /// Keep the maximum score (the paper's default suggestion).
    #[default]
    Max,
    /// Keep the minimum score.
    Min,
    /// Average all scores.
    Avg,
}

impl ScoreCombiner {
    fn seed(self) -> (f64, u32) {
        (
            match self {
                Self::Max => f64::NEG_INFINITY,
                Self::Min => f64::INFINITY,
                Self::Avg => 0.0,
            },
            0,
        )
    }

    fn fold(self, acc: &mut (f64, u32), score: f64) {
        match self {
            Self::Max => acc.0 = acc.0.max(score),
            Self::Min => acc.0 = acc.0.min(score),
            Self::Avg => acc.0 += score,
        }
        acc.1 += 1;
    }

    fn finish(self, acc: (f64, u32)) -> f64 {
        match self {
            Self::Avg => acc.0 / acc.1 as f64,
            _ => acc.0,
        }
    }
}

impl std::fmt::Display for ScoreCombiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Max => write!(f, "max"),
            Self::Min => write!(f, "min"),
            Self::Avg => write!(f, "avg"),
        }
    }
}

/// A ranked, duplicate-free query answer: tuples sorted by descending
/// score (ties broken by ascending tuple index for determinism).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankedResults {
    entries: Vec<ScoredTuple>,
}

impl RankedResults {
    /// Combine raw `(tuple_index, score)` pairs — duplicates merged with
    /// `combiner` — and sort by descending score.
    pub fn from_scores(
        raw: impl IntoIterator<Item = ScoredTuple>,
        combiner: ScoreCombiner,
    ) -> Self {
        let mut acc: HashMap<usize, (f64, u32)> = HashMap::new();
        for st in raw {
            let slot = acc.entry(st.tuple_index).or_insert_with(|| combiner.seed());
            combiner.fold(slot, st.score);
        }
        let mut entries: Vec<ScoredTuple> = acc
            .into_iter()
            .map(|(tuple_index, a)| ScoredTuple {
                tuple_index,
                score: combiner.finish(a),
            })
            .collect();
        entries.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.tuple_index.cmp(&b.tuple_index))
        });
        Self { entries }
    }

    /// Adopt entries that are already duplicate-free and sorted in
    /// this type's order (descending score, ties by ascending tuple
    /// index). Materialized views maintain their rankings in exactly
    /// that order and use this to serve without re-sorting.
    pub fn from_sorted(entries: Vec<ScoredTuple>) -> Self {
        debug_assert!(entries.windows(2).all(|w| {
            w[0].score > w[1].score
                || (w[0].score == w[1].score && w[0].tuple_index < w[1].tuple_index)
        }));
        Self { entries }
    }

    /// All entries, best first.
    pub fn entries(&self) -> &[ScoredTuple] {
        &self.entries
    }

    /// Number of distinct tuples in the answer.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The top `k` entries, *including* every entry tied with the k-th
    /// score — the paper's user study uses the best 20 results and
    /// "when there are ties in the ranking, we consider all results with
    /// the same score".
    pub fn top_k_with_ties(&self, k: usize) -> &[ScoredTuple] {
        if k == 0 || self.entries.is_empty() {
            return &[];
        }
        if self.entries.len() <= k {
            return &self.entries;
        }
        let threshold = self.entries[k - 1].score;
        let mut end = k;
        while end < self.entries.len() && self.entries[end].score == threshold {
            end += 1;
        }
        &self.entries[..end]
    }

    /// Indices of the tuples in rank order.
    pub fn tuple_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|e| e.tuple_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(i: usize, s: f64) -> ScoredTuple {
        ScoredTuple {
            tuple_index: i,
            score: s,
        }
    }

    #[test]
    fn sorts_descending_with_stable_ties() {
        let r = RankedResults::from_scores(
            vec![st(3, 0.5), st(1, 0.9), st(2, 0.5)],
            ScoreCombiner::Max,
        );
        let idx: Vec<usize> = r.tuple_indices().collect();
        assert_eq!(idx, vec![1, 2, 3]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn combiners_merge_duplicates() {
        let raw = vec![st(0, 0.2), st(0, 0.8), st(0, 0.5)];
        let max = RankedResults::from_scores(raw.clone(), ScoreCombiner::Max);
        assert_eq!(max.entries()[0].score, 0.8);
        let min = RankedResults::from_scores(raw.clone(), ScoreCombiner::Min);
        assert_eq!(min.entries()[0].score, 0.2);
        let avg = RankedResults::from_scores(raw, ScoreCombiner::Avg);
        assert!((avg.entries()[0].score - 0.5).abs() < 1e-12);
        assert_eq!(ScoreCombiner::default(), ScoreCombiner::Max);
        assert_eq!(ScoreCombiner::Avg.to_string(), "avg");
    }

    #[test]
    fn top_k_includes_ties() {
        let r = RankedResults::from_scores(
            vec![st(0, 0.9), st(1, 0.5), st(2, 0.5), st(3, 0.5), st(4, 0.1)],
            ScoreCombiner::Max,
        );
        // k = 2 → the 2nd score is 0.5, tied with entries 2 and 3.
        assert_eq!(r.top_k_with_ties(2).len(), 4);
        assert_eq!(r.top_k_with_ties(1).len(), 1);
        assert_eq!(r.top_k_with_ties(5).len(), 5);
        assert_eq!(r.top_k_with_ties(50).len(), 5);
        assert!(r.top_k_with_ties(0).is_empty());
        assert!(RankedResults::default().top_k_with_ties(3).is_empty());
    }
}
