use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Int => write!(f, "int"),
            Self::Float => write!(f, "float"),
            Self::Str => write!(f, "str"),
            Self::Bool => write!(f, "bool"),
        }
    }
}

/// A typed attribute value.
///
/// Strings are reference-counted: preference clauses, tuples, and
/// cached results all hold the same underlying allocation.
///
/// `Value` implements a *total* order ([`Ord`]): floats are compared by
/// their IEEE total order so that θ-selections and sorting are defined
/// for every pair of same-typed values. Cross-type comparisons order by
/// type tag — relations never produce them because schemas are enforced
/// on insert.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (total order via `total_cmp`).
    Float(f64),
    /// Reference-counted UTF-8 string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: &str) -> Self {
        Self::Str(Arc::from(s))
    }

    /// The type of the value.
    pub fn attr_type(&self) -> AttrType {
        match self {
            Self::Int(_) => AttrType::Int,
            Self::Float(_) => AttrType::Float,
            Self::Str(_) => AttrType::Str,
            Self::Bool(_) => AttrType::Bool,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Self::Int(_) => 0,
            Self::Float(_) => 1,
            Self::Str(_) => 2,
            Self::Bool(_) => 3,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Str(v.into())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Self::Int(a), Self::Int(b)) => a.cmp(b),
            (Self::Float(a), Self::Float(b)) => a.total_cmp(b),
            (Self::Str(a), Self::Str(b)) => a.cmp(b),
            (Self::Bool(a), Self::Bool(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Self::Int(v) => v.hash(state),
            // Consistent with total_cmp-based Eq: hash the bit pattern.
            Self::Float(v) => v.to_bits().hash(state),
            Self::Str(v) => v.hash(state),
            Self::Bool(v) => v.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Int(v) => write!(f, "{v}"),
            Self::Float(v) => write!(f, "{v}"),
            Self::Str(v) => write!(f, "{v}"),
            Self::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_types() {
        assert_eq!(Value::from(3i64).attr_type(), AttrType::Int);
        assert_eq!(Value::from(0.5).attr_type(), AttrType::Float);
        assert_eq!(Value::from("x").attr_type(), AttrType::Str);
        assert_eq!(Value::from(true).attr_type(), AttrType::Bool);
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
    }

    #[test]
    fn same_type_ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Bool(false) < Value::Bool(true));
        assert_eq!(Value::Int(7), Value::Int(7));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // total_cmp puts positive NaN above every number; the key
        // property is that comparisons never panic and Eq is reflexive.
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_ne!(nan.cmp(&one), Ordering::Equal);
    }

    #[test]
    fn hash_agrees_with_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::str("museum"));
        s.insert(Value::str("museum"));
        s.insert(Value::Int(1));
        s.insert(Value::Float(1.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn display_is_plain() {
        assert_eq!(Value::str("brewery").to_string(), "brewery");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(AttrType::Float.to_string(), "float");
    }
}
