#![warn(missing_docs)]
//! Relational substrate for contextual preference queries.
//!
//! The paper runs its contextual preference model against a single
//! relation, `Points_of_Interest(pid, name, type, location, open-air,
//! hours_of_operation, admission_cost)`. This crate provides the small
//! in-memory relational layer that `Rank_CS` (Algorithm 2) executes its
//! scored selections over:
//!
//! * [`Value`] / [`AttrType`] — a typed value model with a total order
//!   (so every `θ ∈ {=, <, >, ≤, ≥, ≠}` of Definition 5 is defined),
//! * [`Schema`] / [`Relation`] / [`Tuple`] — schema-validated tuple
//!   storage,
//! * [`Predicate`] — θ-selections `σ_{A θ a}(R)`,
//! * [`ScoredTuple`] / [`RankedResults`] — scored query answers with the
//!   duplicate-combining policies the paper lists (max, min, avg) and
//!   tie-preserving top-k (the paper's user study keeps *all* results
//!   tied with the 20th score).

mod rank;
mod relation;
mod value;

pub use rank::{RankedResults, ScoreCombiner, ScoredTuple};
pub use relation::{AttrId, CompareOp, Predicate, Relation, RelationError, Schema, Tuple};
pub use value::{AttrType, Value};
