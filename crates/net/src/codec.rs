//! The `ctxpref2` binary codec: compact, length-delimited encodings of
//! the request/response vocabulary, with a per-message **request id**
//! for pipelining.
//!
//! A `ctxpref2` frame payload is:
//!
//! ```text
//! request:  [0xC2 | 0x03 | tag u8 | request-id varint | budget-ms varint | tier u8 | body…]
//! response: [0xC2 | 0x03 | tag u8 | request-id varint | body…]
//! ```
//!
//! Every request envelope carries the caller's **remaining deadline
//! budget** in milliseconds (0 = unconstrained) and a **priority
//! tier** (interactive / bulk / maintenance). Clients and routers
//! decrement the budget across hops and retries; the server clamps
//! its per-request deadline to it and sheds low tiers first under
//! overload — end-to-end deadline propagation lives in these two
//! envelope fields.
//!
//! The leading byte `0xC2` can never begin a `ctxpref1` payload (text
//! messages start with the ASCII `c` of the version token and `0xC2`
//! alone is not valid UTF-8), so one `match` on the first byte routes
//! a frame to the right decoder and both dialects coexist on one port.
//!
//! Primitives: LEB128 varints for integers and lengths, raw
//! length-delimited bytes for strings and record payloads (no hex
//! doubling — the `ctxpref1`/`repl1` hex encoding cost 2× on every
//! replication record and snapshot op), IEEE-754 little-endian for
//! scores. Every length and count is validated against the bytes
//! actually present **before** any allocation, so a hostile claim
//! costs a typed [`DecodeError`] — carrying the exact byte offset —
//! and never memory. The codec fuzz suite drives truncations, bit
//! flips, and hostile length claims through every variant under a
//! counting allocator.

use ctxpref_service::Priority;

use crate::error::{DecodeError, DecodeKind};
use crate::proto::{AnswerRow, MigrateAction, RemoteAnswer, Request, Response, WireFallback};

/// First byte of every `ctxpref2` payload.
pub const BINARY_MAGIC: u8 = 0xC2;
/// Second byte: the binary codec version. Bumped to 0x03 when the
/// request envelope gained the deadline budget and priority tier.
pub const BINARY_VERSION: u8 = 0x03;

/// Whether a frame payload is a `ctxpref2` binary message (as opposed
/// to `ctxpref1` text).
pub fn is_binary(payload: &[u8]) -> bool {
    payload.first() == Some(&BINARY_MAGIC)
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

pub(crate) fn put_uv(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_uv(out, b.len() as u64);
    out.extend_from_slice(b);
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A bounds-checked binary reader over one payload. Every failure
/// carries the byte offset at which it occurred.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn offset(&self) -> usize {
        self.pos
    }

    fn err(&self, kind: DecodeKind) -> DecodeError {
        DecodeError {
            offset: self.pos,
            kind,
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.err(DecodeKind::Truncated))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn uv(&mut self) -> Result<u64, DecodeError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(DecodeError {
                    offset: start,
                    kind: DecodeKind::VarintOverflow,
                });
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError {
                    offset: start,
                    kind: DecodeKind::VarintOverflow,
                });
            }
        }
    }

    /// A usize-ranged varint (lengths, counts, indices).
    pub(crate) fn uv_len(&mut self) -> Result<usize, DecodeError> {
        let start = self.pos;
        let v = self.uv()?;
        usize::try_from(v).map_err(|_| DecodeError {
            offset: start,
            kind: DecodeKind::LengthOverflow {
                declared: v,
                max: usize::MAX as u64,
            },
        })
    }

    /// A declared length or element count, validated against the bytes
    /// that remain (each element occupies at least `min_elem_bytes`):
    /// the one place where a hostile claim is caught before any
    /// allocation is sized by it.
    pub(crate) fn checked_count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let start = self.pos;
        let n = self.uv()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        let budget = remaining / (min_elem_bytes.max(1) as u64);
        if n > budget {
            return Err(DecodeError {
                offset: start,
                kind: DecodeKind::LengthOverflow {
                    declared: n,
                    max: budget,
                },
            });
        }
        Ok(n as usize)
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let start = self.pos;
        let len = self.uv()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if len > remaining {
            return Err(DecodeError {
                offset: start,
                kind: DecodeKind::LengthOverflow {
                    declared: len,
                    max: remaining,
                },
            });
        }
        let len = len as usize;
        let out = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(out)
    }

    pub(crate) fn str_(&mut self) -> Result<String, DecodeError> {
        let start = self.pos;
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|_| DecodeError {
            offset: start,
            kind: DecodeKind::BadUtf8,
        })
    }

    pub(crate) fn f64_(&mut self) -> Result<f64, DecodeError> {
        if self.buf.len() - self.pos < 8 {
            return Err(self.err(DecodeKind::Truncated));
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    pub(crate) fn expect_end(&self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(self.err(DecodeKind::TrailingBytes));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Hex (the shared decoder of the ctxpref1 / repl1 text dialects)
// ---------------------------------------------------------------------------

/// Encode bytes as lowercase hex (text-dialect compatibility only; the
/// binary codec ships raw bytes).
pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble < 16"));
        s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble < 16"));
    }
    s
}

/// Decode a hex string. The one hex decoder of the wire layer: the
/// odd-length and bad-digit paths both fail with a [`DecodeError`]
/// carrying the byte offset of the offending digit (the text protocols
/// used to report these two cases with different error text, one of
/// them offset-less).
pub fn hex_decode(s: &str) -> Result<Vec<u8>, DecodeError> {
    let raw = s.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return Err(DecodeError {
            offset: raw.len() - 1,
            kind: DecodeKind::OddHexLength,
        });
    }
    let digit = |i: usize| -> Result<u8, DecodeError> {
        (raw[i] as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or(DecodeError {
                offset: i,
                kind: DecodeKind::BadHexDigit,
            })
    };
    let mut out = Vec::with_capacity(raw.len() / 2);
    for i in (0..raw.len()).step_by(2) {
        out.push((digit(i)? << 4) | digit(i + 1)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Wire envelopes
// ---------------------------------------------------------------------------

/// One pipelined request frame: the id correlates the (possibly
/// out-of-order) response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Remaining deadline budget in milliseconds, decremented across
    /// hops and retries; 0 = unconstrained. The server clamps its
    /// per-request deadline to this.
    pub budget_ms: u64,
    /// The priority tier admission sheds by under overload.
    pub tier: Priority,
    /// The request itself.
    pub req: Request,
}

/// One pipelined response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// The id of the request this answers.
    pub id: u64,
    /// The response itself.
    pub resp: Response,
}

// Request tags.
const RQ_PING: u8 = 1;
const RQ_QUERY: u8 = 2;
const RQ_QUERY_DESC: u8 = 3;
const RQ_ADD_USER: u8 = 4;
const RQ_RM_USER: u8 = 5;
const RQ_PREF: u8 = 6;
const RQ_DEL: u8 = 7;
const RQ_SCORE: u8 = 8;
const RQ_CHECKPOINT: u8 = 9;
const RQ_FLUSH: u8 = 10;
const RQ_WAL_STATUS: u8 = 11;
const RQ_REPL_STATUS: u8 = 12;
const RQ_STATS: u8 = 13;
const RQ_ROUTE_STATUS: u8 = 14;
const RQ_MIGRATE: u8 = 15;
const RQ_BATCH: u8 = 16;
const RQ_SCRUB: u8 = 17;
const RQ_SCRUB_STATUS: u8 = 18;
const RQ_TOPK: u8 = 19;
const RQ_VIEWS_STATUS: u8 = 20;

// Migrate action tags.
const MA_EXPORT: u8 = 1;
const MA_SNAPSHOT: u8 = 2;
const MA_PULL: u8 = 3;
const MA_FENCE: u8 = 4;
const MA_IMPORT: u8 = 5;
const MA_APPLY: u8 = 6;
const MA_ACTIVATE: u8 = 7;
const MA_FINISH: u8 = 8;
const MA_ABORT: u8 = 9;

// Response tags.
const RS_PONG: u8 = 1;
const RS_OK: u8 = 2;
const RS_REMOVED: u8 = 3;
const RS_ANSWER: u8 = 4;
const RS_TEXT: u8 = 5;
const RS_BUSY: u8 = 6;
const RS_ERR: u8 = 7;
const RS_NOT_PRIMARY: u8 = 8;
const RS_MIGRATING: u8 = 9;
const RS_USER_CUT: u8 = 10;
const RS_SNAPSHOT: u8 = 11;
const RS_RECORDS: u8 = 12;
const RS_GONE: u8 = 13;
const RS_APPLIED: u8 = 14;
const RS_ROUTE_INFO: u8 = 15;
const RS_BATCH: u8 = 16;
const RS_SCRUB_REPORT: u8 = 17;
const RS_SCRUB_INFO: u8 = 18;

fn req_tag(req: &Request) -> u8 {
    match req {
        Request::Ping => RQ_PING,
        Request::Query { .. } => RQ_QUERY,
        Request::QueryDescriptor { .. } => RQ_QUERY_DESC,
        Request::AddUser { .. } => RQ_ADD_USER,
        Request::RemoveUser { .. } => RQ_RM_USER,
        Request::InsertPref { .. } => RQ_PREF,
        Request::RemovePref { .. } => RQ_DEL,
        Request::UpdateScore { .. } => RQ_SCORE,
        Request::Checkpoint => RQ_CHECKPOINT,
        Request::FlushWal => RQ_FLUSH,
        Request::WalStatus => RQ_WAL_STATUS,
        Request::ReplStatus => RQ_REPL_STATUS,
        Request::Stats => RQ_STATS,
        Request::RouteStatus => RQ_ROUTE_STATUS,
        Request::MigrateUser { .. } => RQ_MIGRATE,
        Request::Batch { .. } => RQ_BATCH,
        Request::Scrub => RQ_SCRUB,
        Request::ScrubStatus => RQ_SCRUB_STATUS,
        Request::TopK { .. } => RQ_TOPK,
        Request::ViewsStatus => RQ_VIEWS_STATUS,
    }
}

fn put_request_body(out: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Ping
        | Request::Checkpoint
        | Request::FlushWal
        | Request::WalStatus
        | Request::ReplStatus
        | Request::Stats
        | Request::RouteStatus
        | Request::Scrub
        | Request::ScrubStatus
        | Request::ViewsStatus => {}
        Request::Query {
            user,
            attr,
            k,
            deadline_ms,
            state,
        } => {
            put_str(out, user);
            put_str(out, attr);
            put_uv(out, *k as u64);
            put_uv(out, *deadline_ms);
            put_uv(out, state.len() as u64);
            for v in state {
                put_str(out, v);
            }
        }
        Request::TopK {
            user,
            attr,
            k,
            deadline_ms,
            state,
        } => {
            put_str(out, user);
            put_str(out, attr);
            put_uv(out, *k as u64);
            put_uv(out, *deadline_ms);
            put_uv(out, state.len() as u64);
            for v in state {
                put_str(out, v);
            }
        }
        Request::QueryDescriptor {
            user,
            attr,
            k,
            descriptor,
        } => {
            put_str(out, user);
            put_str(out, attr);
            put_uv(out, *k as u64);
            put_str(out, descriptor);
        }
        Request::AddUser { user } | Request::RemoveUser { user } => put_str(out, user),
        Request::InsertPref {
            user,
            descriptor,
            attr,
            value,
            score,
        } => {
            put_str(out, user);
            put_str(out, descriptor);
            put_str(out, attr);
            put_str(out, value);
            put_f64(out, *score);
        }
        Request::RemovePref { user, index } => {
            put_str(out, user);
            put_uv(out, *index as u64);
        }
        Request::UpdateScore { user, index, score } => {
            put_str(out, user);
            put_uv(out, *index as u64);
            put_f64(out, *score);
        }
        Request::MigrateUser {
            user,
            epoch,
            action,
        } => {
            put_str(out, user);
            put_uv(out, *epoch);
            match action {
                MigrateAction::Export => out.push(MA_EXPORT),
                MigrateAction::Snapshot => out.push(MA_SNAPSHOT),
                MigrateAction::Pull { from_lsn, max } => {
                    out.push(MA_PULL);
                    put_uv(out, *from_lsn);
                    put_uv(out, *max);
                }
                MigrateAction::Fence => out.push(MA_FENCE),
                MigrateAction::Import { src_lsn, ops } => {
                    out.push(MA_IMPORT);
                    put_uv(out, *src_lsn);
                    put_uv(out, ops.len() as u64);
                    for op in ops {
                        put_bytes(out, op);
                    }
                }
                MigrateAction::Apply { through, records } => {
                    out.push(MA_APPLY);
                    put_uv(out, *through);
                    put_uv(out, records.len() as u64);
                    for (lsn, payload) in records {
                        put_uv(out, *lsn);
                        put_bytes(out, payload);
                    }
                }
                MigrateAction::Activate => out.push(MA_ACTIVATE),
                MigrateAction::Finish => out.push(MA_FINISH),
                MigrateAction::Abort => out.push(MA_ABORT),
            }
        }
        Request::Batch { requests } => {
            put_uv(out, requests.len() as u64);
            for sub in requests {
                out.push(req_tag(sub));
                put_request_body(out, sub);
            }
        }
    }
}

/// Encode one request as a `ctxpref2` frame payload with an
/// unconstrained budget at the Interactive tier.
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    encode_request_enveloped(id, req, 0, Priority::Interactive)
}

/// Encode one request as a `ctxpref2` frame payload carrying the
/// remaining deadline budget (milliseconds, 0 = unconstrained) and the
/// priority tier in the envelope.
pub fn encode_request_enveloped(id: u64, req: &Request, budget_ms: u64, tier: Priority) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.push(BINARY_MAGIC);
    out.push(BINARY_VERSION);
    out.push(req_tag(req));
    put_uv(&mut out, id);
    put_uv(&mut out, budget_ms);
    out.push(tier.wire_tag());
    put_request_body(&mut out, req);
    out
}

fn header<'a>(payload: &'a [u8], what: &'static str) -> Result<(Dec<'a>, u8, u64), DecodeError> {
    let mut dec = Dec::new(payload);
    let magic = dec.u8()?;
    if magic != BINARY_MAGIC {
        return Err(DecodeError {
            offset: 0,
            kind: DecodeKind::BadTag {
                what: "codec magic",
                tag: u64::from(magic),
            },
        });
    }
    let version = dec.u8()?;
    if version != BINARY_VERSION {
        return Err(DecodeError {
            offset: 1,
            kind: DecodeKind::BadTag {
                what: "codec version",
                tag: u64::from(version),
            },
        });
    }
    let tag_at = dec.offset();
    let tag = dec.u8()?;
    let id = dec.uv()?;
    let _ = (tag_at, what);
    Ok((dec, tag, id))
}

fn decode_request_body(
    dec: &mut Dec<'_>,
    tag: u8,
    allow_batch: bool,
) -> Result<Request, DecodeError> {
    let tag_err = |dec: &Dec<'_>| DecodeError {
        offset: dec.offset().saturating_sub(1),
        kind: DecodeKind::BadTag {
            what: "request",
            tag: u64::from(tag),
        },
    };
    Ok(match tag {
        RQ_PING => Request::Ping,
        RQ_CHECKPOINT => Request::Checkpoint,
        RQ_FLUSH => Request::FlushWal,
        RQ_WAL_STATUS => Request::WalStatus,
        RQ_REPL_STATUS => Request::ReplStatus,
        RQ_STATS => Request::Stats,
        RQ_ROUTE_STATUS => Request::RouteStatus,
        RQ_SCRUB => Request::Scrub,
        RQ_SCRUB_STATUS => Request::ScrubStatus,
        RQ_VIEWS_STATUS => Request::ViewsStatus,
        RQ_TOPK => {
            let user = dec.str_()?;
            let attr = dec.str_()?;
            let k = dec.uv_len()?;
            let deadline_ms = dec.uv()?;
            let n = dec.checked_count(1)?;
            let mut state = Vec::with_capacity(n);
            for _ in 0..n {
                state.push(dec.str_()?);
            }
            Request::TopK {
                user,
                attr,
                k,
                deadline_ms,
                state,
            }
        }
        RQ_QUERY => {
            let user = dec.str_()?;
            let attr = dec.str_()?;
            let k = dec.uv_len()?;
            let deadline_ms = dec.uv()?;
            let n = dec.checked_count(1)?;
            let mut state = Vec::with_capacity(n);
            for _ in 0..n {
                state.push(dec.str_()?);
            }
            Request::Query {
                user,
                attr,
                k,
                deadline_ms,
                state,
            }
        }
        RQ_QUERY_DESC => Request::QueryDescriptor {
            user: dec.str_()?,
            attr: dec.str_()?,
            k: dec.uv_len()?,
            descriptor: dec.str_()?,
        },
        RQ_ADD_USER => Request::AddUser { user: dec.str_()? },
        RQ_RM_USER => Request::RemoveUser { user: dec.str_()? },
        RQ_PREF => Request::InsertPref {
            user: dec.str_()?,
            descriptor: dec.str_()?,
            attr: dec.str_()?,
            value: dec.str_()?,
            score: dec.f64_()?,
        },
        RQ_DEL => Request::RemovePref {
            user: dec.str_()?,
            index: dec.uv_len()?,
        },
        RQ_SCORE => Request::UpdateScore {
            user: dec.str_()?,
            index: dec.uv_len()?,
            score: dec.f64_()?,
        },
        RQ_MIGRATE => {
            let user = dec.str_()?;
            let epoch = dec.uv()?;
            let action_tag = dec.u8()?;
            let action = match action_tag {
                MA_EXPORT => MigrateAction::Export,
                MA_SNAPSHOT => MigrateAction::Snapshot,
                MA_PULL => MigrateAction::Pull {
                    from_lsn: dec.uv()?,
                    max: dec.uv()?,
                },
                MA_FENCE => MigrateAction::Fence,
                MA_IMPORT => {
                    let src_lsn = dec.uv()?;
                    let n = dec.checked_count(1)?;
                    let mut ops = Vec::with_capacity(n);
                    for _ in 0..n {
                        ops.push(dec.bytes()?);
                    }
                    MigrateAction::Import { src_lsn, ops }
                }
                MA_APPLY => {
                    let through = dec.uv()?;
                    let n = dec.checked_count(2)?;
                    let mut records = Vec::with_capacity(n);
                    for _ in 0..n {
                        records.push((dec.uv()?, dec.bytes()?));
                    }
                    MigrateAction::Apply { through, records }
                }
                MA_ACTIVATE => MigrateAction::Activate,
                MA_FINISH => MigrateAction::Finish,
                MA_ABORT => MigrateAction::Abort,
                other => {
                    return Err(DecodeError {
                        offset: dec.offset().saturating_sub(1),
                        kind: DecodeKind::BadTag {
                            what: "migrate action",
                            tag: u64::from(other),
                        },
                    })
                }
            };
            Request::MigrateUser {
                user,
                epoch,
                action,
            }
        }
        RQ_BATCH => {
            if !allow_batch {
                return Err(tag_err(dec));
            }
            let n = dec.checked_count(1)?;
            let mut requests = Vec::with_capacity(n);
            for _ in 0..n {
                let sub_tag = dec.u8()?;
                // Batches do not nest.
                requests.push(decode_request_body(dec, sub_tag, false)?);
            }
            Request::Batch { requests }
        }
        _ => return Err(tag_err(dec)),
    })
}

/// Decode a `ctxpref2` request frame payload (header, envelope budget
/// and tier, then the body).
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, DecodeError> {
    let (mut dec, tag, id) = header(payload, "request")?;
    let budget_ms = dec.uv()?;
    let tier_at = dec.offset();
    let tier_tag = dec.u8()?;
    let tier = Priority::from_wire_tag(tier_tag).ok_or(DecodeError {
        offset: tier_at,
        kind: DecodeKind::BadTag {
            what: "priority tier",
            tag: u64::from(tier_tag),
        },
    })?;
    let req = decode_request_body(&mut dec, tag, true)?;
    dec.expect_end()?;
    Ok(WireRequest {
        id,
        budget_ms,
        tier,
        req,
    })
}

/// Extract just the correlation id of a `ctxpref2` request whose body
/// failed to decode, so the refusal can still be matched to the
/// request that caused it. `None` if even the header is unreadable.
pub fn request_id_of(payload: &[u8]) -> Option<u64> {
    let (_, _, id) = header(payload, "request").ok()?;
    Some(id)
}

fn resp_tag(resp: &Response) -> u8 {
    match resp {
        Response::Pong => RS_PONG,
        Response::Ok => RS_OK,
        Response::Removed { .. } => RS_REMOVED,
        Response::Answer(_) => RS_ANSWER,
        Response::Text { .. } => RS_TEXT,
        Response::Busy { .. } => RS_BUSY,
        Response::Err { .. } => RS_ERR,
        Response::NotPrimary => RS_NOT_PRIMARY,
        Response::Migrating { .. } => RS_MIGRATING,
        Response::UserCut { .. } => RS_USER_CUT,
        Response::Snapshot { .. } => RS_SNAPSHOT,
        Response::Records { .. } => RS_RECORDS,
        Response::Gone => RS_GONE,
        Response::Applied { .. } => RS_APPLIED,
        Response::RouteInfo { .. } => RS_ROUTE_INFO,
        Response::Batch { .. } => RS_BATCH,
        Response::ScrubReport { .. } => RS_SCRUB_REPORT,
        Response::ScrubInfo { .. } => RS_SCRUB_INFO,
    }
}

fn put_response_body(out: &mut Vec<u8>, resp: &Response) {
    match resp {
        Response::Pong | Response::Ok | Response::NotPrimary | Response::Gone => {}
        Response::Removed { score } => put_f64(out, *score),
        Response::Answer(a) => {
            put_str(out, &a.step);
            put_uv(out, a.elapsed_us);
            match &a.resolved_state {
                Some(s) => {
                    out.push(1);
                    put_str(out, s);
                }
                None => out.push(0),
            }
            put_uv(out, a.fallbacks.len() as u64);
            for fb in &a.fallbacks {
                put_str(out, &fb.step);
                put_str(out, &fb.reason);
            }
            put_uv(out, a.rows.len() as u64);
            for row in &a.rows {
                put_str(out, &row.name);
                put_f64(out, row.score);
            }
        }
        Response::Text { body } => put_str(out, body),
        Response::Busy {
            limit,
            retry_after_ms,
        } => {
            put_uv(out, *limit as u64);
            put_uv(out, *retry_after_ms);
        }
        Response::Err { kind, message } => {
            put_str(out, kind);
            put_str(out, message);
        }
        Response::Migrating { user } => put_str(out, user),
        Response::UserCut {
            present,
            shard,
            last_lsn,
            digest,
        } => {
            out.push(u8::from(*present));
            put_uv(out, *shard);
            put_uv(out, *last_lsn);
            out.extend_from_slice(&digest.to_le_bytes());
        }
        Response::Snapshot { src_lsn, ops } => {
            put_uv(out, *src_lsn);
            put_uv(out, ops.len() as u64);
            for op in ops {
                put_bytes(out, op);
            }
        }
        Response::Records { through, records } => {
            put_uv(out, *through);
            put_uv(out, records.len() as u64);
            for (lsn, payload) in records {
                put_uv(out, *lsn);
                put_bytes(out, payload);
            }
        }
        Response::Applied { watermark } => put_uv(out, *watermark),
        Response::RouteInfo {
            has_primary,
            epoch,
            users,
            migrations,
        } => {
            out.push(u8::from(*has_primary));
            put_uv(out, *epoch);
            put_uv(out, *users);
            put_uv(out, *migrations);
        }
        Response::Batch { responses } => {
            put_uv(out, responses.len() as u64);
            for sub in responses {
                out.push(resp_tag(sub));
                put_response_body(out, sub);
            }
        }
        Response::ScrubReport {
            segments_verified,
            checkpoints_verified,
            read_errors,
            quarantined,
            healed,
        } => {
            put_uv(out, *segments_verified);
            put_uv(out, *checkpoints_verified);
            put_uv(out, *read_errors);
            put_uv(out, *quarantined);
            out.push(u8::from(*healed));
        }
        Response::ScrubInfo {
            passes,
            quarantined,
            read_errors,
            heals,
            rescued_shards,
            disk_full_sheds,
            rotate_failures,
        } => {
            put_uv(out, *passes);
            put_uv(out, *quarantined);
            put_uv(out, *read_errors);
            put_uv(out, *heals);
            put_uv(out, *rescued_shards);
            put_uv(out, *disk_full_sheds);
            put_uv(out, *rotate_failures);
        }
    }
}

/// Encode one response as a `ctxpref2` frame payload.
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.push(BINARY_MAGIC);
    out.push(BINARY_VERSION);
    out.push(resp_tag(resp));
    put_uv(&mut out, id);
    put_response_body(&mut out, resp);
    out
}

fn decode_response_body(
    dec: &mut Dec<'_>,
    tag: u8,
    allow_batch: bool,
) -> Result<Response, DecodeError> {
    let tag_err = |dec: &Dec<'_>| DecodeError {
        offset: dec.offset().saturating_sub(1),
        kind: DecodeKind::BadTag {
            what: "response",
            tag: u64::from(tag),
        },
    };
    Ok(match tag {
        RS_PONG => Response::Pong,
        RS_OK => Response::Ok,
        RS_NOT_PRIMARY => Response::NotPrimary,
        RS_GONE => Response::Gone,
        RS_REMOVED => Response::Removed { score: dec.f64_()? },
        RS_ANSWER => {
            let step = dec.str_()?;
            let elapsed_us = dec.uv()?;
            let resolved_state = match dec.u8()? {
                0 => None,
                1 => Some(dec.str_()?),
                other => {
                    return Err(DecodeError {
                        offset: dec.offset().saturating_sub(1),
                        kind: DecodeKind::BadTag {
                            what: "resolved-state flag",
                            tag: u64::from(other),
                        },
                    })
                }
            };
            let nf = dec.checked_count(2)?;
            let mut fallbacks = Vec::with_capacity(nf);
            for _ in 0..nf {
                fallbacks.push(WireFallback {
                    step: dec.str_()?,
                    reason: dec.str_()?,
                });
            }
            let nr = dec.checked_count(9)?;
            let mut rows = Vec::with_capacity(nr);
            for _ in 0..nr {
                rows.push(AnswerRow {
                    name: dec.str_()?,
                    score: dec.f64_()?,
                });
            }
            Response::Answer(RemoteAnswer {
                step,
                elapsed_us,
                resolved_state,
                fallbacks,
                rows,
            })
        }
        RS_TEXT => Response::Text { body: dec.str_()? },
        RS_BUSY => Response::Busy {
            limit: dec.uv_len()?,
            retry_after_ms: dec.uv()?,
        },
        RS_ERR => Response::Err {
            kind: dec.str_()?,
            message: dec.str_()?,
        },
        RS_MIGRATING => Response::Migrating { user: dec.str_()? },
        RS_USER_CUT => {
            let present = dec.u8()? != 0;
            let shard = dec.uv()?;
            let last_lsn = dec.uv()?;
            let mut raw = [0u8; 8];
            for b in &mut raw {
                *b = dec.u8()?;
            }
            Response::UserCut {
                present,
                shard,
                last_lsn,
                digest: u64::from_le_bytes(raw),
            }
        }
        RS_SNAPSHOT => {
            let src_lsn = dec.uv()?;
            let n = dec.checked_count(1)?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(dec.bytes()?);
            }
            Response::Snapshot { src_lsn, ops }
        }
        RS_RECORDS => {
            let through = dec.uv()?;
            let n = dec.checked_count(2)?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push((dec.uv()?, dec.bytes()?));
            }
            Response::Records { through, records }
        }
        RS_APPLIED => Response::Applied {
            watermark: dec.uv()?,
        },
        RS_SCRUB_REPORT => Response::ScrubReport {
            segments_verified: dec.uv()?,
            checkpoints_verified: dec.uv()?,
            read_errors: dec.uv()?,
            quarantined: dec.uv()?,
            healed: dec.u8()? != 0,
        },
        RS_SCRUB_INFO => Response::ScrubInfo {
            passes: dec.uv()?,
            quarantined: dec.uv()?,
            read_errors: dec.uv()?,
            heals: dec.uv()?,
            rescued_shards: dec.uv()?,
            disk_full_sheds: dec.uv()?,
            rotate_failures: dec.uv()?,
        },
        RS_ROUTE_INFO => Response::RouteInfo {
            has_primary: dec.u8()? != 0,
            epoch: dec.uv()?,
            users: dec.uv()?,
            migrations: dec.uv()?,
        },
        RS_BATCH => {
            if !allow_batch {
                return Err(tag_err(dec));
            }
            let n = dec.checked_count(1)?;
            let mut responses = Vec::with_capacity(n);
            for _ in 0..n {
                let sub_tag = dec.u8()?;
                responses.push(decode_response_body(dec, sub_tag, false)?);
            }
            Response::Batch { responses }
        }
        _ => return Err(tag_err(dec)),
    })
}

/// Decode a `ctxpref2` response frame payload.
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, DecodeError> {
    let (mut dec, tag, id) = header(payload, "response")?;
    let resp = decode_response_body(&mut dec, tag, true)?;
    dec.expect_end()?;
    Ok(WireResponse { id, resp })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DecodeKind;

    fn roundtrip_req(req: Request) {
        let payload = encode_request(0x1234_5678_9abc, &req);
        assert!(is_binary(&payload));
        let back = decode_request(&payload).expect("decode");
        assert_eq!(back.id, 0x1234_5678_9abc);
        assert_eq!(back.budget_ms, 0);
        assert_eq!(back.tier, Priority::Interactive);
        assert_eq!(back.req, req);
        // The enveloped form carries the budget and tier through.
        let payload = encode_request_enveloped(7, &req, 1500, Priority::Bulk);
        let back = decode_request(&payload).expect("decode enveloped");
        assert_eq!(back.budget_ms, 1500);
        assert_eq!(back.tier, Priority::Bulk);
        assert_eq!(back.req, req);
    }

    fn roundtrip_resp(resp: Response) {
        let payload = encode_response(7, &resp);
        let back = decode_response(&payload).expect("decode");
        assert_eq!(back.id, 7);
        assert_eq!(back.resp, resp);
    }

    #[test]
    fn varints_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_uv(&mut out, v);
            let mut dec = Dec::new(&out);
            assert_eq!(dec.uv().unwrap(), v);
            dec.expect_end().unwrap();
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 10 continuation bytes overflow a u64.
        let overlong = [0xff; 11];
        let mut dec = Dec::new(&overlong);
        let err = dec.uv().unwrap_err();
        assert_eq!(err.kind, DecodeKind::VarintOverflow);
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn all_requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Query {
            user: "Ano Poli visitor".into(),
            attr: "name".into(),
            k: 10,
            deadline_ms: 250,
            state: vec!["Plaka".into(), "warm".into(), "friends".into()],
        });
        roundtrip_req(Request::TopK {
            user: "Ano Poli visitor".into(),
            attr: "name".into(),
            k: 3,
            deadline_ms: 100,
            state: vec!["Plaka".into(), "warm".into(), "friends".into()],
        });
        roundtrip_req(Request::ViewsStatus);
        roundtrip_req(Request::QueryDescriptor {
            user: "me".into(),
            attr: "name".into(),
            k: 3,
            descriptor: "location = Athens".into(),
        });
        roundtrip_req(Request::AddUser { user: "".into() });
        roundtrip_req(Request::RemoveUser {
            user: "a\nb".into(),
        });
        roundtrip_req(Request::InsertPref {
            user: "me".into(),
            descriptor: "accompanying_people = family".into(),
            attr: "type".into(),
            value: "zoo".into(),
            score: 0.95,
        });
        roundtrip_req(Request::RemovePref {
            user: "me".into(),
            index: 7,
        });
        roundtrip_req(Request::UpdateScore {
            user: "me".into(),
            index: 2,
            score: 0.125,
        });
        roundtrip_req(Request::Checkpoint);
        roundtrip_req(Request::FlushWal);
        roundtrip_req(Request::WalStatus);
        roundtrip_req(Request::ReplStatus);
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::RouteStatus);
        roundtrip_req(Request::Scrub);
        roundtrip_req(Request::ScrubStatus);
        for action in [
            MigrateAction::Export,
            MigrateAction::Snapshot,
            MigrateAction::Pull {
                from_lsn: 42,
                max: 64,
            },
            MigrateAction::Fence,
            MigrateAction::Import {
                src_lsn: 17,
                ops: vec![b"add user\x01x".to_vec(), vec![]],
            },
            MigrateAction::Apply {
                through: 99,
                records: vec![(18, b"score user 0 0.5".to_vec()), (21, vec![0, 255, 7])],
            },
            MigrateAction::Activate,
            MigrateAction::Finish,
            MigrateAction::Abort,
        ] {
            roundtrip_req(Request::MigrateUser {
                user: "u".into(),
                epoch: 9,
                action,
            });
        }
        roundtrip_req(Request::Batch {
            requests: vec![
                Request::AddUser { user: "a".into() },
                Request::InsertPref {
                    user: "a".into(),
                    descriptor: "d = x".into(),
                    attr: "t".into(),
                    value: "v".into(),
                    score: 0.5,
                },
                Request::Ping,
            ],
        });
    }

    #[test]
    fn all_responses_roundtrip() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Removed { score: 0.5 });
        roundtrip_resp(Response::Answer(RemoteAnswer {
            step: "nearest-state".into(),
            elapsed_us: 1234,
            resolved_state: Some("(Athens, warm, all)".into()),
            fallbacks: vec![WireFallback {
                step: "exact".into(),
                reason: "panic: injected".into(),
            }],
            rows: vec![
                AnswerRow {
                    name: "Acropolis Museum".into(),
                    score: 0.9,
                },
                AnswerRow {
                    name: "Plaka walk".into(),
                    score: 0.25,
                },
            ],
        }));
        roundtrip_resp(Response::Text {
            body: "appends 12\nshard 0: …\n".into(),
        });
        roundtrip_resp(Response::Busy {
            limit: 4,
            retry_after_ms: 120,
        });
        roundtrip_resp(Response::Err {
            kind: "core".into(),
            message: "no such user \"ghost\"".into(),
        });
        roundtrip_resp(Response::NotPrimary);
        roundtrip_resp(Response::Migrating { user: "u".into() });
        roundtrip_resp(Response::UserCut {
            present: true,
            shard: 3,
            last_lsn: 117,
            digest: 0xDEAD_BEEF_DEAD_BEEF,
        });
        roundtrip_resp(Response::Snapshot {
            src_lsn: 12,
            ops: vec![b"add me".to_vec(), vec![1, 2, 3]],
        });
        roundtrip_resp(Response::Records {
            through: 40,
            records: vec![(39, b"ins me pref".to_vec()), (40, vec![255])],
        });
        roundtrip_resp(Response::Gone);
        roundtrip_resp(Response::Applied { watermark: 88 });
        roundtrip_resp(Response::RouteInfo {
            has_primary: true,
            epoch: 4,
            users: 1000,
            migrations: 2,
        });
        roundtrip_resp(Response::Batch {
            responses: vec![
                Response::Ok,
                Response::Err {
                    kind: "core".into(),
                    message: "nope".into(),
                },
            ],
        });
        roundtrip_resp(Response::ScrubReport {
            segments_verified: 12,
            checkpoints_verified: 1,
            read_errors: 2,
            quarantined: 1,
            healed: true,
        });
        roundtrip_resp(Response::ScrubInfo {
            passes: 9,
            quarantined: 1,
            read_errors: 3,
            heals: 1,
            rescued_shards: 2,
            disk_full_sheds: 4,
            rotate_failures: 0,
        });
    }

    #[test]
    fn nested_batches_are_rejected() {
        let nested = Request::Batch {
            requests: vec![Request::Batch {
                requests: vec![Request::Ping],
            }],
        };
        let payload = encode_request(1, &nested);
        let err = decode_request(&payload).unwrap_err();
        assert!(matches!(err.kind, DecodeKind::BadTag { .. }));
    }

    #[test]
    fn hostile_length_claims_fail_typed_before_allocation() {
        // A string claiming u64::MAX bytes in a tiny payload (the two
        // zero bytes after the id are the envelope's budget and tier).
        let mut payload = vec![BINARY_MAGIC, BINARY_VERSION, RQ_ADD_USER, 0, 0, 0];
        put_uv(&mut payload, u64::MAX);
        let err = decode_request(&payload).unwrap_err();
        assert!(
            matches!(err.kind, DecodeKind::LengthOverflow { declared, .. } if declared == u64::MAX)
        );
        assert_eq!(err.offset, 6);
    }

    #[test]
    fn unknown_tier_tag_fails_typed() {
        let mut payload = vec![BINARY_MAGIC, BINARY_VERSION, RQ_PING, 0, 0, 3];
        let err = decode_request(&payload).unwrap_err();
        assert!(
            matches!(
                err.kind,
                DecodeKind::BadTag {
                    what: "priority tier",
                    tag: 3
                }
            ),
            "got {err:?}"
        );
        assert_eq!(err.offset, 5);
        // A valid tier decodes.
        payload[5] = 2;
        let back = decode_request(&payload).expect("maintenance ping");
        assert_eq!(back.tier, Priority::Maintenance);
    }

    #[test]
    fn truncation_at_every_offset_fails_typed() {
        let req = Request::Query {
            user: "alice".into(),
            attr: "name".into(),
            k: 5,
            deadline_ms: 250,
            state: vec!["Plaka".into(), "warm".into()],
        };
        let payload = encode_request(99, &req);
        for cut in 0..payload.len() {
            assert!(
                decode_request(&payload[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(1, &Request::Ping);
        payload.push(0);
        let err = decode_request(&payload).unwrap_err();
        assert_eq!(err.kind, DecodeKind::TrailingBytes);
    }

    #[test]
    fn hex_errors_carry_offsets() {
        assert_eq!(hex_decode("00ff7a").unwrap(), vec![0x00, 0xff, 0x7a]);
        let odd = hex_decode("abc").unwrap_err();
        assert_eq!(odd.kind, DecodeKind::OddHexLength);
        assert_eq!(odd.offset, 2);
        let bad = hex_decode("aazz").unwrap_err();
        assert_eq!(bad.kind, DecodeKind::BadHexDigit);
        assert_eq!(bad.offset, 2);
    }
}
