//! Typed errors of the TCP serving layer.

use std::error::Error;
use std::fmt;
use std::io;

/// Why a wire frame could not be decoded. Every variant is a clean,
/// typed rejection: a malformed or hostile peer can make the decoder
/// *fail*, never panic or over-allocate.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended inside a frame (torn header or payload).
    Truncated,
    /// The declared payload length exceeds the hard cap; rejected
    /// before any buffer was allocated.
    Oversized {
        /// The length the header claimed.
        declared: u64,
        /// The configured cap ([`crate::frame::MAX_FRAME_PAYLOAD`]).
        max: u32,
    },
    /// The stored checksum does not match the payload (corruption in
    /// flight, or a length-field flip).
    Checksum {
        /// The checksum the frame carried.
        stored: u64,
        /// The checksum computed over the received payload.
        computed: u64,
    },
    /// The underlying socket failed.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated mid-stream"),
            Self::Oversized { declared, max } => {
                write!(f, "declared frame length {declared} exceeds cap {max}")
            }
            Self::Checksum { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch (stored {stored:#x}, computed {computed:#x})"
                )
            }
            Self::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// A frame decoded, but its payload is not a well-formed protocol
/// message (wrong version tag, unknown verb, bad field).
#[derive(Debug)]
pub struct ProtoError {
    /// What was wrong.
    pub reason: String,
}

impl ProtoError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed protocol message: {}", self.reason)
    }
}

impl Error for ProtoError {}

/// Errors of the client/server request path.
#[derive(Debug)]
pub enum NetError {
    /// The socket layer failed (connect, read, write).
    Io(io::Error),
    /// A frame could not be decoded.
    Frame(FrameError),
    /// A frame decoded but carried a malformed message.
    Proto(ProtoError),
    /// The server refused the connection: its connection limit is
    /// saturated. Typed so callers can back off instead of hanging.
    ServerBusy {
        /// The server's configured connection limit.
        limit: usize,
    },
    /// The server processed the request and returned a typed failure.
    Remote {
        /// The error kind token (mirrors `ServiceError` variants:
        /// `overloaded`, `deadline`, `core`, …).
        kind: String,
        /// The server-rendered message.
        message: String,
    },
    /// The client exhausted its reconnect/retry budget.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The final attempt's failure, rendered.
        last: String,
    },
    /// The peer answered with a different message than the request
    /// calls for (protocol confusion — treated as fatal for the
    /// connection).
    UnexpectedResponse {
        /// What arrived, rendered.
        got: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "network i/o: {e}"),
            Self::Frame(e) => write!(f, "{e}"),
            Self::Proto(e) => write!(f, "{e}"),
            Self::ServerBusy { limit } => {
                write!(f, "server busy: connection limit {limit} saturated")
            }
            Self::Remote { kind, message } => write!(f, "server error [{kind}]: {message}"),
            Self::RetriesExhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempt(s): {last}")
            }
            Self::UnexpectedResponse { got } => {
                write!(f, "unexpected response: {got}")
            }
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Frame(e) => Some(e),
            Self::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        Self::Proto(e)
    }
}
