//! Typed errors of the TCP serving layer.

use std::error::Error;
use std::fmt;
use std::io;

/// Why a wire frame could not be decoded. Every variant is a clean,
/// typed rejection: a malformed or hostile peer can make the decoder
/// *fail*, never panic or over-allocate.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended inside a frame (torn header or payload).
    Truncated,
    /// The declared payload length exceeds the hard cap; rejected
    /// before any buffer was allocated.
    Oversized {
        /// The length the header claimed.
        declared: u64,
        /// The configured cap ([`crate::frame::MAX_FRAME_PAYLOAD`]).
        max: u32,
    },
    /// The stored checksum does not match the payload (corruption in
    /// flight, or a length-field flip).
    Checksum {
        /// The checksum the frame carried.
        stored: u64,
        /// The checksum computed over the received payload.
        computed: u64,
    },
    /// The underlying socket failed.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated mid-stream"),
            Self::Oversized { declared, max } => {
                write!(f, "declared frame length {declared} exceeds cap {max}")
            }
            Self::Checksum { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch (stored {stored:#x}, computed {computed:#x})"
                )
            }
            Self::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Why a byte sequence could not be decoded, with the **byte offset**
/// at which decoding failed. This is the one decode-failure currency
/// of the wire layer: the binary `ctxpref2` codec, the hex decoders of
/// the text protocols, and the frame header parser all report through
/// it, so every malformed input — odd-length hex, a bad hex digit, a
/// truncated varint, a hostile length claim — fails with the same
/// shape and never loses the offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset into the payload at which decoding failed.
    pub offset: usize,
    /// What was wrong at that offset.
    pub kind: DecodeKind,
}

/// The failure classes of [`DecodeError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeKind {
    /// The input ended before the value was complete.
    Truncated,
    /// A tag byte (message kind, action, response kind) is not in the
    /// vocabulary.
    BadTag {
        /// What kind of tag was being read.
        what: &'static str,
        /// The tag value found.
        tag: u64,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A hex payload has an odd number of digits (offset points at the
    /// dangling digit).
    OddHexLength,
    /// A byte of a hex payload is not a hex digit.
    BadHexDigit,
    /// A declared length or count exceeds what the input (or a hard
    /// cap) can honour; rejected before any allocation of that size.
    LengthOverflow {
        /// The length the input claimed.
        declared: u64,
        /// The most that could be honoured.
        max: u64,
    },
    /// A varint ran over its maximum width.
    VarintOverflow,
    /// Input remained after the message was complete.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Self { offset, kind } = self;
        match kind {
            DecodeKind::Truncated => write!(f, "input truncated at byte {offset}"),
            DecodeKind::BadTag { what, tag } => {
                write!(f, "unknown {what} tag {tag} at byte {offset}")
            }
            DecodeKind::BadUtf8 => write!(f, "invalid utf-8 at byte {offset}"),
            DecodeKind::OddHexLength => write!(f, "odd-length hex at byte {offset}"),
            DecodeKind::BadHexDigit => write!(f, "bad hex digit at byte {offset}"),
            DecodeKind::LengthOverflow { declared, max } => write!(
                f,
                "declared length {declared} exceeds limit {max} at byte {offset}"
            ),
            DecodeKind::VarintOverflow => write!(f, "varint overflow at byte {offset}"),
            DecodeKind::TrailingBytes => write!(f, "trailing bytes at byte {offset}"),
        }
    }
}

impl Error for DecodeError {}

impl From<DecodeError> for ProtoError {
    fn from(e: DecodeError) -> Self {
        ProtoError::new(e.to_string())
    }
}

/// A frame decoded, but its payload is not a well-formed protocol
/// message (wrong version tag, unknown verb, bad field).
#[derive(Debug)]
pub struct ProtoError {
    /// What was wrong.
    pub reason: String,
}

impl ProtoError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed protocol message: {}", self.reason)
    }
}

impl Error for ProtoError {}

/// Errors of the client/server request path.
#[derive(Debug)]
pub enum NetError {
    /// The socket layer failed (connect, read, write).
    Io(io::Error),
    /// A frame could not be decoded.
    Frame(FrameError),
    /// A frame decoded but carried a malformed message.
    Proto(ProtoError),
    /// The server shed the request: its connection limit is saturated
    /// or admission control refused the request's tier. Typed so
    /// callers can back off instead of hanging, with the server's own
    /// hint for how long.
    ServerBusy {
        /// The saturated limit (connections or in-flight requests).
        limit: usize,
        /// The server's cooperative backoff hint (zero when the peer
        /// gave none).
        retry_after: std::time::Duration,
    },
    /// The server processed the request and returned a typed failure.
    Remote {
        /// The error kind token (mirrors `ServiceError` variants:
        /// `overloaded`, `deadline`, `core`, …).
        kind: String,
        /// The server-rendered message.
        message: String,
    },
    /// The client exhausted its reconnect/retry budget.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The final attempt's failure, rendered.
        last: String,
    },
    /// The peer answered with a different message than the request
    /// calls for (protocol confusion — treated as fatal for the
    /// connection).
    UnexpectedResponse {
        /// What arrived, rendered.
        got: String,
    },
    /// The caller's end-to-end budget ran out on the client side —
    /// spent on earlier attempts and backoff sleeps — before another
    /// attempt could be sent. Nothing was put on the wire for the
    /// attempt that would have followed.
    BudgetExhausted {
        /// The budget the caller supplied for the whole request.
        budget: std::time::Duration,
    },
    /// The client has no live connection where one was required — for
    /// example, a connect raced a concurrent teardown. Typed so the
    /// caller can redial; the old code path panicked here.
    NotConnected,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "network i/o: {e}"),
            Self::Frame(e) => write!(f, "{e}"),
            Self::Proto(e) => write!(f, "{e}"),
            Self::ServerBusy { limit, retry_after } => {
                write!(
                    f,
                    "server busy: limit {limit} saturated (retry after {retry_after:?})"
                )
            }
            Self::Remote { kind, message } => write!(f, "server error [{kind}]: {message}"),
            Self::RetriesExhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempt(s): {last}")
            }
            Self::UnexpectedResponse { got } => {
                write!(f, "unexpected response: {got}")
            }
            Self::BudgetExhausted { budget } => {
                write!(
                    f,
                    "request budget {budget:?} exhausted before the next attempt"
                )
            }
            Self::NotConnected => {
                write!(f, "no live connection (connect raced a concurrent close)")
            }
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Frame(e) => Some(e),
            Self::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        Self::Proto(e)
    }
}
