//! Wire framing: length-prefixed, FNV-1a-checksummed frames.
//!
//! Every message on a `ctxpref` socket travels as one frame:
//!
//! ```text
//! [u32 payload_len | u64 checksum | payload…]      (little endian)
//! ```
//!
//! The discipline is the WAL record framing's (`ctxpref-wal`), minus
//! the LSN: the checksum is FNV-1a 64 over `payload_len ‖ payload`, so
//! a bit flip anywhere in the frame — including the length field —
//! fails verification. The declared length is validated against
//! [`MAX_FRAME_PAYLOAD`] **before any allocation**, so a hostile peer
//! claiming a multi-gigabyte frame costs the server twelve bytes of
//! header read and one typed error, never memory.

use std::io::{Read, Write};

use ctxpref_faults::hit_io;
use ctxpref_faults::sites::{NET_FRAME_READ, NET_FRAME_WRITE};

use crate::error::{DecodeError, DecodeKind, FrameError};

/// Bytes of the per-frame header: `u32` payload length, `u64` checksum.
pub const FRAME_HEADER: usize = 4 + 8;

/// Hard cap on a single frame payload. A length field above this is
/// treated as a hostile or damaged frame and rejected before any
/// buffer is allocated.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 24;

fn fnv_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The frame checksum: FNV-1a 64 over length and payload.
pub fn frame_checksum(payload: &[u8]) -> u64 {
    let h = fnv_update(0xcbf2_9ce4_8422_2325, &(payload.len() as u32).to_le_bytes());
    fnv_update(h, payload)
}

/// Parse a frame header: the declared payload length and stored
/// checksum. Fails through the wire layer's one decode-error currency
/// ([`DecodeError`], offset included): a short header is `Truncated`
/// at the byte where input ran out, and a hostile length claim is
/// `LengthOverflow` at offset 0 — typed, before any payload buffer
/// could be sized by it.
pub fn decode_header(header: &[u8]) -> Result<(u32, u64), DecodeError> {
    if header.len() < FRAME_HEADER {
        return Err(DecodeError {
            offset: header.len(),
            kind: DecodeKind::Truncated,
        });
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let checksum = u64::from_le_bytes([
        header[4], header[5], header[6], header[7], header[8], header[9], header[10], header[11],
    ]);
    if len > MAX_FRAME_PAYLOAD {
        return Err(DecodeError {
            offset: 0,
            kind: DecodeKind::LengthOverflow {
                declared: u64::from(len),
                max: u64::from(MAX_FRAME_PAYLOAD),
            },
        });
    }
    Ok((len, checksum))
}

/// Encode `payload` as one frame.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(FrameError::Oversized {
            declared: payload.len() as u64,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Write `payload` as one frame onto `w` (single `write_all`, so the
/// OS sees whole frames). Passes the `net.frame.write` fault site.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    hit_io(NET_FRAME_WRITE)?;
    let frame = encode_frame(payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Write many payloads as frames in one coalesced `write_all`, so a
/// pipelined burst costs one syscall instead of one per frame. Each
/// frame still passes the `net.frame.write` fault site, so chaos
/// plans that tear writes see the same hit ordinals as the serial
/// path.
pub fn write_frames(w: &mut impl Write, payloads: &[Vec<u8>]) -> Result<(), FrameError> {
    let mut buf = Vec::new();
    for p in payloads {
        hit_io(NET_FRAME_WRITE)?;
        buf.extend_from_slice(&encode_frame(p)?);
    }
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Read one frame through a caller-held [`FrameDecoder`]: each socket
/// read pulls whatever bytes the kernel has buffered (up to 16 KiB),
/// so draining a pipelined burst of responses costs a handful of
/// syscalls instead of two per frame. Passes the `net.frame.read`
/// fault site once per socket read.
///
/// Returns `Ok(None)` only on a clean close at a frame boundary with
/// nothing buffered; bytes left inside a torn frame are `Truncated`.
pub fn read_frame_buffered(
    r: &mut impl Read,
    dec: &mut FrameDecoder,
) -> Result<Option<Vec<u8>>, FrameError> {
    loop {
        if let Some(payload) = dec.next_frame()? {
            return Ok(Some(payload));
        }
        hit_io(NET_FRAME_READ)?;
        let mut chunk = [0u8; 16 * 1024];
        match r.read(&mut chunk) {
            Ok(0) if dec.buffered() == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => dec.extend(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Read one frame's payload from `r`. Passes the `net.frame.read`
/// fault site.
///
/// * `Ok(None)` — clean end of stream **at a frame boundary** (the
///   peer closed between frames).
/// * [`FrameError::Truncated`] — the stream ended inside a header or
///   payload (a torn frame).
/// * [`FrameError::Oversized`] — the declared length exceeds
///   [`MAX_FRAME_PAYLOAD`]; returned before any payload buffer is
///   allocated.
/// * [`FrameError::Checksum`] — the payload (or length) was corrupted
///   in flight.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    hit_io(NET_FRAME_READ)?;
    let mut header = [0u8; FRAME_HEADER];
    let mut filled = 0;
    while filled < FRAME_HEADER {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let (len, checksum) = match decode_header(&header) {
        Ok(parsed) => parsed,
        // Reject on the declared length alone: no buffer exists yet,
        // so a hostile 4 GiB claim cannot OOM the server.
        Err(DecodeError {
            kind: DecodeKind::LengthOverflow { declared, .. },
            ..
        }) => {
            return Err(FrameError::Oversized {
                declared,
                max: MAX_FRAME_PAYLOAD,
            })
        }
        Err(_) => return Err(FrameError::Truncated),
    };
    // Grow the buffer with bytes actually received rather than
    // trusting the declared length: a torn or lying frame costs what
    // arrived on the wire, not what the header claimed.
    let mut payload = Vec::new();
    let mut taken = r.by_ref().take(u64::from(len));
    taken.read_to_end(&mut payload)?;
    if payload.len() < len as usize {
        return Err(FrameError::Truncated);
    }
    let computed = frame_checksum(&payload);
    if computed != checksum {
        return Err(FrameError::Checksum {
            stored: checksum,
            computed,
        });
    }
    Ok(Some(payload))
}

/// An incremental frame decoder for nonblocking reads: the reactor
/// feeds whatever bytes the socket had via [`FrameDecoder::extend`]
/// and drains complete frames with [`FrameDecoder::next_frame`]. Partial
/// frames simply wait for more input; the hostile-length check runs
/// as soon as twelve header bytes exist, so a lying peer is rejected
/// while the buffer still holds only what actually arrived.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: drop the consumed prefix once it
        // dominates the buffer, so a long-lived connection doesn't
        // accrete every frame it ever carried.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Drain one complete frame's payload, if the buffer holds one.
    ///
    /// * `Ok(Some(payload))` — one whole, checksum-verified frame.
    /// * `Ok(None)` — no complete frame yet; feed more bytes.
    /// * `Err(_)` — the stream is poisoned (hostile length or failed
    ///   checksum); the connection should be closed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER {
            return Ok(None);
        }
        let (len, checksum) = match decode_header(avail) {
            Ok(parsed) => parsed,
            Err(DecodeError {
                kind: DecodeKind::LengthOverflow { declared, .. },
                ..
            }) => {
                return Err(FrameError::Oversized {
                    declared,
                    max: MAX_FRAME_PAYLOAD,
                })
            }
            Err(_) => return Ok(None),
        };
        let total = FRAME_HEADER + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[FRAME_HEADER..total].to_vec();
        let computed = frame_checksum(&payload);
        if computed != checksum {
            return Err(FrameError::Checksum {
                stored: checksum,
                computed,
            });
        }
        self.pos += total;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = encode_frame(b"hello wire").unwrap();
        let mut cur = &frame[..];
        assert_eq!(
            read_frame(&mut cur).unwrap().as_deref(),
            Some(&b"hello wire"[..])
        );
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = encode_frame(b"").unwrap();
        let mut cur = &frame[..];
        assert_eq!(read_frame(&mut cur).unwrap().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn oversized_length_is_rejected_from_header_alone() {
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(&0u64.to_le_bytes());
        let mut cur = &hostile[..];
        match read_frame(&mut cur) {
            Err(FrameError::Oversized { declared, max }) => {
                assert_eq!(declared, u64::from(u32::MAX));
                assert_eq!(max, MAX_FRAME_PAYLOAD);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn torn_header_and_payload_are_truncated() {
        let frame = encode_frame(b"payload").unwrap();
        for cut in 1..frame.len() {
            let mut cur = &frame[..cut];
            match read_frame(&mut cur) {
                Err(FrameError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_bytes_fail_checksum() {
        let frame = encode_frame(b"sensitive payload").unwrap();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            let mut cur = &bad[..];
            match read_frame(&mut cur) {
                Err(_) => {}
                Ok(p) => panic!("flip at {i} decoded as {p:?}"),
            }
        }
    }

    #[test]
    fn incremental_decoder_handles_any_chunking() {
        let mut stream = Vec::new();
        let payloads: &[&[u8]] = &[b"first", b"", b"third frame, longer"];
        for p in payloads {
            stream.extend_from_slice(&encode_frame(p).unwrap());
        }
        for chunk in [1, 2, 3, 7, stream.len()] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                dec.extend(piece);
                while let Some(payload) = dec.next_frame().unwrap() {
                    got.push(payload);
                }
            }
            assert_eq!(got.len(), payloads.len(), "chunk size {chunk}");
            for (g, p) in got.iter().zip(payloads) {
                assert_eq!(g.as_slice(), *p);
            }
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn incremental_decoder_rejects_hostile_length_from_header() {
        let mut dec = FrameDecoder::new();
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(&0u64.to_le_bytes());
        dec.extend(&hostile);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn incremental_decoder_rejects_corruption() {
        let mut frame = encode_frame(b"payload").unwrap();
        frame[FRAME_HEADER] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.extend(&frame);
        assert!(matches!(dec.next_frame(), Err(FrameError::Checksum { .. })));
    }

    #[test]
    fn decode_header_is_typed() {
        let err = decode_header(&[0u8; 4]).unwrap_err();
        assert_eq!(err.kind, crate::error::DecodeKind::Truncated);
        assert_eq!(err.offset, 4);
    }
}
