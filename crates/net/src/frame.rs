//! Wire framing: length-prefixed, FNV-1a-checksummed frames.
//!
//! Every message on a `ctxpref` socket travels as one frame:
//!
//! ```text
//! [u32 payload_len | u64 checksum | payload…]      (little endian)
//! ```
//!
//! The discipline is the WAL record framing's (`ctxpref-wal`), minus
//! the LSN: the checksum is FNV-1a 64 over `payload_len ‖ payload`, so
//! a bit flip anywhere in the frame — including the length field —
//! fails verification. The declared length is validated against
//! [`MAX_FRAME_PAYLOAD`] **before any allocation**, so a hostile peer
//! claiming a multi-gigabyte frame costs the server twelve bytes of
//! header read and one typed error, never memory.

use std::io::{Read, Write};

use ctxpref_faults::hit_io;
use ctxpref_faults::sites::{NET_FRAME_READ, NET_FRAME_WRITE};

use crate::error::FrameError;

/// Bytes of the per-frame header: `u32` payload length, `u64` checksum.
pub const FRAME_HEADER: usize = 4 + 8;

/// Hard cap on a single frame payload. A length field above this is
/// treated as a hostile or damaged frame and rejected before any
/// buffer is allocated.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 24;

fn fnv_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The frame checksum: FNV-1a 64 over length and payload.
pub fn frame_checksum(payload: &[u8]) -> u64 {
    let h = fnv_update(0xcbf2_9ce4_8422_2325, &(payload.len() as u32).to_le_bytes());
    fnv_update(h, payload)
}

/// Encode `payload` as one frame.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(FrameError::Oversized {
            declared: payload.len() as u64,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Write `payload` as one frame onto `w` (single `write_all`, so the
/// OS sees whole frames). Passes the `net.frame.write` fault site.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    hit_io(NET_FRAME_WRITE)?;
    let frame = encode_frame(payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload from `r`. Passes the `net.frame.read`
/// fault site.
///
/// * `Ok(None)` — clean end of stream **at a frame boundary** (the
///   peer closed between frames).
/// * [`FrameError::Truncated`] — the stream ended inside a header or
///   payload (a torn frame).
/// * [`FrameError::Oversized`] — the declared length exceeds
///   [`MAX_FRAME_PAYLOAD`]; returned before any payload buffer is
///   allocated.
/// * [`FrameError::Checksum`] — the payload (or length) was corrupted
///   in flight.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    hit_io(NET_FRAME_READ)?;
    let mut header = [0u8; FRAME_HEADER];
    let mut filled = 0;
    while filled < FRAME_HEADER {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let checksum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        // Reject on the declared length alone: no buffer exists yet,
        // so a hostile 4 GiB claim cannot OOM the server.
        return Err(FrameError::Oversized {
            declared: u64::from(len),
            max: MAX_FRAME_PAYLOAD,
        });
    }
    // Grow the buffer with bytes actually received rather than
    // trusting the declared length: a torn or lying frame costs what
    // arrived on the wire, not what the header claimed.
    let mut payload = Vec::new();
    let mut taken = r.by_ref().take(u64::from(len));
    taken.read_to_end(&mut payload)?;
    if payload.len() < len as usize {
        return Err(FrameError::Truncated);
    }
    let computed = frame_checksum(&payload);
    if computed != checksum {
        return Err(FrameError::Checksum {
            stored: checksum,
            computed,
        });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = encode_frame(b"hello wire").unwrap();
        let mut cur = &frame[..];
        assert_eq!(
            read_frame(&mut cur).unwrap().as_deref(),
            Some(&b"hello wire"[..])
        );
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = encode_frame(b"").unwrap();
        let mut cur = &frame[..];
        assert_eq!(read_frame(&mut cur).unwrap().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn oversized_length_is_rejected_from_header_alone() {
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(&0u64.to_le_bytes());
        let mut cur = &hostile[..];
        match read_frame(&mut cur) {
            Err(FrameError::Oversized { declared, max }) => {
                assert_eq!(declared, u64::from(u32::MAX));
                assert_eq!(max, MAX_FRAME_PAYLOAD);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn torn_header_and_payload_are_truncated() {
        let frame = encode_frame(b"payload").unwrap();
        for cut in 1..frame.len() {
            let mut cur = &frame[..cut];
            match read_frame(&mut cur) {
                Err(FrameError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_bytes_fail_checksum() {
        let frame = encode_frame(b"sensitive payload").unwrap();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            let mut cur = &bad[..];
            match read_frame(&mut cur) {
                Err(_) => {}
                Ok(p) => panic!("flip at {i} decoded as {p:?}"),
            }
        }
    }
}
