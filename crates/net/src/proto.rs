//! The versioned request/response vocabulary of the serving protocol.
//!
//! A frame payload is UTF-8 text: one header line whose first token is
//! the protocol version tag ([`PROTO_VERSION`]), then whitespace-
//! separated fields with every free-form string escaped through the
//! storage crate's token escaper (so names with spaces, newlines, or
//! arbitrary Unicode round-trip). Multi-row responses carry one extra
//! line per row. Text is deliberate: a captured exchange is greppable,
//! and the encoding reuses serializers that are already round-trip
//! fuzzed.
//!
//! Decoding is total: any malformed payload produces a typed
//! [`ProtoError`], never a panic — the decode fuzz suite drives
//! truncations and bit flips through here.

use ctxpref_storage::{escape, unescape};

use crate::codec::{hex_decode, hex_encode};
use crate::error::ProtoError;

/// The protocol version tag every message leads with. Bumped on any
/// incompatible grammar change; a peer speaking a different version is
/// rejected with a typed error instead of misparsed.
pub const PROTO_VERSION: &str = "ctxpref1";

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Query `user` under a context state (one value name per
    /// hierarchy), returning the top `k` tuples rendered by `attr`.
    Query {
        /// The user to query.
        user: String,
        /// Display attribute for result rows.
        attr: String,
        /// How many rows to return (ties included).
        k: usize,
        /// Requested deadline in milliseconds (server caps it).
        deadline_ms: u64,
        /// Context value names, one per hierarchy, in environment order.
        state: Vec<String>,
    },
    /// Top-k query for `user` under a context state: the server
    /// evaluates only the best `k` rows (materialized view or
    /// early-terminating ranking) and the wire carries only those
    /// rows. Same envelope as [`Request::Query`].
    TopK {
        /// The user to query.
        user: String,
        /// Display attribute for result rows.
        attr: String,
        /// How many rows to return (ties included).
        k: usize,
        /// Requested deadline in milliseconds (server caps it).
        deadline_ms: u64,
        /// Context value names, one per hierarchy, in environment order.
        state: Vec<String>,
    },
    /// The view catalog's status report: aggregate counters plus one
    /// line per user with materialized views.
    ViewsStatus,
    /// Query `user` under a context descriptor (exploratory path).
    QueryDescriptor {
        /// The user to query.
        user: String,
        /// Display attribute for result rows.
        attr: String,
        /// How many rows to return (ties included).
        k: usize,
        /// The descriptor, in the CLI's textual syntax.
        descriptor: String,
    },
    /// Register a user with an empty profile.
    AddUser {
        /// The user name.
        user: String,
    },
    /// Remove a user and their profile.
    RemoveUser {
        /// The user name.
        user: String,
    },
    /// Insert an equality preference from its textual parts.
    InsertPref {
        /// The user name.
        user: String,
        /// Context descriptor text.
        descriptor: String,
        /// Attribute name of the preference clause.
        attr: String,
        /// Attribute value (string form; typed by the schema).
        value: String,
        /// Interest score.
        score: f64,
    },
    /// Remove a preference by profile index.
    RemovePref {
        /// The user name.
        user: String,
        /// Position in the profile's preference list.
        index: usize,
    },
    /// Re-score a preference by profile index.
    UpdateScore {
        /// The user name.
        user: String,
        /// Position in the profile's preference list.
        index: usize,
        /// The new interest score.
        score: f64,
    },
    /// Take a checkpoint now (durable services only).
    Checkpoint,
    /// Flush the write-ahead log (durable services only).
    FlushWal,
    /// Per-shard WAL positions and counters.
    WalStatus,
    /// Replication roles, epochs, lag, promotion history.
    ReplStatus,
    /// Run one scrub pass now: verify sealed WAL segments and the
    /// checkpoint at rest, quarantine and heal what fails (durable
    /// services only). Retry-safe: a re-run re-verifies and finds the
    /// damage already quarantined.
    Scrub,
    /// Self-healing counters — scrub passes, quarantined files, heals,
    /// rescues — without running a pass.
    ScrubStatus,
    /// Serving-layer counters.
    Stats,
    /// What a router needs from one probe: primary presence, epoch,
    /// state counts (see [`Response::RouteInfo`]).
    RouteStatus,
    /// One step of the live-migration protocol for `user`, owned by
    /// the routing epoch `epoch` (see `ctxpref_service`'s migration
    /// surface — an older epoch than the user's entry is refused, so a
    /// deposed migration driver can never apply stale writes).
    MigrateUser {
        /// The migrating user.
        user: String,
        /// The routing epoch the driver minted for this migration.
        epoch: u64,
        /// The protocol step to execute.
        action: MigrateAction,
    },
    /// Several requests shipped in one frame, answered by one
    /// [`Response::Batch`] with a response per item in order. Batches
    /// never nest. The bulk-insert loop uses this to amortize a frame
    /// and a service-routing round-trip over N mutations.
    Batch {
        /// The batched requests, executed in order.
        requests: Vec<Request>,
    },
}

/// One step of the live-migration protocol, as carried by
/// [`Request::MigrateUser`]. Every step is idempotent: exports, pulls
/// and probes are reads; fences, imports, applies, and aborts are
/// epoch- and watermark-guarded on the serving side.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrateAction {
    /// Read the user's cut coordinates and profile digest.
    Export,
    /// Read a consistent snapshot: the cut LSN plus the WAL-op
    /// payloads that reconstruct the profile.
    Snapshot,
    /// Read one page of the user's WAL suffix starting at `from_lsn`.
    Pull {
        /// First LSN wanted.
        from_lsn: u64,
        /// Page size cap.
        max: u64,
    },
    /// Source side: fence client writes for the user (cut-over).
    Fence,
    /// Destination side: reset the user and apply snapshot ops; the
    /// catch-up watermark starts at `src_lsn`.
    Import {
        /// The snapshot's cut LSN on the source.
        src_lsn: u64,
        /// WAL-op payloads reconstructing the profile.
        ops: Vec<Vec<u8>>,
    },
    /// Destination side: apply one catch-up page; records at or below
    /// the watermark are dropped, then the watermark advances to
    /// `through`.
    Apply {
        /// Highest source LSN the page scanned through.
        through: u64,
        /// `(source lsn, payload)` records targeting the user.
        records: Vec<(u64, Vec<u8>)>,
    },
    /// Destination side: the routing table flipped — serve the user.
    Activate,
    /// Source side: cut-over completed — drop the user's data and
    /// leave a tombstone for stale clients.
    Finish,
    /// Abort this epoch's migration on the receiving side.
    Abort,
}

impl Request {
    /// Whether retrying this request after a connection failure is
    /// safe. Reads and probes are; mutations are not (the server may
    /// have applied the first attempt before the connection died), so
    /// the client surfaces those failures instead of retrying.
    /// Migration steps count as idempotent even though they mutate:
    /// the serving side makes every step retry-safe through the
    /// routing-epoch guard and the per-import LSN watermark.
    pub fn is_idempotent(&self) -> bool {
        match self {
            Self::AddUser { .. }
            | Self::RemoveUser { .. }
            | Self::InsertPref { .. }
            | Self::RemovePref { .. }
            | Self::UpdateScore { .. } => false,
            // A batch is only retry-safe if every item is.
            Self::Batch { requests } => requests.iter().all(Self::is_idempotent),
            _ => true,
        }
    }

    /// Encode as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let line = match self {
            Self::Ping => format!("{PROTO_VERSION} ping"),
            Self::Query {
                user,
                attr,
                k,
                deadline_ms,
                state,
            } => {
                let mut line = format!(
                    "{PROTO_VERSION} query {} {} {k} {deadline_ms}",
                    escape(user),
                    escape(attr)
                );
                for v in state {
                    line.push(' ');
                    line.push_str(&escape(v));
                }
                line
            }
            Self::TopK {
                user,
                attr,
                k,
                deadline_ms,
                state,
            } => {
                let mut line = format!(
                    "{PROTO_VERSION} topk {} {} {k} {deadline_ms}",
                    escape(user),
                    escape(attr)
                );
                for v in state {
                    line.push(' ');
                    line.push_str(&escape(v));
                }
                line
            }
            Self::ViewsStatus => format!("{PROTO_VERSION} views-status"),
            Self::QueryDescriptor {
                user,
                attr,
                k,
                descriptor,
            } => format!(
                "{PROTO_VERSION} query-desc {} {} {k} {}",
                escape(user),
                escape(attr),
                escape(descriptor)
            ),
            Self::AddUser { user } => format!("{PROTO_VERSION} add-user {}", escape(user)),
            Self::RemoveUser { user } => format!("{PROTO_VERSION} rm-user {}", escape(user)),
            Self::InsertPref {
                user,
                descriptor,
                attr,
                value,
                score,
            } => format!(
                "{PROTO_VERSION} pref {} {score:?} {} {} {}",
                escape(user),
                escape(attr),
                escape(value),
                escape(descriptor)
            ),
            Self::RemovePref { user, index } => {
                format!("{PROTO_VERSION} del {} {index}", escape(user))
            }
            Self::UpdateScore { user, index, score } => {
                format!("{PROTO_VERSION} score {} {index} {score:?}", escape(user))
            }
            Self::Checkpoint => format!("{PROTO_VERSION} checkpoint"),
            Self::FlushWal => format!("{PROTO_VERSION} flush"),
            Self::WalStatus => format!("{PROTO_VERSION} wal-status"),
            Self::ReplStatus => format!("{PROTO_VERSION} repl-status"),
            Self::Scrub => format!("{PROTO_VERSION} scrub"),
            Self::ScrubStatus => format!("{PROTO_VERSION} scrub-status"),
            Self::Stats => format!("{PROTO_VERSION} stats"),
            Self::RouteStatus => format!("{PROTO_VERSION} route-status"),
            Self::MigrateUser {
                user,
                epoch,
                action,
            } => {
                let u = escape(user);
                match action {
                    MigrateAction::Export => {
                        format!("{PROTO_VERSION} migrate {epoch} export {u}")
                    }
                    MigrateAction::Snapshot => {
                        format!("{PROTO_VERSION} migrate {epoch} snapshot {u}")
                    }
                    MigrateAction::Pull { from_lsn, max } => {
                        format!("{PROTO_VERSION} migrate {epoch} pull {u} {from_lsn} {max}")
                    }
                    MigrateAction::Fence => {
                        format!("{PROTO_VERSION} migrate {epoch} fence {u}")
                    }
                    MigrateAction::Import { src_lsn, ops } => {
                        let mut text = format!(
                            "{PROTO_VERSION} migrate {epoch} import {u} {src_lsn} {}",
                            ops.len()
                        );
                        for op in ops {
                            text.push_str("\nop ");
                            text.push_str(&hex(op));
                        }
                        text
                    }
                    MigrateAction::Apply { through, records } => {
                        let mut text = format!(
                            "{PROTO_VERSION} migrate {epoch} apply {u} {through} {}",
                            records.len()
                        );
                        for (lsn, payload) in records {
                            text.push_str(&format!("\nrec {lsn} {}", hex(payload)));
                        }
                        text
                    }
                    MigrateAction::Activate => {
                        format!("{PROTO_VERSION} migrate {epoch} activate {u}")
                    }
                    MigrateAction::Finish => {
                        format!("{PROTO_VERSION} migrate {epoch} finish {u}")
                    }
                    MigrateAction::Abort => {
                        format!("{PROTO_VERSION} migrate {epoch} abort {u}")
                    }
                }
            }
            Self::Batch { requests } => {
                // Text batches embed each item's full encoding as hex:
                // deliberately simple (this path exists only for the
                // one-version ctxpref1 compatibility window; the binary
                // codec is the compact encoding).
                let mut text = format!("{PROTO_VERSION} batch {}", requests.len());
                for req in requests {
                    text.push_str("\nitem ");
                    text.push_str(&hex_encode(&req.encode()));
                }
                text
            }
        };
        line.into_bytes()
    }

    /// Decode a payload produced by [`Self::encode`]. The header is
    /// the first line; `migrate import`/`migrate apply` carry one body
    /// line per shipped record (everything else is single-line).
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let text =
            std::str::from_utf8(payload).map_err(|_| ProtoError::new("payload is not utf-8"))?;
        let mut lines = text.lines();
        let head = lines
            .next()
            .ok_or_else(|| ProtoError::new("empty request"))?;
        let toks: Vec<&str> = head.split_whitespace().collect();
        let (version, rest) = toks
            .split_first()
            .ok_or_else(|| ProtoError::new("empty request"))?;
        if *version != PROTO_VERSION {
            return Err(ProtoError::new(format!(
                "unsupported protocol version {version:?} (this peer speaks {PROTO_VERSION})"
            )));
        }
        let (verb, args) = rest
            .split_first()
            .ok_or_else(|| ProtoError::new("missing request verb"))?;
        match (*verb, args) {
            ("ping", []) => Ok(Self::Ping),
            ("query", [user, attr, k, deadline_ms, state @ ..]) => Ok(Self::Query {
                user: field(user, "user")?,
                attr: field(attr, "attr")?,
                k: num(k, "k")?,
                deadline_ms: num(deadline_ms, "deadline_ms")?,
                state: state
                    .iter()
                    .map(|v| field(v, "state value"))
                    .collect::<Result<_, _>>()?,
            }),
            ("topk", [user, attr, k, deadline_ms, state @ ..]) => Ok(Self::TopK {
                user: field(user, "user")?,
                attr: field(attr, "attr")?,
                k: num(k, "k")?,
                deadline_ms: num(deadline_ms, "deadline_ms")?,
                state: state
                    .iter()
                    .map(|v| field(v, "state value"))
                    .collect::<Result<_, _>>()?,
            }),
            ("views-status", []) => Ok(Self::ViewsStatus),
            ("query-desc", [user, attr, k, descriptor]) => Ok(Self::QueryDescriptor {
                user: field(user, "user")?,
                attr: field(attr, "attr")?,
                k: num(k, "k")?,
                descriptor: field(descriptor, "descriptor")?,
            }),
            ("add-user", [user]) => Ok(Self::AddUser {
                user: field(user, "user")?,
            }),
            ("rm-user", [user]) => Ok(Self::RemoveUser {
                user: field(user, "user")?,
            }),
            ("pref", [user, score, attr, value, descriptor]) => Ok(Self::InsertPref {
                user: field(user, "user")?,
                score: num(score, "score")?,
                attr: field(attr, "attr")?,
                value: field(value, "value")?,
                descriptor: field(descriptor, "descriptor")?,
            }),
            ("del", [user, index]) => Ok(Self::RemovePref {
                user: field(user, "user")?,
                index: num(index, "index")?,
            }),
            ("score", [user, index, score]) => Ok(Self::UpdateScore {
                user: field(user, "user")?,
                index: num(index, "index")?,
                score: num(score, "score")?,
            }),
            ("checkpoint", []) => Ok(Self::Checkpoint),
            ("flush", []) => Ok(Self::FlushWal),
            ("wal-status", []) => Ok(Self::WalStatus),
            ("repl-status", []) => Ok(Self::ReplStatus),
            ("scrub", []) => Ok(Self::Scrub),
            ("scrub-status", []) => Ok(Self::ScrubStatus),
            ("stats", []) => Ok(Self::Stats),
            ("route-status", []) => Ok(Self::RouteStatus),
            ("migrate", [epoch, step, args @ ..]) => {
                let epoch: u64 = num(epoch, "migration epoch")?;
                let (action, user) = match (*step, args) {
                    ("export", [u]) => (MigrateAction::Export, u),
                    ("snapshot", [u]) => (MigrateAction::Snapshot, u),
                    ("pull", [u, from_lsn, max]) => (
                        MigrateAction::Pull {
                            from_lsn: num(from_lsn, "from_lsn")?,
                            max: num(max, "max")?,
                        },
                        u,
                    ),
                    ("fence", [u]) => (MigrateAction::Fence, u),
                    ("import", [u, src_lsn, n]) => (
                        MigrateAction::Import {
                            src_lsn: num(src_lsn, "src_lsn")?,
                            ops: decode_op_lines(lines, num(n, "op count")?)?,
                        },
                        u,
                    ),
                    ("apply", [u, through, n]) => (
                        MigrateAction::Apply {
                            through: num(through, "through")?,
                            records: decode_rec_lines(lines, num(n, "record count")?)?,
                        },
                        u,
                    ),
                    ("activate", [u]) => (MigrateAction::Activate, u),
                    ("finish", [u]) => (MigrateAction::Finish, u),
                    ("abort", [u]) => (MigrateAction::Abort, u),
                    _ => {
                        return Err(ProtoError::new(format!(
                            "unrecognized migrate step {head:?}"
                        )))
                    }
                };
                Ok(Self::MigrateUser {
                    user: field(user, "user")?,
                    epoch,
                    action,
                })
            }
            ("batch", [n]) => {
                let requests = decode_item_lines(lines, num(n, "batch count")?)?
                    .iter()
                    .map(|raw| Self::decode(raw))
                    .collect::<Result<Vec<_>, _>>()?;
                if requests.iter().any(|r| matches!(r, Self::Batch { .. })) {
                    return Err(ProtoError::new("batches do not nest"));
                }
                Ok(Self::Batch { requests })
            }
            _ => Err(ProtoError::new(format!("unrecognized request {head:?}"))),
        }
    }
}

/// Decode `op <hex>` body lines (snapshot ops of a migrate import).
fn decode_op_lines(lines: std::str::Lines<'_>, n: usize) -> Result<Vec<Vec<u8>>, ProtoError> {
    let mut ops = Vec::new();
    for line in lines {
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["op", h] => ops.push(hex_decode(h)?),
            _ => return Err(ProtoError::new(format!("unrecognized op line {line:?}"))),
        }
    }
    if ops.len() != n {
        return Err(ProtoError::new(format!(
            "op count mismatch: header says {n}, body has {}",
            ops.len()
        )));
    }
    Ok(ops)
}

/// Decode `rec <lsn> <hex>` body lines (catch-up records of a migrate
/// apply, and the body of `snapshot`/`records` responses).
fn decode_rec_lines(
    lines: std::str::Lines<'_>,
    n: usize,
) -> Result<Vec<(u64, Vec<u8>)>, ProtoError> {
    let mut records = Vec::new();
    for line in lines {
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["rec", lsn, h] => records.push((num(lsn, "record lsn")?, hex_decode(h)?)),
            _ => {
                return Err(ProtoError::new(format!(
                    "unrecognized record line {line:?}"
                )))
            }
        }
    }
    if records.len() != n {
        return Err(ProtoError::new(format!(
            "record count mismatch: header says {n}, body has {}",
            records.len()
        )));
    }
    Ok(records)
}

/// Decode `item <hex>` body lines (the embedded encodings of a text
/// batch).
fn decode_item_lines(lines: std::str::Lines<'_>, n: usize) -> Result<Vec<Vec<u8>>, ProtoError> {
    let mut items = Vec::new();
    for line in lines {
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["item", h] => items.push(hex_decode(h)?),
            _ => return Err(ProtoError::new(format!("unrecognized item line {line:?}"))),
        }
    }
    if items.len() != n {
        return Err(ProtoError::new(format!(
            "item count mismatch: header says {n}, body has {}",
            items.len()
        )));
    }
    Ok(items)
}

fn hex(bytes: &[u8]) -> String {
    hex_encode(bytes)
}

/// One result row of a served query.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerRow {
    /// The rendered display attribute of the tuple.
    pub name: String,
    /// The tuple's interest score.
    pub score: f64,
}

/// One recorded ladder fallback, as shipped to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFallback {
    /// The rung that failed (`LadderStep` display token).
    pub step: String,
    /// Why it failed.
    pub reason: String,
}

/// A served answer, with its degradation-ladder provenance — what a
/// remote caller sees of a [`ctxpref_service::ServiceAnswer`].
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteAnswer {
    /// The ladder rung that answered (`LadderStep` display token).
    pub step: String,
    /// Microseconds spent serving inside the worker.
    pub elapsed_us: u64,
    /// The lifted state that answered, rendered (nearest-state rung
    /// only).
    pub resolved_state: Option<String>,
    /// Rungs that failed before `step` answered.
    pub fallbacks: Vec<WireFallback>,
    /// The top-k rows, ties included.
    pub rows: Vec<AnswerRow>,
}

impl RemoteAnswer {
    /// True iff the answer came from a rung below the normal
    /// cached/exact path (mirrors `ServiceAnswer::is_degraded`).
    pub fn is_degraded(&self) -> bool {
        self.step != "view" && self.step != "cached" && self.step != "exact"
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness acknowledgement.
    Pong,
    /// The mutation was applied (and, where configured, made durable /
    /// quorum-acked).
    Ok,
    /// The preference was removed; its score is echoed back.
    Removed {
        /// The removed preference's score.
        score: f64,
    },
    /// A served answer, with its degradation-ladder provenance.
    Answer(RemoteAnswer),
    /// A rendered status/report body (checkpoint, WAL status,
    /// replication status, stats).
    Text {
        /// The rendered body.
        body: String,
    },
    /// The server shed the request: the connection limit is saturated
    /// (the connection was refused after this single frame) or
    /// admission control shed the request's tier. Retryable — wait
    /// `retry_after_ms` first.
    Busy {
        /// The saturated limit (connections or in-flight requests).
        limit: usize,
        /// Cooperative backoff hint in milliseconds; 0 = none given
        /// (a legacy peer or an unhinted refusal).
        retry_after_ms: u64,
    },
    /// The request failed with a typed server-side error.
    Err {
        /// The error kind token (mirrors `ServiceError` variants).
        kind: String,
        /// The rendered message.
        message: String,
    },
    /// The cluster behind this endpoint has no primary (or fenced the
    /// write): the router should re-probe for the new primary instead
    /// of surfacing an error.
    NotPrimary,
    /// The user is mid-migration: the write was refused, typed and
    /// immediate — retry after a routing refresh, never a hang.
    Migrating {
        /// The user whose write was refused.
        user: String,
    },
    /// A per-user export: cut coordinates plus profile digest.
    UserCut {
        /// Whether the user exists on this side.
        present: bool,
        /// The user's WAL shard.
        shard: u64,
        /// The shard's last applied LSN at the cut.
        last_lsn: u64,
        /// FNV digest of the profile at the cut (0 when absent).
        digest: u64,
    },
    /// A consistent user snapshot: the cut LSN plus reconstruction
    /// ops.
    Snapshot {
        /// The cut LSN on this (source) side.
        src_lsn: u64,
        /// WAL-op payloads reconstructing the profile.
        ops: Vec<Vec<u8>>,
    },
    /// One page of the user's WAL suffix.
    Records {
        /// Highest LSN scanned (the next pull starts at `through+1`).
        through: u64,
        /// `(lsn, payload)` records targeting the user.
        records: Vec<(u64, Vec<u8>)>,
    },
    /// The requested WAL suffix was garbage-collected into a
    /// checkpoint: restart catch-up from a fresh snapshot.
    Gone,
    /// A catch-up page was applied; the import watermark is now this.
    Applied {
        /// The destination's import watermark after the page.
        watermark: u64,
    },
    /// The outcome of one [`Request::Scrub`] pass.
    ScrubReport {
        /// Sealed WAL segments whose checksums and LSN chain verified.
        segments_verified: u64,
        /// Checkpoint snapshots that loaded cleanly.
        checkpoints_verified: u64,
        /// Files skipped on a transient read error (retried next pass).
        read_errors: u64,
        /// Files quarantined as corrupt by this pass.
        quarantined: u64,
        /// Whether a fresh checkpoint healed over the quarantined loss.
        healed: bool,
    },
    /// The self-healing counters ([`Request::ScrubStatus`]).
    ScrubInfo {
        /// Scrub passes completed since the service started.
        passes: u64,
        /// Files quarantined across all passes.
        quarantined: u64,
        /// Transient read errors across all passes.
        read_errors: u64,
        /// Passes that healed damage with a fresh checkpoint.
        heals: u64,
        /// WAL shards recovery rescued via quarantine.
        rescued_shards: u64,
        /// Appends shed with a typed retryable disk-full error.
        disk_full_sheds: u64,
        /// Size-triggered segment rotations that failed.
        rotate_failures: u64,
    },
    /// What a router needs from one probe.
    RouteInfo {
        /// Whether a primary currently serves writes.
        has_primary: bool,
        /// The replication epoch (0 for an unreplicated service).
        epoch: u64,
        /// Users held by the serving core.
        users: u64,
        /// Live migration entries (fences, imports, tombstones).
        migrations: u64,
    },
    /// The answers of a [`Request::Batch`], one per item in request
    /// order. Execution stops at the first failure: the last element
    /// is then the item's error, and shorter-than-requested length
    /// tells the caller how far the batch got.
    Batch {
        /// Per-item responses, in request order.
        responses: Vec<Response>,
    },
}

impl Response {
    /// Encode as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let text = match self {
            Self::Pong => format!("{PROTO_VERSION} pong"),
            Self::Ok => format!("{PROTO_VERSION} ok"),
            Self::Removed { score } => format!("{PROTO_VERSION} removed {score:?}"),
            Self::Answer(a) => {
                let mut text = format!(
                    "{PROTO_VERSION} answer {} {} {}",
                    escape(&a.step),
                    a.elapsed_us,
                    match &a.resolved_state {
                        Some(s) => escape(s),
                        None => "-".to_string(),
                    }
                );
                for fb in &a.fallbacks {
                    text.push_str(&format!("\nfb {} {}", escape(&fb.step), escape(&fb.reason)));
                }
                for row in &a.rows {
                    text.push_str(&format!("\nrow {} {:?}", escape(&row.name), row.score));
                }
                text
            }
            Self::Text { body } => format!("{PROTO_VERSION} text {}", escape(body)),
            Self::Busy {
                limit,
                retry_after_ms,
            } => format!("{PROTO_VERSION} busy {limit} {retry_after_ms}"),
            Self::Err { kind, message } => {
                format!("{PROTO_VERSION} err {} {}", escape(kind), escape(message))
            }
            Self::NotPrimary => format!("{PROTO_VERSION} not-primary"),
            Self::Migrating { user } => {
                format!("{PROTO_VERSION} migrating {}", escape(user))
            }
            Self::UserCut {
                present,
                shard,
                last_lsn,
                digest,
            } => format!(
                "{PROTO_VERSION} user-cut {} {shard} {last_lsn} {digest}",
                u8::from(*present)
            ),
            Self::Snapshot { src_lsn, ops } => {
                let mut text = format!("{PROTO_VERSION} snapshot {src_lsn} {}", ops.len());
                for op in ops {
                    text.push_str("\nop ");
                    text.push_str(&hex(op));
                }
                text
            }
            Self::Records { through, records } => {
                let mut text = format!("{PROTO_VERSION} records {through} {}", records.len());
                for (lsn, payload) in records {
                    text.push_str(&format!("\nrec {lsn} {}", hex(payload)));
                }
                text
            }
            Self::Gone => format!("{PROTO_VERSION} gone"),
            Self::Applied { watermark } => format!("{PROTO_VERSION} applied {watermark}"),
            Self::ScrubReport {
                segments_verified,
                checkpoints_verified,
                read_errors,
                quarantined,
                healed,
            } => format!(
                "{PROTO_VERSION} scrub-report {segments_verified} {checkpoints_verified} \
                 {read_errors} {quarantined} {}",
                u8::from(*healed)
            ),
            Self::ScrubInfo {
                passes,
                quarantined,
                read_errors,
                heals,
                rescued_shards,
                disk_full_sheds,
                rotate_failures,
            } => format!(
                "{PROTO_VERSION} scrub-info {passes} {quarantined} {read_errors} {heals} \
                 {rescued_shards} {disk_full_sheds} {rotate_failures}"
            ),
            Self::RouteInfo {
                has_primary,
                epoch,
                users,
                migrations,
            } => format!(
                "{PROTO_VERSION} route-info {} {epoch} {users} {migrations}",
                u8::from(*has_primary)
            ),
            Self::Batch { responses } => {
                let mut text = format!("{PROTO_VERSION} batch {}", responses.len());
                for resp in responses {
                    text.push_str("\nitem ");
                    text.push_str(&hex_encode(&resp.encode()));
                }
                text
            }
        };
        text.into_bytes()
    }

    /// Decode a payload produced by [`Self::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let text =
            std::str::from_utf8(payload).map_err(|_| ProtoError::new("payload is not utf-8"))?;
        let mut lines = text.lines();
        let head = lines
            .next()
            .ok_or_else(|| ProtoError::new("empty response"))?;
        let toks: Vec<&str> = head.split_whitespace().collect();
        let (version, rest) = toks
            .split_first()
            .ok_or_else(|| ProtoError::new("empty response header"))?;
        if *version != PROTO_VERSION {
            return Err(ProtoError::new(format!(
                "unsupported protocol version {version:?} (this peer speaks {PROTO_VERSION})"
            )));
        }
        match rest {
            ["pong"] => Ok(Self::Pong),
            ["ok"] => Ok(Self::Ok),
            ["removed", score] => Ok(Self::Removed {
                score: num(score, "score")?,
            }),
            ["answer", step, elapsed_us, resolved] => {
                let mut fallbacks = Vec::new();
                let mut rows = Vec::new();
                for line in lines {
                    let toks: Vec<&str> = line.split_whitespace().collect();
                    match toks.as_slice() {
                        ["fb", step, reason] => fallbacks.push(WireFallback {
                            step: field(step, "fallback step")?,
                            reason: field(reason, "fallback reason")?,
                        }),
                        ["row", name, score] => rows.push(AnswerRow {
                            name: field(name, "row name")?,
                            score: num(score, "row score")?,
                        }),
                        _ => {
                            return Err(ProtoError::new(format!(
                                "unrecognized answer line {line:?}"
                            )))
                        }
                    }
                }
                Ok(Self::Answer(RemoteAnswer {
                    step: field(step, "step")?,
                    elapsed_us: num(elapsed_us, "elapsed_us")?,
                    resolved_state: match *resolved {
                        "-" => None,
                        s => Some(field(s, "resolved state")?),
                    },
                    fallbacks,
                    rows,
                }))
            }
            ["text", body] => Ok(Self::Text {
                body: field(body, "body")?,
            }),
            // Both arities decode: a legacy peer sends `busy <limit>`,
            // a current one appends the retry-after hint.
            ["busy", limit] => Ok(Self::Busy {
                limit: num(limit, "limit")?,
                retry_after_ms: 0,
            }),
            ["busy", limit, retry_after_ms] => Ok(Self::Busy {
                limit: num(limit, "limit")?,
                retry_after_ms: num(retry_after_ms, "retry_after_ms")?,
            }),
            ["err", kind, message] => Ok(Self::Err {
                kind: field(kind, "kind")?,
                message: field(message, "message")?,
            }),
            ["not-primary"] => Ok(Self::NotPrimary),
            ["migrating", user] => Ok(Self::Migrating {
                user: field(user, "user")?,
            }),
            ["user-cut", present, shard, last_lsn, digest] => Ok(Self::UserCut {
                present: *present == "1",
                shard: num(shard, "shard")?,
                last_lsn: num(last_lsn, "last_lsn")?,
                digest: num(digest, "digest")?,
            }),
            ["snapshot", src_lsn, n] => Ok(Self::Snapshot {
                src_lsn: num(src_lsn, "src_lsn")?,
                ops: decode_op_lines(lines, num(n, "op count")?)?,
            }),
            ["records", through, n] => Ok(Self::Records {
                through: num(through, "through")?,
                records: decode_rec_lines(lines, num(n, "record count")?)?,
            }),
            ["gone"] => Ok(Self::Gone),
            ["applied", watermark] => Ok(Self::Applied {
                watermark: num(watermark, "watermark")?,
            }),
            ["scrub-report", segments, checkpoints, read_errors, quarantined, healed] => {
                Ok(Self::ScrubReport {
                    segments_verified: num(segments, "segments_verified")?,
                    checkpoints_verified: num(checkpoints, "checkpoints_verified")?,
                    read_errors: num(read_errors, "read_errors")?,
                    quarantined: num(quarantined, "quarantined")?,
                    healed: *healed == "1",
                })
            }
            ["scrub-info", passes, quarantined, read_errors, heals, rescued, sheds, rot] => {
                Ok(Self::ScrubInfo {
                    passes: num(passes, "passes")?,
                    quarantined: num(quarantined, "quarantined")?,
                    read_errors: num(read_errors, "read_errors")?,
                    heals: num(heals, "heals")?,
                    rescued_shards: num(rescued, "rescued_shards")?,
                    disk_full_sheds: num(sheds, "disk_full_sheds")?,
                    rotate_failures: num(rot, "rotate_failures")?,
                })
            }
            ["route-info", has_primary, epoch, users, migrations] => Ok(Self::RouteInfo {
                has_primary: *has_primary == "1",
                epoch: num(epoch, "epoch")?,
                users: num(users, "users")?,
                migrations: num(migrations, "migrations")?,
            }),
            ["batch", n] => {
                let responses = decode_item_lines(lines, num(n, "batch count")?)?
                    .iter()
                    .map(|raw| Self::decode(raw))
                    .collect::<Result<Vec<_>, _>>()?;
                if responses.iter().any(|r| matches!(r, Self::Batch { .. })) {
                    return Err(ProtoError::new("batches do not nest"));
                }
                Ok(Self::Batch { responses })
            }
            _ => Err(ProtoError::new(format!("unrecognized response {head:?}"))),
        }
    }
}

fn field(tok: &str, what: &str) -> Result<String, ProtoError> {
    unescape(tok).ok_or_else(|| ProtoError::new(format!("bad escape in {what}: {tok:?}")))
}

fn num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, ProtoError> {
    tok.parse()
        .map_err(|_| ProtoError::new(format!("bad {what}: {tok:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let decoded = Request::decode(&req.encode()).expect("decode");
        assert_eq!(decoded, req);
    }

    fn roundtrip_resp(resp: Response) {
        let decoded = Response::decode(&resp.encode()).expect("decode");
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Query {
            user: "Ano Poli visitor".into(),
            attr: "name".into(),
            k: 10,
            deadline_ms: 250,
            state: vec!["Plaka".into(), "warm".into(), "friends".into()],
        });
        roundtrip_req(Request::TopK {
            user: "Ano Poli visitor".into(),
            attr: "name".into(),
            k: 3,
            deadline_ms: 100,
            state: vec!["Plaka".into(), "warm".into(), "friends".into()],
        });
        roundtrip_req(Request::ViewsStatus);
        roundtrip_req(Request::QueryDescriptor {
            user: "me".into(),
            attr: "name".into(),
            k: 3,
            descriptor: "location = Athens and temperature = good".into(),
        });
        roundtrip_req(Request::AddUser { user: "".into() });
        roundtrip_req(Request::RemoveUser {
            user: "a\nb".into(),
        });
        roundtrip_req(Request::InsertPref {
            user: "me".into(),
            descriptor: "accompanying_people = family".into(),
            attr: "type".into(),
            value: "zoo".into(),
            score: 0.95,
        });
        roundtrip_req(Request::RemovePref {
            user: "me".into(),
            index: 7,
        });
        roundtrip_req(Request::UpdateScore {
            user: "me".into(),
            index: 2,
            score: 0.125,
        });
        roundtrip_req(Request::Checkpoint);
        roundtrip_req(Request::FlushWal);
        roundtrip_req(Request::WalStatus);
        roundtrip_req(Request::ReplStatus);
        roundtrip_req(Request::Scrub);
        roundtrip_req(Request::ScrubStatus);
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::RouteStatus);
        // Scrub verbs are maintenance reads/repairs: retry-safe.
        assert!(Request::Scrub.is_idempotent());
        assert!(Request::ScrubStatus.is_idempotent());
    }

    #[test]
    fn migrate_requests_roundtrip() {
        let user = "Ano Poli visitor".to_string();
        for action in [
            MigrateAction::Export,
            MigrateAction::Snapshot,
            MigrateAction::Pull {
                from_lsn: 42,
                max: 64,
            },
            MigrateAction::Fence,
            MigrateAction::Import {
                src_lsn: 17,
                ops: vec![b"add user\x01x".to_vec(), b"ins user pref".to_vec()],
            },
            MigrateAction::Apply {
                through: 99,
                records: vec![(18, b"score user 0 0.5".to_vec()), (21, vec![0, 255, 7])],
            },
            MigrateAction::Activate,
            MigrateAction::Finish,
            MigrateAction::Abort,
        ] {
            roundtrip_req(Request::MigrateUser {
                user: user.clone(),
                epoch: 7,
                action,
            });
        }
    }

    #[test]
    fn migrate_requests_are_idempotent() {
        // The routing tier retries migration steps across transport
        // failures; the serving side's epoch/watermark guards make
        // that safe, so the client must classify them retry-able.
        assert!(Request::RouteStatus.is_idempotent());
        assert!(Request::MigrateUser {
            user: "u".into(),
            epoch: 1,
            action: MigrateAction::Apply {
                through: 3,
                records: vec![(3, b"add u".to_vec())],
            },
        }
        .is_idempotent());
        assert!(!Request::AddUser { user: "u".into() }.is_idempotent());
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Removed { score: 0.5 });
        roundtrip_resp(Response::Answer(RemoteAnswer {
            step: "nearest-state".into(),
            elapsed_us: 1234,
            resolved_state: Some("(Athens, warm, all)".into()),
            fallbacks: vec![WireFallback {
                step: "exact".into(),
                reason: "panic: injected panic at service.query.primary".into(),
            }],
            rows: vec![
                AnswerRow {
                    name: "Acropolis Museum".into(),
                    score: 0.9,
                },
                AnswerRow {
                    name: "Plaka walk".into(),
                    score: 0.25,
                },
            ],
        }));
        roundtrip_resp(Response::Text {
            body: "appends 12, batches 3\nshard 0: …\n".into(),
        });
        roundtrip_resp(Response::Busy {
            limit: 4,
            retry_after_ms: 250,
        });
        roundtrip_resp(Response::Err {
            kind: "core".into(),
            message: "no such user \"ghost\"".into(),
        });
        roundtrip_resp(Response::NotPrimary);
        roundtrip_resp(Response::Migrating {
            user: "Ano Poli visitor".into(),
        });
        roundtrip_resp(Response::UserCut {
            present: true,
            shard: 3,
            last_lsn: 117,
            digest: 0xDEAD_BEEF,
        });
        roundtrip_resp(Response::UserCut {
            present: false,
            shard: 0,
            last_lsn: 0,
            digest: 0,
        });
        roundtrip_resp(Response::Snapshot {
            src_lsn: 12,
            ops: vec![b"add me".to_vec(), vec![1, 2, 3]],
        });
        roundtrip_resp(Response::Records {
            through: 40,
            records: vec![(39, b"ins me pref".to_vec()), (40, vec![255])],
        });
        roundtrip_resp(Response::Records {
            through: 0,
            records: vec![],
        });
        roundtrip_resp(Response::Gone);
        roundtrip_resp(Response::Applied { watermark: 88 });
        roundtrip_resp(Response::ScrubReport {
            segments_verified: 12,
            checkpoints_verified: 1,
            read_errors: 2,
            quarantined: 1,
            healed: true,
        });
        roundtrip_resp(Response::ScrubInfo {
            passes: 9,
            quarantined: 1,
            read_errors: 3,
            heals: 1,
            rescued_shards: 2,
            disk_full_sheds: 4,
            rotate_failures: 0,
        });
        roundtrip_resp(Response::RouteInfo {
            has_primary: true,
            epoch: 4,
            users: 1000,
            migrations: 2,
        });
    }

    #[test]
    fn batches_roundtrip_and_do_not_nest() {
        roundtrip_req(Request::Batch {
            requests: vec![
                Request::AddUser {
                    user: "Ano Poli visitor".into(),
                },
                Request::InsertPref {
                    user: "Ano Poli visitor".into(),
                    descriptor: "location = Athens".into(),
                    attr: "type".into(),
                    value: "museum".into(),
                    score: 0.9,
                },
                Request::Ping,
            ],
        });
        roundtrip_req(Request::Batch { requests: vec![] });
        roundtrip_resp(Response::Batch {
            responses: vec![
                Response::Ok,
                Response::Err {
                    kind: "core".into(),
                    message: "no such user".into(),
                },
            ],
        });
        // Idempotence: a batch inherits the weakest member.
        assert!(Request::Batch {
            requests: vec![Request::Ping, Request::Stats],
        }
        .is_idempotent());
        assert!(!Request::Batch {
            requests: vec![Request::Ping, Request::AddUser { user: "u".into() }],
        }
        .is_idempotent());
        // Nested batches are refused on decode.
        let nested = Request::Batch {
            requests: vec![Request::Batch {
                requests: vec![Request::Ping],
            }],
        };
        assert!(Request::decode(&nested.encode()).is_err());
    }

    #[test]
    fn wrong_version_is_typed() {
        let err = Request::decode(b"ctxpref999 ping").unwrap_err();
        assert!(err.reason.contains("version"));
        let err = Response::decode(b"ctxpref999 pong").unwrap_err();
        assert!(err.reason.contains("version"));
    }

    #[test]
    fn garbage_never_panics() {
        for payload in [
            &b""[..],
            b"\xff\xfe",
            b"ctxpref1",
            b"ctxpref1 query onlyuser",
            b"ctxpref1 pref a b c",
            b"ctxpref1 answer",
            b"ctxpref1 nonsense x y z",
            b"ctxpref1 migrate nine export u",
            b"ctxpref1 migrate 1 import u 1 2\nop zz",
            b"ctxpref1 migrate 1 apply u 1 1\nrec 1",
            b"ctxpref1 migrate 1 apply u 1 2\nrec 1 00",
            b"ctxpref1 snapshot 1 1\nbogus line",
            b"ctxpref1 records 5 1\nrec x 00",
            b"ctxpref1 scrub-report 1 2 3",
            b"ctxpref1 scrub-info 1 2 3 4 5 6 x",
        ] {
            assert!(Request::decode(payload).is_err());
            assert!(Response::decode(payload).is_err());
        }
    }
}
