//! A hand-rolled epoll reactor: the readiness machinery under the
//! event-driven server.
//!
//! No external crates — the four syscalls the reactor needs
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `close`) are declared
//! directly against the C library that `std` already links. The
//! surface is deliberately small:
//!
//! * [`Epoll`] — the readiness queue: register/modify/deregister file
//!   descriptors under a caller-chosen token, then [`Epoll::wait`]
//!   for [`Event`]s. Level-triggered, so a handler that drains only
//!   part of a socket's readable bytes is re-notified on the next
//!   wait — no starvation bookkeeping.
//! * [`Waker`] — a nonblocking socketpair that other threads write a
//!   byte into to pull the reactor out of `epoll_wait` (completion
//!   queues, shutdown).
//! * [`Slab`] — token ↔ connection-state storage whose tokens carry a
//!   **generation**: a token minted for a closed connection can never
//!   reach the slot's reused successor, so a stale readiness event —
//!   epoll can deliver events for an fd the reactor just closed — is
//!   ignored instead of corrupting an unrelated connection.

use std::io;
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;

// The reactor's syscall surface, declared against the platform C
// library std already links (no libc crate: the workspace vendors
// every dependency, and four symbols don't justify one).
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`. On x86_64 the kernel ABI packs
/// it (no padding between `events` and `data`); elsewhere it is a
/// normally-aligned pair.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// See the x86_64 variant; other architectures use natural alignment.
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Notify when the fd has bytes to read (or the peer hung up).
    pub const READABLE: Self = Self {
        readable: true,
        writable: false,
    };
    /// Notify when the fd can accept writes.
    pub const WRITABLE: Self = Self {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Self = Self {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Bytes are readable (or the peer closed — read to find out).
    pub readable: bool,
    /// The socket can accept writes.
    pub writable: bool,
    /// Error or hangup: the connection is done for.
    pub hangup: bool,
}

/// A level-triggered epoll readiness queue.
#[derive(Debug)]
pub struct Epoll {
    epfd: RawFd,
}

impl Epoll {
    /// Create the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event;
        let ptr = match ev.as_mut() {
            Some(e) => e as *mut EpollEvent,
            None => std::ptr::null_mut(),
        };
        if unsafe { epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token` with the given interest.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Change an existing registration's interest (same token).
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Remove `fd` from the readiness queue.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Block until readiness (or `timeout`), appending events to
    /// `out`. A `timeout` of `None` waits indefinitely. Returns the
    /// number of events delivered; `EINTR` is treated as zero events,
    /// not an error.
    pub fn wait(
        &self,
        out: &mut Vec<Event>,
        timeout: Option<std::time::Duration>,
    ) -> io::Result<usize> {
        const CAPACITY: usize = 1024;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs timeout doesn't spin at 0ms.
            Some(d) => {
                i32::try_from(d.as_millis().max(1).min(i32::MAX as u128)).unwrap_or(i32::MAX)
            }
        };
        let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAPACITY as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in raw.iter().take(n as usize) {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

/// A cross-thread wake-up line for the reactor: worker threads call
/// [`Waker::wake`] after pushing a completion, pulling the reactor out
/// of `epoll_wait`; the reactor registers [`Waker::reader_fd`] and
/// calls [`Waker::drain`] when it fires. Built on a nonblocking
/// `socketpair` — `std` exposes one via [`UnixStream::pair`], which
/// keeps the whole mechanism inside the standard library.
#[derive(Debug)]
pub struct Waker {
    reader: UnixStream,
    writer: UnixStream,
}

impl Waker {
    /// Create the pair, both ends nonblocking.
    pub fn new() -> io::Result<Self> {
        let (reader, writer) = UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        Ok(Self { reader, writer })
    }

    /// The fd the reactor registers for readability.
    pub fn reader_fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.reader.as_raw_fd()
    }

    /// Nudge the reactor. A full pipe means a wake is already
    /// pending, which is all a wake means — not an error.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.writer).write(&[1u8]);
    }

    /// Swallow pending wake bytes (the wake's meaning is "look at
    /// your queues", not a count).
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.reader).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Generation-tagged slot storage: the reactor's token ↔ connection
/// map. Slots are reused, tokens are not — each reuse bumps the
/// slot's generation, and a lookup with a stale token misses.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

#[derive(Debug)]
struct Entry<T> {
    generation: u32,
    value: Option<T>,
}

/// A slab token: slot index in the low 32 bits, generation above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert, returning the slot's token.
    pub fn insert(&mut self, value: T) -> Token {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let entry = &mut self.entries[idx as usize];
            entry.value = Some(value);
            return Token(u64::from(idx) | (u64::from(entry.generation) << 32));
        }
        let idx = self.entries.len() as u32;
        self.entries.push(Entry {
            generation: 0,
            value: Some(value),
        });
        Token(u64::from(idx))
    }

    fn slot(&self, token: Token) -> Option<usize> {
        let idx = (token.0 & 0xffff_ffff) as usize;
        let generation = (token.0 >> 32) as u32;
        let entry = self.entries.get(idx)?;
        (entry.generation == generation && entry.value.is_some()).then_some(idx)
    }

    /// Look up a live entry; a stale (removed-and-reused) token misses.
    pub fn get_mut(&mut self, token: Token) -> Option<&mut T> {
        let idx = self.slot(token)?;
        self.entries[idx].value.as_mut()
    }

    /// Remove and return the entry, retiring the token forever.
    pub fn remove(&mut self, token: Token) -> Option<T> {
        let idx = self.slot(token)?;
        let entry = &mut self.entries[idx];
        let value = entry.value.take();
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(idx as u32);
        self.len -= 1;
        value
    }

    /// Tokens of every live entry (drain/shutdown sweeps).
    pub fn tokens(&self) -> Vec<Token> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.value.is_some())
            .map(|(i, e)| Token(i as u64 | (u64::from(e.generation) << 32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_sees_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .register(rx.as_raw_fd(), 42, Interest::READABLE)
            .unwrap();

        // Nothing to read yet: a short wait delivers no events.
        let mut events = Vec::new();
        epoll
            .wait(&mut events, Some(std::time::Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 42 || !e.readable));

        tx.write_all(b"x").unwrap();
        let mut events = Vec::new();
        epoll
            .wait(&mut events, Some(std::time::Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        epoll.deregister(rx.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_pulls_reactor_out_of_wait() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll
            .register(waker.reader_fd(), 7, Interest::READABLE)
            .unwrap();

        let handle = {
            let fd_waker = std::sync::Arc::new(waker);
            let remote = std::sync::Arc::clone(&fd_waker);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                remote.wake();
            });
            let mut events = Vec::new();
            epoll
                .wait(&mut events, Some(std::time::Duration::from_secs(10)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.readable));
            fd_waker.drain();
            handle
        };
        handle.join().unwrap();
    }

    #[test]
    fn slab_generations_retire_stale_tokens() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), Some("a"));
        // The slot is reused under a new generation…
        let c = slab.insert("c");
        assert_eq!(slab.get_mut(c), Some(&mut "c"));
        // …and the retired token cannot reach it.
        assert_eq!(slab.get_mut(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.get_mut(b), Some(&mut "b"));
        assert_eq!(slab.tokens().len(), 2);
    }
}
