//! A blocking client for the `ctxpref` wire protocol, with reconnect,
//! bounded retry, and request pipelining.
//!
//! Requests travel in the compact `ctxpref2` binary codec
//! ([`crate::codec`]), each carrying a **request id** the server
//! echoes on the response. Serial calls ([`NetClient::request`]) use
//! the id as a sanity check; [`NetClient::pipeline`] ships many
//! requests before reading anything and then matches the possibly
//! **out-of-order** responses back to their requests by id — one
//! round-trip's latency amortized over the whole burst.
//! [`NetClient::batch`] goes further and packs N requests into a
//! single frame ([`Request::Batch`]).
//!
//! The client keeps one cached connection. When a request fails at the
//! socket or framing layer it drops the connection and — **only for
//! idempotent requests** ([`Request::is_idempotent`]) — redials and
//! retries with linear backoff, up to the configured attempt budget.
//! Mutations are never retried blind: a torn connection after a
//! mutation was sent leaves the outcome unknown, and replaying it
//! could double-apply.
//!
//! Every backoff sleep adds a small **deterministic jitter** drawn
//! from a seeded generator ([`NetClientConfig::jitter`],
//! [`NetClientConfig::jitter_seed`]), so a fleet of clients retrying
//! into the same recovering server fans out instead of stampeding in
//! lockstep — while a given seed still replays the exact same sleep
//! sequence in tests.
//!
//! [`Response::Busy`] is one step gentler than a transport failure:
//! the server answered, it just had no capacity. For **idempotent**
//! requests the client retries it under its own small cap
//! ([`NetClientConfig::busy_attempts`]) before surfacing the typed
//! [`NetError::ServerBusy`]; non-idempotent requests surface it
//! immediately (capacity may free mid-mutation, and a blind replay
//! could double-apply). When the busy frame carries a `retry_after`
//! hint the client sleeps **that** long instead of its own linear
//! backoff — the server knows its queue depth better than the client's
//! schedule does. Other typed refusals ([`NetError::Remote`]) are
//! never retried: the server made a decision, and the caller gets it
//! intact to apply its own policy.
//!
//! A busy refusal arrives in either dialect, and the dialect carries
//! meaning: a `ctxpref1` **text** busy is connection admission — the
//! server refused before it knew which dialect the peer speaks, and
//! closed the socket — so the client drops its cached connection. A
//! binary busy is a **request-level** shed on a healthy connection
//! (admission control refused the request's tier), so the connection
//! is kept and reused.
//!
//! [`NetClient::request_enveloped`] threads an **end-to-end budget**
//! and a [`Priority`] tier through the `ctxpref2` envelope. The budget
//! is decremented across every attempt and backoff sleep, each retry
//! re-encodes the request with only what remains, and when it runs out
//! client-side the typed [`NetError::BudgetExhausted`] comes back
//! without another byte on the wire.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use ctxpref_service::Priority;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::codec;
use crate::error::{NetError, ProtoError};
use crate::frame::{read_frame, read_frame_buffered, write_frame, write_frames, FrameDecoder};
use crate::proto::{MigrateAction, RemoteAnswer, Request, Response};

/// Tuning knobs of [`NetClient`].
#[derive(Debug, Clone, Copy)]
pub struct NetClientConfig {
    /// Dial timeout per connection attempt.
    pub connect_timeout: Duration,
    /// Socket read timeout while waiting for a response frame.
    pub read_timeout: Duration,
    /// Socket write timeout for request frames.
    pub write_timeout: Duration,
    /// Total attempts per idempotent request (first try included).
    pub attempts: u32,
    /// Backoff between attempts, multiplied by the attempt number.
    pub backoff: Duration,
    /// Upper bound on the random extra delay added to every backoff
    /// sleep. Zero disables jitter entirely.
    pub jitter: Duration,
    /// Seed for the jitter generator: the sleep sequence is a pure
    /// function of this seed, so tests replay byte-identically.
    pub jitter_seed: u64,
    /// Total attempts for an idempotent request answered with a typed
    /// busy refusal (first try included); non-idempotent requests
    /// surface busy on the first refusal.
    pub busy_attempts: u32,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            attempts: 3,
            backoff: Duration::from_millis(50),
            jitter: Duration::from_millis(20),
            jitter_seed: 0,
            busy_attempts: 3,
        }
    }
}

/// A blocking `ctxpref` client over one cached TCP connection.
pub struct NetClient {
    addr: String,
    cfg: NetClientConfig,
    conn: Option<TcpStream>,
    next_id: u64,
    jitter_rng: StdRng,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("addr", &self.addr)
            .field("connected", &self.conn.is_some())
            .finish()
    }
}

impl NetClient {
    /// A client for the server at `addr` (e.g. `"127.0.0.1:7878"`).
    /// Does not dial until the first request.
    pub fn connect(addr: impl Into<String>, cfg: NetClientConfig) -> Self {
        Self {
            addr: addr.into(),
            cfg,
            conn: None,
            next_id: 1,
            jitter_rng: StdRng::seed_from_u64(cfg.jitter_seed),
        }
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Drop the cached connection; the next request redials.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn dial(&self) -> Result<TcpStream, NetError> {
        let mut last: Option<std::io::Error> = None;
        for resolved in self.addr.to_socket_addrs()? {
            match dial_one(&resolved, &self.cfg) {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
        }
        Err(NetError::Io(last.unwrap_or_else(|| {
            std::io::Error::other(format!("address {} resolved to nothing", self.addr))
        })))
    }

    fn ensure_conn(&mut self) -> Result<(), NetError> {
        if self.conn.is_none() {
            self.conn = Some(self.dial()?);
        }
        Ok(())
    }

    /// The cached connection, or a typed [`NetError::NotConnected`].
    /// The previous implementation panicked on this path via
    /// `expect("connection just established")` when a connect raced a
    /// concurrent teardown; the caller can redial on the typed error.
    fn require_conn(&mut self) -> Result<&mut TcpStream, NetError> {
        self.conn.as_mut().ok_or(NetError::NotConnected)
    }

    /// One request/response exchange on the cached connection,
    /// establishing it if needed. Any failure tears the connection
    /// down so the next attempt starts from a clean dial. Returns the
    /// response plus whether it arrived in the binary dialect — the
    /// caller needs that to tell a request-level busy (connection
    /// stays healthy) from a connection-admission busy (the server
    /// closed after the frame).
    fn exchange(
        &mut self,
        req: &Request,
        budget_ms: u64,
        tier: Priority,
    ) -> Result<(Response, bool), NetError> {
        self.ensure_conn()?;
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let stream = self.require_conn()?;
        let result = (|| {
            write_frame(
                stream,
                &codec::encode_request_enveloped(id, req, budget_ms, tier),
            )?;
            match read_frame(stream)? {
                Some(payload) => Ok(payload),
                None => Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "server closed the connection before responding",
                ))),
            }
        })();
        let payload = match result {
            Ok(payload) => payload,
            Err(e) => {
                self.conn = None;
                return Err(e);
            }
        };
        match decode_reply(&payload, id) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                // A frame that decoded to the wrong id (or not at all)
                // means the stream is desynchronized; only a fresh
                // connection is trustworthy.
                self.conn = None;
                Err(e)
            }
        }
    }

    /// One backoff sleep: linear in the attempt number, plus a
    /// deterministic random fan-out bounded by the configured jitter.
    fn backoff_sleep(&mut self, attempt: u32) {
        std::thread::sleep(self.backoff_delay(attempt));
    }

    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let mut delay = self.cfg.backoff * attempt;
        let ceiling = self.cfg.jitter.as_nanos().min(u128::from(u64::MAX)) as u64;
        if ceiling > 0 {
            delay += Duration::from_nanos(self.jitter_rng.random_range(0..=ceiling));
        }
        delay
    }

    /// Sleep before retrying a busy refusal: the server's hint when it
    /// gave one, the linear backoff otherwise — clamped so the sleep
    /// never outlives the caller's remaining budget.
    fn busy_sleep(&mut self, attempt: u32, hint: Duration, deadline: Option<Instant>) {
        let mut delay = if hint.is_zero() {
            self.backoff_delay(attempt)
        } else {
            hint
        };
        if let Some(d) = deadline {
            delay = delay.min(d.saturating_duration_since(Instant::now()));
        }
        std::thread::sleep(delay);
    }

    /// Send `req`, reconnecting and retrying (idempotent requests
    /// only) on transport failures, and retrying busy refusals under
    /// their own cap. No end-to-end budget: the server enforces only
    /// its own per-request deadline, and the request travels at
    /// interactive priority.
    pub fn request(&mut self, req: &Request) -> Result<Response, NetError> {
        self.request_enveloped(req, None, Priority::Interactive)
    }

    /// Send `req` with an end-to-end `budget` and a priority `tier`
    /// threaded through the wire envelope.
    ///
    /// The budget starts ticking **here**, on the caller's side of the
    /// wire: every attempt re-encodes the request with only the budget
    /// that remains, so the server never works past the point where the
    /// caller has stopped waiting — even after retries and backoff
    /// sleeps ate most of the allowance. When it runs out client-side
    /// the typed [`NetError::BudgetExhausted`] is returned without
    /// another attempt. `None` means unconstrained (the envelope
    /// carries budget 0, which the server reads as "no caller bound").
    pub fn request_enveloped(
        &mut self,
        req: &Request,
        budget: Option<Duration>,
        tier: Priority,
    ) -> Result<Response, NetError> {
        let deadline = budget.map(|b| Instant::now() + b);
        let idempotent = req.is_idempotent();
        let attempt_budget = if idempotent {
            self.cfg.attempts.max(1)
        } else {
            1
        };
        let busy_budget = if idempotent {
            self.cfg.busy_attempts.max(1)
        } else {
            1
        };
        // Busy refusals and transport failures spend separate budgets:
        // a server that was briefly saturated and then lost the
        // connection still gets its full transport retry allowance.
        let mut attempt = 0;
        let mut busy_attempt = 0;
        loop {
            let budget_ms = match deadline {
                None => 0,
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(NetError::BudgetExhausted {
                            budget: budget.unwrap_or_default(),
                        });
                    }
                    (remaining.as_millis() as u64).max(1)
                }
            };
            match self.exchange(req, budget_ms, tier) {
                // The server answered but had no capacity. A text busy
                // is connection admission — the server closed the
                // socket after the frame, so drop the cached
                // connection. A binary busy is a request-level shed on
                // a connection that stays healthy.
                Ok((
                    Response::Busy {
                        limit,
                        retry_after_ms,
                    },
                    binary,
                )) => {
                    if !binary {
                        self.conn = None;
                    }
                    let retry_after = Duration::from_millis(retry_after_ms);
                    busy_attempt += 1;
                    if busy_attempt >= busy_budget {
                        return Err(NetError::ServerBusy { limit, retry_after });
                    }
                    self.busy_sleep(busy_attempt, retry_after, deadline);
                }
                // Any other decoded response is an answer, even a
                // refusal: the server made a decision, so no retry.
                Ok((Response::Err { kind, message }, _)) => {
                    return Err(NetError::Remote { kind, message })
                }
                Ok((resp, _)) => return Ok(resp),
                Err(e @ (NetError::Io(_) | NetError::Frame(_))) => {
                    attempt += 1;
                    if attempt >= attempt_budget {
                        return if attempt == 1 {
                            Err(e)
                        } else {
                            Err(NetError::RetriesExhausted {
                                attempts: attempt,
                                last: e.to_string(),
                            })
                        };
                    }
                    self.busy_sleep(attempt, Duration::ZERO, deadline);
                }
                // Protocol confusion is not transient; surface it.
                Err(e) => return Err(e),
            }
        }
    }

    /// Ship every request down the socket before reading a single
    /// response, then collect the (possibly out-of-order) responses
    /// and return them **in request order**. This is the pipelined
    /// path: one connection, many requests in flight, the round-trip
    /// latency paid once for the burst instead of once per request.
    ///
    /// Retry policy matches [`Self::request`], applied to the burst as
    /// a whole: transport failures and busy refusals are retried only
    /// if **every** request in the burst is idempotent.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>, NetError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let idempotent = reqs.iter().all(Request::is_idempotent);
        let budget = if idempotent {
            self.cfg.attempts.max(1)
        } else {
            1
        };
        let busy_budget = if idempotent {
            self.cfg.busy_attempts.max(1)
        } else {
            1
        };
        let mut attempt = 0;
        let mut busy_attempt = 0;
        loop {
            match self.pipeline_once(reqs) {
                Ok(resps) => return Ok(resps),
                Err(NetError::ServerBusy { limit, retry_after }) => {
                    busy_attempt += 1;
                    if busy_attempt >= busy_budget {
                        return Err(NetError::ServerBusy { limit, retry_after });
                    }
                    self.busy_sleep(busy_attempt, retry_after, None);
                }
                Err(e @ (NetError::Io(_) | NetError::Frame(_))) => {
                    attempt += 1;
                    if attempt >= budget {
                        return if attempt == 1 {
                            Err(e)
                        } else {
                            Err(NetError::RetriesExhausted {
                                attempts: attempt,
                                last: e.to_string(),
                            })
                        };
                    }
                    self.backoff_sleep(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn pipeline_once(&mut self, reqs: &[Request]) -> Result<Vec<Response>, NetError> {
        self.ensure_conn()?;
        let base = self.next_id;
        self.next_id = self.next_id.wrapping_add(reqs.len() as u64).max(1);
        let stream = self.require_conn()?;
        let result = (|| {
            // One coalesced write for the whole burst, and bulk reads
            // through a frame decoder on the way back: the syscall
            // count is per burst, not per request.
            let payloads: Vec<Vec<u8>> = reqs
                .iter()
                .enumerate()
                .map(|(i, req)| codec::encode_request(base + i as u64, req))
                .collect();
            write_frames(stream, &payloads)?;
            let mut dec = FrameDecoder::new();
            let mut slots: Vec<Option<Response>> = Vec::new();
            slots.resize_with(reqs.len(), || None);
            let mut remaining = reqs.len();
            while remaining > 0 {
                let payload = read_frame_buffered(stream, &mut dec)?.ok_or_else(|| {
                    NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "server closed the connection mid-pipeline",
                    ))
                })?;
                if codec::is_binary(&payload) {
                    let wire = codec::decode_response(&payload)
                        .map_err(|e| NetError::Proto(ProtoError::from(e)))?;
                    let slot = wire
                        .id
                        .checked_sub(base)
                        .and_then(|i| usize::try_from(i).ok())
                        .and_then(|i| slots.get_mut(i));
                    match slot {
                        Some(slot @ None) => {
                            *slot = Some(wire.resp);
                            remaining -= 1;
                        }
                        // An unknown or duplicated id: the stream is
                        // not answering what was asked.
                        _ => {
                            return Err(NetError::UnexpectedResponse {
                                got: format!("response for unknown request id {}", wire.id),
                            })
                        }
                    }
                } else {
                    // A text frame mid-pipeline is connection-level: a
                    // busy refusal at admission (typed for retry) or a
                    // framing refusal.
                    match Response::decode(&payload)? {
                        Response::Busy {
                            limit,
                            retry_after_ms,
                        } => {
                            return Err(NetError::ServerBusy {
                                limit,
                                retry_after: Duration::from_millis(retry_after_ms),
                            })
                        }
                        Response::Err { kind, message } => {
                            return Err(NetError::Remote { kind, message })
                        }
                        other => {
                            return Err(NetError::UnexpectedResponse {
                                got: format!("{other:?}"),
                            })
                        }
                    }
                }
            }
            // Trailing bytes after the last response would desync the
            // next exchange's unbuffered reads: protocol confusion.
            if dec.buffered() != 0 {
                return Err(NetError::UnexpectedResponse {
                    got: format!("{} unsolicited bytes after the burst", dec.buffered()),
                });
            }
            Ok(slots.into_iter().flatten().collect())
        })();
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Ship several requests in one [`Request::Batch`] frame and
    /// return the per-item responses, in order. The server stops at
    /// the first failing item: the returned vector is then shorter
    /// than `requests`, ending with that item's typed failure.
    pub fn batch(&mut self, requests: Vec<Request>) -> Result<Vec<Response>, NetError> {
        match self.request(&Request::Batch { requests })? {
            Response::Batch { responses } => Ok(responses),
            other => Err(unexpected(&other)),
        }
    }

    /// Bulk-insert equality preferences for one user in a single
    /// frame: `(descriptor, attr, value, score)` per item. Returns how
    /// many applied; a failing item aborts the rest of the batch and
    /// surfaces typed (the applied prefix stays applied).
    pub fn insert_preferences(
        &mut self,
        user: &str,
        items: &[(&str, &str, &str, f64)],
    ) -> Result<usize, NetError> {
        let requests = items
            .iter()
            .map(|(descriptor, attr, value, score)| Request::InsertPref {
                user: user.to_string(),
                descriptor: descriptor.to_string(),
                attr: attr.to_string(),
                value: value.to_string(),
                score: *score,
            })
            .collect();
        let responses = self.batch(requests)?;
        let mut applied = 0;
        for resp in responses {
            match resp {
                Response::Ok => applied += 1,
                Response::Err { kind, message } => return Err(NetError::Remote { kind, message }),
                Response::NotPrimary => {
                    return Err(NetError::Remote {
                        kind: "not-primary".to_string(),
                        message: "write refused: no primary behind this endpoint".to_string(),
                    })
                }
                Response::Migrating { user } => {
                    return Err(NetError::Remote {
                        kind: "migrating".to_string(),
                        message: format!("write refused: user {user:?} is mid-migration"),
                    })
                }
                other => return Err(unexpected(&other)),
            }
        }
        Ok(applied)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Rank `user`'s tuples by `attr` under a context state given as
    /// hierarchy value names, returning the top `k` (with ties).
    ///
    /// `deadline` doubles as the end-to-end budget: it is carried in
    /// the wire envelope, decremented across retries, and the server
    /// clamps its own execution deadline to what remains.
    pub fn query(
        &mut self,
        user: &str,
        attr: &str,
        k: usize,
        deadline: Duration,
        state: &[&str],
    ) -> Result<RemoteAnswer, NetError> {
        self.query_tiered(user, attr, k, deadline, state, Priority::Interactive)
    }

    /// [`Self::query`] at an explicit priority tier. Under overload
    /// the server sheds [`Priority::Maintenance`] first, then
    /// [`Priority::Bulk`]; [`Priority::Interactive`] is shed only by
    /// the hard in-flight backstop.
    pub fn query_tiered(
        &mut self,
        user: &str,
        attr: &str,
        k: usize,
        deadline: Duration,
        state: &[&str],
        tier: Priority,
    ) -> Result<RemoteAnswer, NetError> {
        let req = Request::Query {
            user: user.to_string(),
            attr: attr.to_string(),
            k,
            deadline_ms: deadline.as_millis().min(u128::from(u64::MAX)) as u64,
            state: state.iter().map(|s| s.to_string()).collect(),
        };
        match self.request_enveloped(&req, Some(deadline), tier)? {
            Response::Answer(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// Top-k query: the server evaluates only the best `k` rows —
    /// from a materialized view when one is current (the answer's
    /// `step` reads `view`), early-terminating ranking otherwise —
    /// and the wire carries only those rows. Same deadline/budget
    /// envelope as [`Self::query`].
    pub fn query_topk(
        &mut self,
        user: &str,
        attr: &str,
        k: usize,
        deadline: Duration,
        state: &[&str],
    ) -> Result<RemoteAnswer, NetError> {
        self.query_topk_tiered(user, attr, k, deadline, state, Priority::Interactive)
    }

    /// [`Self::query_topk`] at an explicit priority tier.
    pub fn query_topk_tiered(
        &mut self,
        user: &str,
        attr: &str,
        k: usize,
        deadline: Duration,
        state: &[&str],
        tier: Priority,
    ) -> Result<RemoteAnswer, NetError> {
        let req = Request::TopK {
            user: user.to_string(),
            attr: attr.to_string(),
            k,
            deadline_ms: deadline.as_millis().min(u128::from(u64::MAX)) as u64,
            state: state.iter().map(|s| s.to_string()).collect(),
        };
        match self.request_enveloped(&req, Some(deadline), tier)? {
            Response::Answer(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's view-catalog status report, rendered.
    pub fn views_status(&mut self) -> Result<String, NetError> {
        self.expect_text(&Request::ViewsStatus)
    }

    /// Rank `user`'s tuples under an extended context descriptor (the
    /// exploratory library path).
    pub fn query_descriptor(
        &mut self,
        user: &str,
        attr: &str,
        k: usize,
        descriptor: &str,
    ) -> Result<RemoteAnswer, NetError> {
        let req = Request::QueryDescriptor {
            user: user.to_string(),
            attr: attr.to_string(),
            k,
            descriptor: descriptor.to_string(),
        };
        match self.request(&req)? {
            Response::Answer(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// Create a user with an empty profile.
    pub fn add_user(&mut self, user: &str) -> Result<(), NetError> {
        self.expect_ok(&Request::AddUser {
            user: user.to_string(),
        })
    }

    /// Remove a user and their profile.
    pub fn remove_user(&mut self, user: &str) -> Result<(), NetError> {
        self.expect_ok(&Request::RemoveUser {
            user: user.to_string(),
        })
    }

    /// Insert an equality preference from its textual parts.
    pub fn insert_preference(
        &mut self,
        user: &str,
        descriptor: &str,
        attr: &str,
        value: &str,
        score: f64,
    ) -> Result<(), NetError> {
        self.expect_ok(&Request::InsertPref {
            user: user.to_string(),
            descriptor: descriptor.to_string(),
            attr: attr.to_string(),
            value: value.to_string(),
            score,
        })
    }

    /// Remove `user`'s preference at `index`, returning its score.
    pub fn remove_preference(&mut self, user: &str, index: usize) -> Result<f64, NetError> {
        match self.request(&Request::RemovePref {
            user: user.to_string(),
            index,
        })? {
            Response::Removed { score } => Ok(score),
            other => Err(unexpected(&other)),
        }
    }

    /// Re-score `user`'s preference at `index`.
    pub fn update_score(&mut self, user: &str, index: usize, score: f64) -> Result<(), NetError> {
        self.expect_ok(&Request::UpdateScore {
            user: user.to_string(),
            index,
            score,
        })
    }

    /// Force a checkpoint on the server; returns its report, rendered.
    pub fn checkpoint(&mut self) -> Result<String, NetError> {
        self.expect_text(&Request::Checkpoint)
    }

    /// Flush the server's write-ahead log; returns the report, rendered.
    pub fn flush_wal(&mut self) -> Result<String, NetError> {
        self.expect_text(&Request::FlushWal)
    }

    /// The server's WAL status, rendered.
    pub fn wal_status(&mut self) -> Result<String, NetError> {
        self.expect_text(&Request::WalStatus)
    }

    /// The server's replication status, rendered.
    pub fn repl_status(&mut self) -> Result<String, NetError> {
        self.expect_text(&Request::ReplStatus)
    }

    /// The server's service counters, rendered. Includes one
    /// `fault <site> <hits>` line per fault-injection site of the
    /// currently installed plan, if any.
    pub fn stats(&mut self) -> Result<String, NetError> {
        self.expect_text(&Request::Stats)
    }

    /// One routing probe: whether a primary serves writes, the
    /// replication epoch, and how much state lives behind `addr`.
    pub fn route_status(&mut self) -> Result<ctxpref_service::RouteInfo, NetError> {
        match self.request(&Request::RouteStatus)? {
            Response::RouteInfo {
                has_primary,
                epoch,
                users,
                migrations,
            } => Ok(ctxpref_service::RouteInfo {
                has_primary,
                epoch,
                users,
                migrations,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Run one scrub pass on the server now; returns the pass's
    /// verification/quarantine/heal figures.
    pub fn scrub(&mut self) -> Result<Response, NetError> {
        match self.request(&Request::Scrub)? {
            r @ Response::ScrubReport { .. } => Ok(r),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's self-healing counters, without running a pass.
    pub fn scrub_status(&mut self) -> Result<Response, NetError> {
        match self.request(&Request::ScrubStatus)? {
            r @ Response::ScrubInfo { .. } => Ok(r),
            other => Err(unexpected(&other)),
        }
    }

    /// One migration step for `user` under routing epoch `epoch`. The
    /// response shape depends on the action (a cut, a snapshot, a
    /// record page, a watermark, …), so the raw [`Response`] comes
    /// back for the migration driver to match on.
    pub fn migrate(
        &mut self,
        user: &str,
        epoch: u64,
        action: MigrateAction,
    ) -> Result<Response, NetError> {
        self.request(&Request::MigrateUser {
            user: user.to_string(),
            epoch,
            action,
        })
    }

    fn expect_ok(&mut self, req: &Request) -> Result<(), NetError> {
        match self.request(req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn expect_text(&mut self, req: &Request) -> Result<String, NetError> {
        match self.request(req)? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected(&other)),
        }
    }
}

/// Decode one reply frame for serial request `id`, reporting whether
/// it was binary. Binary replies must echo the id; text replies are
/// connection-level (the busy refusal at admission is sent before the
/// server knows the peer's dialect).
fn decode_reply(payload: &[u8], id: u64) -> Result<(Response, bool), NetError> {
    if codec::is_binary(payload) {
        let wire =
            codec::decode_response(payload).map_err(|e| NetError::Proto(ProtoError::from(e)))?;
        if wire.id != id {
            return Err(NetError::UnexpectedResponse {
                got: format!("response for request id {} while awaiting {id}", wire.id),
            });
        }
        return Ok((wire.resp, true));
    }
    Ok((Response::decode(payload)?, false))
}

fn dial_one(addr: &SocketAddr, cfg: &NetClientConfig) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(addr, cfg.connect_timeout)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

fn unexpected(resp: &Response) -> NetError {
    NetError::UnexpectedResponse {
        got: format!("{resp:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the `expect("connection just established")`
    /// panic: a client whose connection vanished between establishment
    /// and use must surface the typed [`NetError::NotConnected`], not
    /// abort the process.
    #[test]
    fn missing_connection_is_a_typed_error_not_a_panic() {
        let mut client = NetClient::connect("127.0.0.1:9", NetClientConfig::default());
        assert!(client.conn.is_none());
        match client.require_conn() {
            Err(NetError::NotConnected) => {}
            other => panic!("expected NotConnected, got {other:?}"),
        }
        // And the rendered form names the race for operators.
        assert!(NetError::NotConnected
            .to_string()
            .contains("no live connection"));
    }
}
