//! The TCP serving layer: the `ctxpref` serving core over real
//! sockets.
//!
//! Three pillars, one framing discipline:
//!
//! * [`frame`] — length-prefixed, FNV-1a-checksummed frames (the WAL
//!   record framing minus the LSN). The declared length is capped
//!   **before allocation**, so hostile peers cost a header read, not
//!   memory.
//! * [`proto`] + [`server`]/[`client`] — a versioned request/response
//!   vocabulary over those frames; [`NetServer`] fronts a shared
//!   [`CtxPrefService`](ctxpref_service::CtxPrefService) with
//!   connection admission, socket deadlines, panic containment, and
//!   graceful drain; [`NetClient`] is the blocking peer with
//!   reconnect and idempotent-only retry.
//! * [`repl`] — [`TcpTransport`] implements replication's
//!   [`Transport`](ctxpref_replication::Transport) seam over loopback
//!   TCP, so a [`Cluster`](ctxpref_replication::Cluster) spans real
//!   sockets and the existing chaos plans drive it unchanged.
//!
//! Every socket operation passes a deterministic fault site
//! (`net.accept`, `net.frame.read`, `net.frame.write`,
//! `net.conn.delay`, `net.conn.drop`), so torn frames, dead
//! connections, and stalled links are scripted test inputs here, not
//! production surprises.
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use ctxpref_core::MultiUserDb;
//! use ctxpref_net::{NetClient, NetClientConfig, NetServer, NetServerConfig};
//! use ctxpref_service::{CtxPrefService, ServiceConfig};
//! use ctxpref_workload::reference::{poi_env, poi_relation};
//!
//! let env = poi_env();
//! let db = MultiUserDb::new(env.clone(), poi_relation(&env, 7, 2), 8);
//! let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
//! let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), NetServerConfig::default())
//!     .expect("bind loopback");
//!
//! let mut client = NetClient::connect(server.local_addr().to_string(), NetClientConfig::default());
//! client.ping().expect("server is live");
//! client.add_user("alice").expect("create alice");
//! client
//!     .insert_preference("alice", "accompanying_people = friends", "type", "museum", 0.8)
//!     .expect("insert preference");
//! let answer = client
//!     .query("alice", "name", 3, Duration::from_millis(250), &["Plaka", "warm", "friends"])
//!     .expect("remote query");
//! assert!(!answer.rows.is_empty());
//!
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod error;
pub mod frame;
pub mod proto;
pub mod reactor;
pub mod repl;
pub mod server;

pub use client::{NetClient, NetClientConfig};
pub use codec::{
    decode_request, decode_response, encode_request, encode_request_enveloped, encode_response,
    is_binary, WireRequest, WireResponse, BINARY_MAGIC, BINARY_VERSION,
};
// The tier vocabulary travels in the wire envelope; re-exported so
// network callers need not depend on the service crate for it.
pub use ctxpref_service::Priority;
pub use error::{DecodeError, DecodeKind, FrameError, NetError, ProtoError};
pub use frame::{
    encode_frame, frame_checksum, read_frame, write_frame, FrameDecoder, FRAME_HEADER,
    MAX_FRAME_PAYLOAD,
};
pub use proto::{
    AnswerRow, MigrateAction, RemoteAnswer, Request, Response, WireFallback, PROTO_VERSION,
};
pub use repl::{ReplServer, TcpTransport, REPL_PROTO_VERSION};
pub use server::{NetServer, NetServerConfig};
