//! The TCP front-end: an event-driven, pipelined [`NetServer`] in
//! front of a shared [`CtxPrefService`].
//!
//! One **reactor thread** owns every socket: a hand-rolled epoll loop
//! ([`crate::reactor`]) with nonblocking reads/writes and a
//! per-connection state machine (incremental frame decoder, pending
//! output queue, idle clock). Decoded request frames are handed to a
//! small **worker pool** that runs dispatch against the service;
//! completions flow back over a queue and a waker, and the reactor
//! writes the response frames out. No thread ever blocks on a peer.
//!
//! Responsibilities, and where each is enforced:
//!
//! * **Connection admission** — a hard cap on concurrent connections.
//!   A connection over the cap receives one typed [`Response::Busy`]
//!   frame and is closed, never parked on an unbounded queue.
//! * **Pipelining** — a `ctxpref2` (binary) connection may have up to
//!   [`NetServerConfig::max_pipeline`] requests in flight; responses
//!   carry the request's id and may return **out of order**. Past the
//!   cap the reactor simply stops reading the socket — backpressure
//!   by TCP, not by queue growth. A `ctxpref1` (text) connection is
//!   served serially in order, exactly like the previous blocking
//!   server, for the one-version compatibility window.
//! * **Deadlines** — an idle connection (no bytes either way for
//!   [`NetServerConfig::read_timeout`], or output unwritable for
//!   [`NetServerConfig::write_timeout`]) is closed by the reactor's
//!   sweep; the client-requested query deadline is clamped to
//!   [`NetServerConfig::max_deadline`] before it reaches
//!   [`CtxPrefService::query_state_deadline`].
//! * **Panic isolation** — dispatch runs under `catch_unwind` in the
//!   workers; a panicking request answers with a typed error.
//! * **Graceful drain** — [`NetServer::shutdown`] stops accepting,
//!   lets in-flight requests finish (bounded by the drain timeout),
//!   and returns how many connections had to be cut.
//!
//! Socket-option failures on accept (`set_nonblocking`, `set_nodelay`)
//! close that connection and are counted in [`NetServer::net_stats`] —
//! the old server dropped these errors on the floor, and a connection
//! whose options silently failed to apply could hang a worker.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::CoreError;
use ctxpref_faults::sites::{
    NET_ACCEPT, NET_CONN_DELAY, NET_CONN_DROP, NET_FRAME_READ, NET_FRAME_WRITE,
};
use ctxpref_faults::{hit, hit_io};
use ctxpref_service::{CtxPrefService, Priority, ReplicationError, ServiceError};

use crate::codec;
use crate::frame::{encode_frame, FrameDecoder};
use crate::proto::{AnswerRow, MigrateAction, RemoteAnswer, Request, Response, WireFallback};
use crate::reactor::{Epoll, Interest, Slab, Token, Waker};

/// Tuning knobs of the TCP front-end.
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Concurrent-connection cap. Connection `max_connections + 1`
    /// gets a typed busy frame and is closed.
    pub max_connections: usize,
    /// Idle timeout: how long a connection may sit with no traffic in
    /// either direction before the reactor reclaims it.
    pub read_timeout: Duration,
    /// Write-stall timeout: how long queued output may sit unwritable
    /// (peer not reading) before the connection is cut.
    pub write_timeout: Duration,
    /// Upper bound on the per-query deadline a client may request.
    pub max_deadline: Duration,
    /// How long [`NetServer::shutdown`] waits for in-flight
    /// connections to finish before cutting them.
    pub drain_timeout: Duration,
    /// Per-connection cap on pipelined in-flight requests (binary
    /// protocol). Past it the reactor stops reading the socket until
    /// completions drain — backpressure by TCP.
    pub max_pipeline: usize,
    /// Dispatch worker threads.
    pub workers: usize,
    /// The retry hint attached to a connection-admission busy frame
    /// (request-level sheds carry the service's live sojourn-derived
    /// hint instead).
    pub busy_retry_after: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_deadline: Duration::from_secs(2),
            drain_timeout: Duration::from_secs(5),
            max_pipeline: 128,
            workers: 4,
            busy_retry_after: Duration::from_millis(100),
        }
    }
}

/// Counters of the serving front-end, exposed via
/// [`NetServer::net_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted and admitted.
    pub accepted: usize,
    /// Connections refused with a typed busy frame.
    pub refused_busy: usize,
    /// Connections closed because a socket option failed to apply on
    /// accept (`set_nonblocking`/`set_nodelay`). The old server
    /// swallowed these errors with `let _ =`.
    pub sockopt_failures: usize,
    /// Request frames decoded off sockets.
    pub frames_in: usize,
    /// Response frames written.
    pub frames_out: usize,
}

#[derive(Debug, Default)]
struct StatsCells {
    accepted: AtomicUsize,
    refused_busy: AtomicUsize,
    sockopt_failures: AtomicUsize,
    frames_in: AtomicUsize,
    frames_out: AtomicUsize,
}

impl StatsCells {
    fn snapshot(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.load(Ordering::Acquire),
            refused_busy: self.refused_busy.load(Ordering::Acquire),
            sockopt_failures: self.sockopt_failures.load(Ordering::Acquire),
            frames_in: self.frames_in.load(Ordering::Acquire),
            frames_out: self.frames_out.load(Ordering::Acquire),
        }
    }
}

/// A running TCP server in front of one shared service.
pub struct NetServer {
    addr: SocketAddr,
    cfg: NetServerConfig,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    undrained: Arc<AtomicUsize>,
    stats: Arc<StatsCells>,
    waker: Arc<Waker>,
    reactor_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("active", &self.active.load(Ordering::Acquire))
            .field("config", &self.cfg)
            .finish()
    }
}

/// One request frame handed to the worker pool.
struct Job {
    token: Token,
    payload: Vec<u8>,
    binary: bool,
}

/// One finished response on its way back to the reactor.
struct Completion {
    token: Token,
    /// The response as a raw frame payload (already protocol-encoded).
    payload: Vec<u8>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `service`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<CtxPrefService>,
        cfg: NetServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let waker = Arc::new(Waker::new()?);

        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let undrained = Arc::new(AtomicUsize::new(0));
        let stats = Arc::new(StatsCells::default());
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));

        let mut worker_threads = Vec::new();
        for i in 0..cfg.workers.max(1) {
            let service = Arc::clone(&service);
            let job_rx = Arc::clone(&job_rx);
            let completions = Arc::clone(&completions);
            let waker = Arc::clone(&waker);
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("ctxpref-net-worker-{i}"))
                    .spawn(move || worker_loop(&service, &cfg, &job_rx, &completions, &waker))?,
            );
        }

        let reactor_thread = {
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            let undrained = Arc::clone(&undrained);
            let stats = Arc::clone(&stats);
            let waker = Arc::clone(&waker);
            let completions = Arc::clone(&completions);
            std::thread::Builder::new()
                .name(format!("ctxpref-net-reactor-{}", addr.port()))
                .spawn(move || {
                    Reactor {
                        listener: Some(listener),
                        epoll,
                        waker,
                        cfg,
                        conns: Slab::new(),
                        shutdown,
                        active,
                        undrained,
                        stats,
                        job_tx,
                        completions,
                        drain_deadline: None,
                    }
                    .run()
                })?
        };

        Ok(Self {
            addr,
            cfg,
            shutdown,
            active,
            undrained,
            stats,
            waker,
            reactor_thread: Some(reactor_thread),
            worker_threads,
        })
    }

    /// The address the server is actually listening on (resolves an
    /// ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Front-end counters (accepts, busy refusals, socket-option
    /// failures, frames in/out).
    pub fn net_stats(&self) -> NetStats {
        self.stats.snapshot()
    }

    /// Graceful drain: stop accepting, let in-flight requests finish
    /// (bounded by the configured drain timeout), and return how many
    /// connections had to be cut un-drained (0 on a clean drain).
    pub fn shutdown(mut self) -> usize {
        self.begin_shutdown();
        self.undrained.load(Ordering::Acquire)
    }

    fn begin_shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.waker.wake();
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
        // The reactor exiting dropped the job sender; workers see the
        // channel close and stop.
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if !self.shutdown.load(Ordering::Acquire) {
            self.begin_shutdown();
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

fn worker_loop(
    service: &Arc<CtxPrefService>,
    cfg: &NetServerConfig,
    jobs: &Mutex<Receiver<Job>>,
    completions: &Mutex<Vec<Completion>>,
    waker: &Waker,
) {
    loop {
        // Hold the receiver lock only for the dequeue, not the work.
        let job = match jobs.lock() {
            Ok(rx) => match rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            },
            Err(_) => return,
        };
        // Injected stall: `hit` sleeps inside for Delay rules. Runs
        // here — in a worker — so a scripted delay never stalls the
        // reactor thread itself.
        let _ = hit(NET_CONN_DELAY);
        let payload = if job.binary {
            match codec::decode_request(&job.payload) {
                Ok(wire) => codec::encode_response(
                    wire.id,
                    &dispatch(service, cfg, &wire.req, wire.budget_ms, wire.tier),
                ),
                Err(e) => {
                    // The body was malformed but the header may still
                    // name the request — answer typed under its id so
                    // the pipelined client can match the refusal.
                    let id = codec::request_id_of(&job.payload).unwrap_or(0);
                    codec::encode_response(
                        id,
                        &Response::Err {
                            kind: "proto".to_string(),
                            message: e.to_string(),
                        },
                    )
                }
            }
        } else {
            // The text dialect predates the envelope: no budget, and
            // the default Interactive tier.
            match Request::decode(&job.payload) {
                Ok(request) => dispatch(service, cfg, &request, 0, Priority::Interactive).encode(),
                Err(e) => Response::Err {
                    kind: "proto".to_string(),
                    message: e.to_string(),
                }
                .encode(),
            }
        };
        // Wake the reactor only on the empty→nonempty transition: the
        // reactor drains the whole queue per wake, so a completion
        // pushed behind an undrained one already has a wake pending.
        // The push and the emptiness check share the mutex, so any
        // drain that could consume the pending wake must also collect
        // this completion.
        let needs_wake = match completions.lock() {
            Ok(mut queue) => {
                let was_empty = queue.is_empty();
                queue.push(Completion {
                    token: job.token,
                    payload,
                });
                was_empty
            }
            Err(_) => true,
        };
        if needs_wake {
            waker.wake();
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKER_TOKEN: u64 = u64::MAX - 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// First frame not seen yet: dialect unknown.
    Sniff,
    /// `ctxpref2`: pipelined, out-of-order completions allowed.
    Binary,
    /// `ctxpref1`: serial, in-order (compatibility window).
    Text,
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded frames (header included) awaiting the socket, plus the
    /// write offset into the front one.
    out: VecDeque<Vec<u8>>,
    out_pos: usize,
    mode: Mode,
    /// Dispatched-but-unanswered requests.
    in_flight: usize,
    /// Parsed text frames queued behind the serial dispatch.
    text_backlog: VecDeque<Vec<u8>>,
    last_activity: Instant,
    /// Output has been unwritable since this instant (write stall).
    write_stalled_since: Option<Instant>,
    /// Close once the output queue drains.
    closing: bool,
    registered: Interest,
}

impl Conn {
    fn desired_interest(&self, cfg: &NetServerConfig) -> Interest {
        let wants_read = !self.closing && self.in_flight < cfg.max_pipeline;
        let wants_write = !self.out.is_empty();
        match (wants_read, wants_write) {
            (true, true) => Interest::BOTH,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            // epoll needs *some* registration; an interest-less wait
            // still surfaces errors/hangups for reclamation.
            (false, false) => Interest::WRITABLE,
        }
    }
}

struct Reactor {
    listener: Option<TcpListener>,
    epoll: Epoll,
    waker: Arc<Waker>,
    cfg: NetServerConfig,
    conns: Slab<Conn>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    undrained: Arc<AtomicUsize>,
    stats: Arc<StatsCells>,
    job_tx: Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    drain_deadline: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        if let Some(listener) = &self.listener {
            if self
                .epoll
                .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)
                .is_err()
            {
                return;
            }
        }
        if self
            .epoll
            .register(self.waker.reader_fd(), WAKER_TOKEN, Interest::READABLE)
            .is_err()
        {
            return;
        }

        let mut events = Vec::with_capacity(1024);
        let mut last_sweep = Instant::now();
        loop {
            events.clear();
            // A bounded tick so idle sweeps and the shutdown flag are
            // observed even on a silent socket set.
            let _ = self
                .epoll
                .wait(&mut events, Some(Duration::from_millis(100)));

            for ev in events.iter().copied() {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.waker.drain(),
                    raw => {
                        let token = Token(raw);
                        if ev.hangup && !ev.readable {
                            self.close(token, false);
                            continue;
                        }
                        if ev.readable {
                            self.read_ready(token);
                        }
                        if ev.writable {
                            self.write_ready(token);
                        }
                        self.refresh_interest(token);
                    }
                }
            }

            self.drain_completions();

            let now = Instant::now();
            if now.duration_since(last_sweep) >= Duration::from_millis(500) {
                last_sweep = now;
                self.sweep_idle(now);
            }

            if self.shutdown.load(Ordering::Acquire) && self.step_shutdown(now) {
                return;
            }
        }
    }

    /// Progress the graceful drain; true when the reactor should exit.
    fn step_shutdown(&mut self, now: Instant) -> bool {
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.deregister(listener.as_raw_fd());
            drop(listener);
            self.drain_deadline = Some(now + self.cfg.drain_timeout);
        }
        // Close everything with no work in flight and nothing queued.
        for token in self.conns.tokens() {
            let idle = self
                .conns
                .get_mut(token)
                .map(|c| c.in_flight == 0 && c.out.is_empty() && c.text_backlog.is_empty())
                .unwrap_or(true);
            if idle {
                self.close(token, false);
            }
        }
        if self.conns.is_empty() {
            return true;
        }
        if self.drain_deadline.is_some_and(|d| now >= d) {
            // Drain window over: cut the stragglers and report them.
            let leftover = self.conns.len();
            self.undrained.store(leftover, Ordering::Release);
            for token in self.conns.tokens() {
                self.close(token, false);
            }
            return true;
        }
        false
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let (stream, _) = match listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            };
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Injected accept failure: the connection is refused, the
            // listener stays up.
            if hit(NET_ACCEPT).is_err() {
                continue;
            }
            if self.conns.len() >= self.cfg.max_connections {
                self.stats.refused_busy.fetch_add(1, Ordering::AcqRel);
                // Best-effort typed refusal (text: oldest clients must
                // understand it), then close. The socket is fresh, so
                // the small frame fits the send buffer.
                if let Ok(frame) = encode_frame(
                    &Response::Busy {
                        limit: self.cfg.max_connections,
                        retry_after_ms: self.cfg.busy_retry_after.as_millis() as u64,
                    }
                    .encode(),
                ) {
                    let mut stream = stream;
                    let _ = stream.write_all(&frame);
                }
                continue;
            }
            // Socket options are load-bearing (a blocking fd would
            // wedge the whole reactor): a failure closes the
            // connection and is counted, not ignored.
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                self.stats.sockopt_failures.fetch_add(1, Ordering::AcqRel);
                continue;
            }
            let fd = stream.as_raw_fd();
            let token = self.conns.insert(Conn {
                stream,
                decoder: FrameDecoder::new(),
                out: VecDeque::new(),
                out_pos: 0,
                mode: Mode::Sniff,
                in_flight: 0,
                text_backlog: VecDeque::new(),
                last_activity: Instant::now(),
                write_stalled_since: None,
                closing: false,
                registered: Interest::READABLE,
            });
            if self
                .epoll
                .register(fd, token.0, Interest::READABLE)
                .is_err()
            {
                self.conns.remove(token);
                continue;
            }
            self.stats.accepted.fetch_add(1, Ordering::AcqRel);
            self.active.store(self.conns.len(), Ordering::Release);
        }
    }

    fn read_ready(&mut self, token: Token) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            if conn.closing || conn.in_flight >= self.cfg.max_pipeline {
                break;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // Peer closed. Anything still in flight finishes
                    // into a dead socket; reclaim now.
                    self.close(token, false);
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.decoder.extend(&buf[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token, false);
                    return;
                }
            }
        }
        self.pump_frames(token);
    }

    /// Drain complete frames from the connection's decoder into
    /// dispatch, respecting the pipeline cap and text seriality.
    fn pump_frames(&mut self, token: Token) {
        loop {
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            if conn.closing || conn.in_flight >= self.cfg.max_pipeline {
                return;
            }
            let payload = match conn.decoder.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => return,
                Err(e) => {
                    // Torn/hostile framing: answer typed where the
                    // socket still works, then close (the stream is
                    // misaligned beyond recovery).
                    let refusal = Response::Err {
                        kind: "frame".to_string(),
                        message: e.to_string(),
                    };
                    self.enqueue_frame(token, &refusal.encode());
                    self.write_ready(token);
                    self.shutdown_after_flush(token);
                    return;
                }
            };
            // The per-frame fault gauntlet the blocking server ran
            // inside `read_frame`: an injected read fault or
            // connection drop severs the conversation here too.
            if hit_io(NET_FRAME_READ).is_err() || hit(NET_CONN_DROP).is_err() {
                self.close(token, false);
                return;
            }
            self.stats.frames_in.fetch_add(1, Ordering::AcqRel);
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            if conn.mode == Mode::Sniff {
                conn.mode = if codec::is_binary(&payload) {
                    Mode::Binary
                } else {
                    Mode::Text
                };
            }
            match conn.mode {
                Mode::Binary => {
                    conn.in_flight += 1;
                    let _ = self.job_tx.send(Job {
                        token,
                        payload,
                        binary: true,
                    });
                }
                Mode::Text | Mode::Sniff => {
                    // Text is served one request at a time so replies
                    // stay in request order, as ctxpref1 promises.
                    if conn.in_flight == 0 {
                        conn.in_flight = 1;
                        let _ = self.job_tx.send(Job {
                            token,
                            payload,
                            binary: false,
                        });
                    } else {
                        conn.text_backlog.push_back(payload);
                    }
                }
            }
        }
    }

    fn drain_completions(&mut self) {
        let done: Vec<Completion> = match self.completions.lock() {
            Ok(mut queue) => queue.drain(..).collect(),
            Err(_) => return,
        };
        let mut touched: Vec<Token> = Vec::new();
        for comp in done {
            let Some(conn) = self.conns.get_mut(comp.token) else {
                continue;
            };
            conn.in_flight = conn.in_flight.saturating_sub(1);
            // Serial text service: release the next queued request.
            if conn.mode == Mode::Text && conn.in_flight == 0 {
                if let Some(next) = conn.text_backlog.pop_front() {
                    conn.in_flight = 1;
                    let _ = self.job_tx.send(Job {
                        token: comp.token,
                        payload: next,
                        binary: false,
                    });
                }
            }
            self.enqueue_frame(comp.token, &comp.payload);
            // Freed pipeline budget: frames may be waiting, parsed,
            // in the decoder.
            self.pump_frames(comp.token);
            if !touched.contains(&comp.token) {
                touched.push(comp.token);
            }
        }
        // Flush once per connection rather than once per completion:
        // responses that completed together leave together.
        for token in touched {
            self.write_ready(token);
            self.refresh_interest(token);
        }
    }

    /// Queue one response frame. The caller flushes (`write_ready`)
    /// once it has enqueued everything it has for the connection.
    fn enqueue_frame(&mut self, token: Token, payload: &[u8]) {
        // The per-frame write fault site the blocking server ran
        // inside `write_frame`.
        if hit_io(NET_FRAME_WRITE).is_err() {
            self.close(token, false);
            return;
        }
        let frame = match encode_frame(payload) {
            Ok(f) => f,
            Err(_) => {
                self.close(token, false);
                return;
            }
        };
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        conn.out.push_back(frame);
        self.stats.frames_out.fetch_add(1, Ordering::AcqRel);
    }

    fn write_ready(&mut self, token: Token) {
        loop {
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            if conn.out.is_empty() {
                conn.write_stalled_since = None;
                break;
            }
            // Coalesce every queued frame into one vectored write: a
            // pipelined burst's responses leave as one syscall, not
            // one each.
            let res = {
                let mut slices: Vec<std::io::IoSlice<'_>> =
                    Vec::with_capacity(conn.out.len().min(64));
                let mut frames = conn.out.iter();
                if let Some(front) = frames.next() {
                    slices.push(std::io::IoSlice::new(&front[conn.out_pos..]));
                    slices.extend(frames.take(63).map(|f| std::io::IoSlice::new(f)));
                }
                conn.stream.write_vectored(&slices)
            };
            match res {
                Ok(0) => {
                    self.close(token, false);
                    return;
                }
                Ok(mut n) => {
                    conn.last_activity = Instant::now();
                    conn.write_stalled_since = None;
                    while n > 0 {
                        let Some(front) = conn.out.front() else { break };
                        let rem = front.len() - conn.out_pos;
                        if n >= rem {
                            n -= rem;
                            conn.out.pop_front();
                            conn.out_pos = 0;
                        } else {
                            conn.out_pos += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if conn.write_stalled_since.is_none() {
                        conn.write_stalled_since = Some(Instant::now());
                    }
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token, false);
                    return;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        if conn.closing && conn.out.is_empty() && conn.in_flight == 0 {
            self.close(token, false);
        }
    }

    /// Mark a connection to close once queued output flushes.
    fn shutdown_after_flush(&mut self, token: Token) {
        if let Some(conn) = self.conns.get_mut(token) {
            conn.closing = true;
            if conn.out.is_empty() && conn.in_flight == 0 {
                self.close(token, false);
            }
        }
    }

    fn refresh_interest(&mut self, token: Token) {
        let cfg = self.cfg;
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        let desired = conn.desired_interest(&cfg);
        if desired != conn.registered {
            let fd = conn.stream.as_raw_fd();
            if self.epoll.reregister(fd, token.0, desired).is_ok() {
                if let Some(conn) = self.conns.get_mut(token) {
                    conn.registered = desired;
                }
            }
        }
    }

    fn sweep_idle(&mut self, now: Instant) {
        for token in self.conns.tokens() {
            let Some(conn) = self.conns.get_mut(token) else {
                continue;
            };
            let idle_too_long = conn.in_flight == 0
                && conn.out.is_empty()
                && now.duration_since(conn.last_activity) >= self.cfg.read_timeout;
            let write_wedged = conn
                .write_stalled_since
                .is_some_and(|since| now.duration_since(since) >= self.cfg.write_timeout);
            if idle_too_long || write_wedged {
                self.close(token, false);
            }
        }
    }

    fn close(&mut self, token: Token, _flush: bool) {
        if let Some(conn) = self.conns.remove(token) {
            let _ = self.epoll.deregister(conn.stream.as_raw_fd());
            // Dropping the stream closes the fd; in-flight worker
            // completions for this token die against the slab's
            // generation check instead of reaching a reused slot.
        }
        self.active.store(self.conns.len(), Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Dispatch (runs in the worker pool)
// ---------------------------------------------------------------------------

/// Execute one request against the service, with panics contained.
/// `budget_ms` and `tier` come off the `ctxpref2` envelope: the
/// remaining end-to-end deadline budget (0 = unconstrained) that
/// clamps every query deadline, and the priority tier admission sheds
/// by.
fn dispatch(
    service: &Arc<CtxPrefService>,
    cfg: &NetServerConfig,
    req: &Request,
    budget_ms: u64,
    tier: Priority,
) -> Response {
    match catch_unwind(AssertUnwindSafe(|| {
        dispatch_inner(service, cfg, req, budget_ms, tier)
    })) {
        Ok(resp) => resp,
        Err(_) => Response::Err {
            kind: "panic".to_string(),
            message: "request dispatch panicked (contained at the connection boundary)".to_string(),
        },
    }
}

fn dispatch_inner(
    service: &CtxPrefService,
    cfg: &NetServerConfig,
    req: &Request,
    budget_ms: u64,
    tier: Priority,
) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Query {
            user,
            attr,
            k,
            deadline_ms,
            state,
        } => {
            let state = {
                let names: Vec<&str> = state.iter().map(String::as_str).collect();
                match service.with_db(|db| ContextState::parse(db.env(), &names)) {
                    Ok(s) => s,
                    Err(e) => return err_of(&ServiceError::Core(CoreError::Context(e))),
                }
            };
            // The enforced deadline is the *tightest* of the request's
            // own ask, the propagated remaining budget, and the
            // server's cap — a hop-decremented budget wins over a
            // generous per-request deadline.
            let mut deadline_ms = (*deadline_ms).max(1);
            if budget_ms > 0 {
                deadline_ms = deadline_ms.min(budget_ms);
            }
            let deadline = Duration::from_millis(deadline_ms).min(cfg.max_deadline);
            let answer = match service.query_tiered(user, &state, deadline, tier) {
                Ok(a) => a,
                Err(e) => return err_of(&e),
            };
            let rows = match render_rows(service, &answer.answer, attr, *k) {
                Ok(rows) => rows,
                Err(e) => return err_of(&ServiceError::Core(e)),
            };
            Response::Answer(RemoteAnswer {
                step: answer.step.to_string(),
                elapsed_us: answer.elapsed.as_micros() as u64,
                resolved_state: answer
                    .resolved_state
                    .as_ref()
                    .map(|s| service.with_db(|db| s.display(db.env()).to_string())),
                fallbacks: answer
                    .fallbacks
                    .iter()
                    .map(|fb| WireFallback {
                        step: fb.step.to_string(),
                        reason: fb.reason.clone(),
                    })
                    .collect(),
                rows,
            })
        }
        Request::TopK {
            user,
            attr,
            k,
            deadline_ms,
            state,
        } => {
            let state = {
                let names: Vec<&str> = state.iter().map(String::as_str).collect();
                match service.with_db(|db| ContextState::parse(db.env(), &names)) {
                    Ok(s) => s,
                    Err(e) => return err_of(&ServiceError::Core(CoreError::Context(e))),
                }
            };
            // Same deadline arithmetic as Query: tightest of the
            // request's ask, the propagated budget, and the cap.
            let mut deadline_ms = (*deadline_ms).max(1);
            if budget_ms > 0 {
                deadline_ms = deadline_ms.min(budget_ms);
            }
            let deadline = Duration::from_millis(deadline_ms).min(cfg.max_deadline);
            let answer = match service.query_topk_tiered(user, &state, *k, deadline, tier) {
                Ok(a) => a,
                Err(e) => return err_of(&e),
            };
            let rows = match render_rows(service, &answer.answer, attr, *k) {
                Ok(rows) => rows,
                Err(e) => return err_of(&ServiceError::Core(e)),
            };
            Response::Answer(RemoteAnswer {
                step: answer.step.to_string(),
                elapsed_us: answer.elapsed.as_micros() as u64,
                resolved_state: answer
                    .resolved_state
                    .as_ref()
                    .map(|s| service.with_db(|db| s.display(db.env()).to_string())),
                fallbacks: answer
                    .fallbacks
                    .iter()
                    .map(|fb| WireFallback {
                        step: fb.step.to_string(),
                        reason: fb.reason.clone(),
                    })
                    .collect(),
                rows,
            })
        }
        Request::ViewsStatus => Response::Text {
            body: service.views_status(),
        },
        Request::QueryDescriptor {
            user,
            attr,
            k,
            descriptor,
        } => {
            // The exploratory library path: a hypothetical context, not
            // a servable state lookup — no ladder, but still contained
            // and timed.
            let started = Instant::now();
            let answer = service.with_db(|db| {
                let ecod = ctxpref_context::parse_extended_descriptor(db.env(), descriptor)
                    .map_err(|e| ServiceError::Core(CoreError::Context(e)))?;
                db.query(user, &ecod).map_err(ServiceError::Core)
            });
            let answer = match answer {
                Ok(a) => a,
                Err(e) => return err_of(&e),
            };
            let rows = match render_rows(service, &answer, attr, *k) {
                Ok(rows) => rows,
                Err(e) => return err_of(&ServiceError::Core(e)),
            };
            Response::Answer(RemoteAnswer {
                step: "exact".to_string(),
                elapsed_us: started.elapsed().as_micros() as u64,
                resolved_state: None,
                fallbacks: Vec::new(),
                rows,
            })
        }
        Request::AddUser { user } => match service.add_user(user) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
        Request::RemoveUser { user } => match service.remove_user(user) {
            Ok(_) => Response::Ok,
            Err(e) => err_of(&e),
        },
        Request::InsertPref {
            user,
            descriptor,
            attr,
            value,
            score,
        } => match service.insert_preference_eq(
            user,
            descriptor,
            attr,
            value.as_str().into(),
            *score,
        ) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
        Request::RemovePref { user, index } => match service.remove_preference(user, *index) {
            Ok(pref) => Response::Removed {
                score: pref.score(),
            },
            Err(e) => err_of(&e),
        },
        Request::UpdateScore { user, index, score } => {
            match service.update_preference_score(user, *index, *score) {
                Ok(()) => Response::Ok,
                Err(e) => err_of(&e),
            }
        }
        Request::Checkpoint => match service.checkpoint() {
            Ok(report) => Response::Text {
                body: format!(
                    "checkpoint generation {} written ({} user(s))",
                    report.generation, report.users
                ),
            },
            Err(e) => err_of(&e),
        },
        Request::FlushWal => match service.flush_wal() {
            Ok(n) => Response::Text {
                body: format!("flushed {n} pending record(s)"),
            },
            Err(e) => err_of(&e),
        },
        Request::WalStatus => match service.wal_status() {
            Ok(status) => {
                let mut body = format!(
                    "appends {}, group-commit batches {}, rotations {}\n",
                    status.appends, status.batches, status.rotations
                );
                for (i, s) in status.shards.iter().enumerate() {
                    body.push_str(&format!(
                        "shard {i}: segment {} ({} bytes), last lsn {}, synced lsn {}, pending {}{}\n",
                        s.seg_no,
                        s.seg_bytes,
                        s.last_lsn,
                        s.synced_lsn,
                        s.pending,
                        if s.poisoned { " POISONED" } else { "" }
                    ));
                }
                Response::Text { body }
            }
            Err(e) => err_of(&e),
        },
        Request::ReplStatus => match service.replication_status() {
            Ok(status) => {
                let mut body = format!(
                    "primary {}, epoch {}, max lag {} record(s)\n",
                    match status.primary {
                        Some(p) => format!("node {p}"),
                        None => "none (failover pending)".to_string(),
                    },
                    status.epoch,
                    status.max_lag
                );
                for n in &status.nodes {
                    body.push_str(&format!(
                        "node {}: {}{}, epoch {}, {} record(s) applied\n",
                        n.id,
                        if n.live { "live" } else { "down" },
                        if n.is_primary { " PRIMARY" } else { "" },
                        n.epoch,
                        n.applied
                    ));
                }
                Response::Text { body }
            }
            Err(e) => err_of(&e),
        },
        Request::Stats => {
            let s = service.stats();
            let mut body = format!(
                "served: {} view, {} cached, {} exact, {} nearest-state, {} default\n\
                 contained panics {}, deadline misses {}, shed {}, errors {}",
                s.served_view,
                s.served_cached,
                s.served_exact,
                s.served_nearest,
                s.served_default,
                s.panics_contained,
                s.deadline_exceeded,
                s.shed,
                s.errors
            );
            body.push_str(&format!(
                "\ncache: {} hits, {} misses, {} insertions, {} evictions, {} invalidations",
                s.cache_hits,
                s.cache_misses,
                s.cache_insertions,
                s.cache_evictions,
                s.cache_invalidations
            ));
            body.push_str(&format!(
                "\nviews: {} materialized, {} pinned, {} hits, {} misses, {} patches, {} rebuilds",
                s.materialized_views,
                s.pinned_views,
                s.view_hits,
                s.view_misses,
                s.view_patches,
                s.view_rebuilds
            ));
            body.push_str(&format!(
                "\nshed by reason: {} admission, {} sojourn, {} expired-at-dequeue\n\
                 shed by tier: {} interactive, {} bulk, {} maintenance",
                s.shed_admission,
                s.shed_sojourn,
                s.shed_expired,
                s.shed_interactive,
                s.shed_bulk,
                s.shed_maintenance
            ));
            for (site, hits) in &s.fault_hits {
                body.push_str(&format!("\nfault {site} {hits}"));
            }
            Response::Text { body }
        }
        Request::Scrub => match service.scrub() {
            Ok(report) => Response::ScrubReport {
                segments_verified: report.segments_verified,
                checkpoints_verified: report.checkpoints_verified,
                read_errors: report.read_errors,
                quarantined: report.quarantined.len() as u64,
                healed: report.healed,
            },
            Err(e) => err_of(&e),
        },
        Request::ScrubStatus => match service.scrub_status() {
            Ok(s) => Response::ScrubInfo {
                passes: s.passes,
                quarantined: s.quarantined,
                read_errors: s.read_errors,
                heals: s.heals,
                rescued_shards: s.rescued_shards,
                disk_full_sheds: s.disk_full_sheds,
                rotate_failures: s.rotate_failures,
            },
            Err(e) => err_of(&e),
        },
        Request::RouteStatus => {
            let info = service.route_info();
            Response::RouteInfo {
                has_primary: info.has_primary,
                epoch: info.epoch,
                users: info.users,
                migrations: info.migrations,
            }
        }
        Request::MigrateUser {
            user,
            epoch,
            action,
        } => dispatch_migrate(service, user, *epoch, action),
        Request::Batch { requests } => dispatch_batch(service, cfg, requests, budget_ms, tier),
    }
}

/// Execute a batch: items run in order, and execution stops at the
/// first failure (its typed response is the last element, and the
/// returned length tells the caller how far the batch got). Items
/// inherit the batch envelope's budget and tier.
fn dispatch_batch(
    service: &CtxPrefService,
    cfg: &NetServerConfig,
    requests: &[Request],
    budget_ms: u64,
    tier: Priority,
) -> Response {
    let mut responses = Vec::with_capacity(requests.len());
    // Homogeneous insert batches take the service's bulk verb: one
    // routing/guard acquisition for the whole batch instead of one
    // per preference.
    if let Some(bulk) = as_bulk_insert(requests) {
        let (user, items) = bulk;
        match service.insert_preferences_eq_bulk(user, &items) {
            Ok(applied) => {
                responses.resize(applied, Response::Ok);
            }
            Err(bulk_err) => {
                responses.resize(bulk_err.applied, Response::Ok);
                responses.push(err_of(&bulk_err.error));
            }
        }
        return Response::Batch { responses };
    }
    for sub in requests {
        if matches!(sub, Request::Batch { .. }) {
            responses.push(Response::Err {
                kind: "proto".to_string(),
                message: "batches do not nest".to_string(),
            });
            break;
        }
        let resp = dispatch_inner(service, cfg, sub, budget_ms, tier);
        let failed = matches!(
            resp,
            Response::Err { .. } | Response::NotPrimary | Response::Migrating { .. }
        );
        responses.push(resp);
        if failed {
            break;
        }
    }
    Response::Batch { responses }
}

/// If every item inserts a preference for one user, extract the bulk
/// shape the service's batched verb takes.
#[allow(clippy::type_complexity)]
fn as_bulk_insert(requests: &[Request]) -> Option<(&str, Vec<(&str, &str, &str, f64)>)> {
    if requests.is_empty() {
        return None;
    }
    let mut items = Vec::with_capacity(requests.len());
    let mut batch_user: Option<&str> = None;
    for sub in requests {
        let Request::InsertPref {
            user,
            descriptor,
            attr,
            value,
            score,
        } = sub
        else {
            return None;
        };
        match batch_user {
            None => batch_user = Some(user),
            Some(u) if u == user => {}
            Some(_) => return None,
        }
        items.push((descriptor.as_str(), attr.as_str(), value.as_str(), *score));
    }
    batch_user.map(|u| (u, items))
}

/// Execute one migration step. Every step is idempotent (guarded by
/// the migration epoch and, for catch-up pages, the import watermark),
/// so a driver may blindly retry any of them over a fresh connection.
fn dispatch_migrate(
    service: &CtxPrefService,
    user: &str,
    epoch: u64,
    action: &MigrateAction,
) -> Response {
    match action {
        MigrateAction::Export => match service.migrate_export(user) {
            Ok(cut) => Response::UserCut {
                present: cut.present,
                shard: cut.shard,
                last_lsn: cut.last_lsn,
                digest: cut.digest,
            },
            Err(e) => err_of(&e),
        },
        MigrateAction::Snapshot => match service.migrate_snapshot(user) {
            Ok((src_lsn, ops)) => Response::Snapshot { src_lsn, ops },
            Err(e) => err_of(&e),
        },
        MigrateAction::Pull { from_lsn, max } => {
            match service.migrate_pull(user, *from_lsn, *max as usize) {
                Ok(Some(page)) => Response::Records {
                    through: page.through,
                    records: page.records,
                },
                Ok(None) => Response::Gone,
                Err(e) => err_of(&e),
            }
        }
        MigrateAction::Fence => match service.migrate_fence(user, epoch) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
        MigrateAction::Import { src_lsn, ops } => {
            match service.migrate_import(user, epoch, *src_lsn, ops) {
                Ok(()) => Response::Ok,
                Err(e) => err_of(&e),
            }
        }
        MigrateAction::Apply { through, records } => {
            match service.migrate_apply(user, epoch, *through, records) {
                Ok(watermark) => Response::Applied { watermark },
                Err(e) => err_of(&e),
            }
        }
        MigrateAction::Activate => match service.migrate_activate(user, epoch) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
        MigrateAction::Finish => match service.migrate_finish(user, epoch) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
        MigrateAction::Abort => match service.migrate_abort(user, epoch) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
    }
}

fn render_rows(
    service: &CtxPrefService,
    answer: &ctxpref_core::QueryAnswer,
    attr: &str,
    k: usize,
) -> Result<Vec<AnswerRow>, CoreError> {
    service.with_db(|db| {
        let a = db.relation().schema().require_attr(attr)?;
        Ok(answer
            .results
            .top_k_with_ties(k)
            .iter()
            .map(|e| AnswerRow {
                name: db.relation().tuple(e.tuple_index).value(a).to_string(),
                score: e.score,
            })
            .collect())
    })
}

/// Map a [`ServiceError`] to its wire form. Routing-relevant failures
/// get dedicated response variants (`not-primary`, `migrating`) so a
/// router can react without parsing messages; everything else is a
/// stable kind token plus the rendered message.
fn err_of(e: &ServiceError) -> Response {
    let kind = match e {
        // A shed is a typed busy frame carrying the service's live
        // retry hint, so clients back off cooperatively instead of
        // hammering (and retry at all — `Err` is never retried).
        ServiceError::Overloaded { limit, retry_after } => {
            return Response::Busy {
                limit: *limit,
                retry_after_ms: (retry_after.as_millis() as u64).max(1),
            }
        }
        ServiceError::DeadlineExceeded { .. } => "deadline",
        ServiceError::Cancelled => "cancelled",
        ServiceError::QueryPanicked { .. } => "panic",
        ServiceError::Core(_) => "core",
        ServiceError::Storage(_) => "storage",
        ServiceError::Wal(_) => "wal",
        ServiceError::NotDurable => "not-durable",
        ServiceError::NotReplicated => "not-replicated",
        ServiceError::Replication(
            ReplicationError::NoPrimary
            | ReplicationError::NotPrimary { .. }
            | ReplicationError::Fenced { .. },
        ) => return Response::NotPrimary,
        ServiceError::Replication(_) => "replication",
        ServiceError::ShuttingDown => "shutting-down",
        ServiceError::Migrating { user } => return Response::Migrating { user: user.clone() },
        ServiceError::StaleMigration { .. } => "stale-migration",
    };
    Response::Err {
        kind: kind.to_string(),
        message: e.to_string(),
    }
}
