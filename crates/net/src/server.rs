//! The TCP front-end: [`NetServer`] accepts connections in front of a
//! shared [`CtxPrefService`].
//!
//! Responsibilities, and where each is enforced:
//!
//! * **Connection admission** — a hard cap on concurrent connections
//!   (the worker pool bound). A connection over the cap receives one
//!   typed [`Response::Busy`] frame and is closed, never parked on an
//!   unbounded queue — the socket-level mirror of the service's
//!   admission control.
//! * **Deadlines** — socket read/write timeouts bound how long a
//!   half-dead peer can pin a worker, and the client-requested query
//!   deadline is clamped to [`NetServerConfig::max_deadline`] before it
//!   reaches [`CtxPrefService::query_state_deadline`], so a remote
//!   caller cannot demand unbounded work.
//! * **Panic isolation** — request dispatch runs under `catch_unwind`;
//!   a panicking request poisons nothing and answers with a typed
//!   error, like the service's own worker containment.
//! * **Graceful drain** — [`NetServer::shutdown`] stops accepting,
//!   lets in-flight requests finish (bounded by the drain timeout),
//!   and returns. In-progress connections close after their current
//!   request.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::CoreError;
use ctxpref_faults::hit;
use ctxpref_faults::sites::{NET_ACCEPT, NET_CONN_DELAY, NET_CONN_DROP};
use ctxpref_service::{CtxPrefService, ReplicationError, ServiceError};

use crate::error::FrameError;
use crate::frame::{read_frame, write_frame};
use crate::proto::{AnswerRow, MigrateAction, RemoteAnswer, Request, Response, WireFallback};

/// Tuning knobs of the TCP front-end.
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Concurrent-connection cap (the worker pool bound). Connection
    /// `max_connections + 1` gets a typed busy frame and is closed.
    pub max_connections: usize,
    /// Socket read timeout: how long a connection may sit idle (or
    /// dribble a frame) before the server reclaims its worker.
    pub read_timeout: Duration,
    /// Socket write timeout for response frames.
    pub write_timeout: Duration,
    /// Upper bound on the per-query deadline a client may request.
    pub max_deadline: Duration,
    /// How long [`NetServer::shutdown`] waits for in-flight
    /// connections to finish before giving up on them.
    pub drain_timeout: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_deadline: Duration::from_secs(2),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// A running TCP server in front of one shared service.
pub struct NetServer {
    addr: SocketAddr,
    cfg: NetServerConfig,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("active", &self.active.load(Ordering::Acquire))
            .field("config", &self.cfg)
            .finish()
    }
}

/// Decrements the active-connection gauge when a connection ends,
/// however it ends (including by panic).
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// accepting connections for `service`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<CtxPrefService>,
        cfg: NetServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            std::thread::Builder::new()
                .name(format!("ctxpref-net-accept-{}", addr.port()))
                .spawn(move || accept_loop(listener, service, cfg, shutdown, active))?
        };
        Ok(Self {
            addr,
            cfg,
            shutdown,
            active,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is actually listening on (resolves an
    /// ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, let every in-flight connection
    /// finish its current request (bounded by the configured drain
    /// timeout), and return. Returns the number of connections that
    /// were still open when the drain timed out (0 on a clean drain).
    pub fn shutdown(mut self) -> usize {
        self.begin_shutdown();
        let deadline = Instant::now() + self.cfg.drain_timeout;
        loop {
            let left = self.active.load(Ordering::Acquire);
            if left == 0 || Instant::now() >= deadline {
                return left;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn begin_shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the (blocking) accept call so the loop observes the
        // flag; the connect itself is then refused by the flag check.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if !self.shutdown.load(Ordering::Acquire) {
            self.begin_shutdown();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<CtxPrefService>,
    cfg: NetServerConfig,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        // Injected accept failure: the connection is refused, the
        // listener stays up.
        if hit(NET_ACCEPT).is_err() {
            continue;
        }
        // Admission: reserve a worker slot or answer busy-and-close.
        // `fetch_add` first so two racing accepts cannot both sneak
        // under the cap.
        if active.fetch_add(1, Ordering::AcqRel) >= cfg.max_connections {
            active.fetch_sub(1, Ordering::AcqRel);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(cfg.write_timeout));
            let _ = write_frame(
                &mut stream,
                &Response::Busy {
                    limit: cfg.max_connections,
                }
                .encode(),
            );
            continue;
        }
        let guard = ConnGuard(Arc::clone(&active));
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let spawned = std::thread::Builder::new()
            .name("ctxpref-net-conn".to_string())
            .spawn(move || {
                let _guard = guard;
                serve_connection(stream, &service, &cfg, &shutdown);
            });
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): the guard
            // inside the closure never ran, but the closure was
            // dropped, running its captured guard's Drop — nothing to
            // undo here.
            continue;
        }
    }
}

/// Serve one connection: a loop of (read frame, dispatch, write
/// frame) until the peer closes, a timeout fires, or drain begins.
fn serve_connection(
    stream: TcpStream,
    service: &Arc<CtxPrefService>,
    cfg: &NetServerConfig,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        // Injected connection death: sever mid-conversation, forcing
        // the peer onto its reconnect path.
        if hit(NET_CONN_DROP).is_err() {
            return;
        }
        // Injected stall: `hit` sleeps inside for Delay rules.
        let _ = hit(NET_CONN_DELAY);
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean close between frames.
            Ok(None) => return,
            // Torn/hostile frames get a typed refusal where the socket
            // still works; then the connection closes (framing is
            // unrecoverable once the stream is misaligned).
            Err(e) => {
                let refusal = Response::Err {
                    kind: "frame".to_string(),
                    message: e.to_string(),
                };
                if !matches!(e, FrameError::Io(_)) {
                    let _ = write_frame(&mut writer, &refusal.encode());
                }
                return;
            }
        };
        let response = match Request::decode(&payload) {
            Ok(request) => dispatch(service, cfg, &request),
            Err(e) => Response::Err {
                kind: "proto".to_string(),
                message: e.to_string(),
            },
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

/// Execute one request against the service, with panics contained.
fn dispatch(service: &Arc<CtxPrefService>, cfg: &NetServerConfig, req: &Request) -> Response {
    match catch_unwind(AssertUnwindSafe(|| dispatch_inner(service, cfg, req))) {
        Ok(resp) => resp,
        Err(_) => Response::Err {
            kind: "panic".to_string(),
            message: "request dispatch panicked (contained at the connection boundary)".to_string(),
        },
    }
}

fn dispatch_inner(service: &CtxPrefService, cfg: &NetServerConfig, req: &Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Query {
            user,
            attr,
            k,
            deadline_ms,
            state,
        } => {
            let state = {
                let names: Vec<&str> = state.iter().map(String::as_str).collect();
                match service.with_db(|db| ContextState::parse(db.env(), &names)) {
                    Ok(s) => s,
                    Err(e) => return err_of(&ServiceError::Core(CoreError::Context(e))),
                }
            };
            let deadline = Duration::from_millis((*deadline_ms).max(1)).min(cfg.max_deadline);
            let answer = match service.query_state_deadline(user, &state, deadline) {
                Ok(a) => a,
                Err(e) => return err_of(&e),
            };
            let rows = match render_rows(service, &answer.answer, attr, *k) {
                Ok(rows) => rows,
                Err(e) => return err_of(&ServiceError::Core(e)),
            };
            Response::Answer(RemoteAnswer {
                step: answer.step.to_string(),
                elapsed_us: answer.elapsed.as_micros() as u64,
                resolved_state: answer
                    .resolved_state
                    .as_ref()
                    .map(|s| service.with_db(|db| s.display(db.env()).to_string())),
                fallbacks: answer
                    .fallbacks
                    .iter()
                    .map(|fb| WireFallback {
                        step: fb.step.to_string(),
                        reason: fb.reason.clone(),
                    })
                    .collect(),
                rows,
            })
        }
        Request::QueryDescriptor {
            user,
            attr,
            k,
            descriptor,
        } => {
            // The exploratory library path: a hypothetical context, not
            // a servable state lookup — no ladder, but still contained
            // and timed.
            let started = Instant::now();
            let answer = service.with_db(|db| {
                let ecod = ctxpref_context::parse_extended_descriptor(db.env(), descriptor)
                    .map_err(|e| ServiceError::Core(CoreError::Context(e)))?;
                db.query(user, &ecod).map_err(ServiceError::Core)
            });
            let answer = match answer {
                Ok(a) => a,
                Err(e) => return err_of(&e),
            };
            let rows = match render_rows(service, &answer, attr, *k) {
                Ok(rows) => rows,
                Err(e) => return err_of(&ServiceError::Core(e)),
            };
            Response::Answer(RemoteAnswer {
                step: "exact".to_string(),
                elapsed_us: started.elapsed().as_micros() as u64,
                resolved_state: None,
                fallbacks: Vec::new(),
                rows,
            })
        }
        Request::AddUser { user } => match service.add_user(user) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
        Request::RemoveUser { user } => match service.remove_user(user) {
            Ok(_) => Response::Ok,
            Err(e) => err_of(&e),
        },
        Request::InsertPref {
            user,
            descriptor,
            attr,
            value,
            score,
        } => match service.insert_preference_eq(
            user,
            descriptor,
            attr,
            value.as_str().into(),
            *score,
        ) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
        Request::RemovePref { user, index } => match service.remove_preference(user, *index) {
            Ok(pref) => Response::Removed {
                score: pref.score(),
            },
            Err(e) => err_of(&e),
        },
        Request::UpdateScore { user, index, score } => {
            match service.update_preference_score(user, *index, *score) {
                Ok(()) => Response::Ok,
                Err(e) => err_of(&e),
            }
        }
        Request::Checkpoint => match service.checkpoint() {
            Ok(report) => Response::Text {
                body: format!(
                    "checkpoint generation {} written ({} user(s))",
                    report.generation, report.users
                ),
            },
            Err(e) => err_of(&e),
        },
        Request::FlushWal => match service.flush_wal() {
            Ok(n) => Response::Text {
                body: format!("flushed {n} pending record(s)"),
            },
            Err(e) => err_of(&e),
        },
        Request::WalStatus => match service.wal_status() {
            Ok(status) => {
                let mut body = format!(
                    "appends {}, group-commit batches {}, rotations {}\n",
                    status.appends, status.batches, status.rotations
                );
                for (i, s) in status.shards.iter().enumerate() {
                    body.push_str(&format!(
                        "shard {i}: segment {} ({} bytes), last lsn {}, synced lsn {}, pending {}{}\n",
                        s.seg_no,
                        s.seg_bytes,
                        s.last_lsn,
                        s.synced_lsn,
                        s.pending,
                        if s.poisoned { " POISONED" } else { "" }
                    ));
                }
                Response::Text { body }
            }
            Err(e) => err_of(&e),
        },
        Request::ReplStatus => match service.replication_status() {
            Ok(status) => {
                let mut body = format!(
                    "primary {}, epoch {}, max lag {} record(s)\n",
                    match status.primary {
                        Some(p) => format!("node {p}"),
                        None => "none (failover pending)".to_string(),
                    },
                    status.epoch,
                    status.max_lag
                );
                for n in &status.nodes {
                    body.push_str(&format!(
                        "node {}: {}{}, epoch {}, {} record(s) applied\n",
                        n.id,
                        if n.live { "live" } else { "down" },
                        if n.is_primary { " PRIMARY" } else { "" },
                        n.epoch,
                        n.applied
                    ));
                }
                Response::Text { body }
            }
            Err(e) => err_of(&e),
        },
        Request::Stats => {
            let s = service.stats();
            let mut body = format!(
                "served: {} cached, {} exact, {} nearest-state, {} default\n\
                 contained panics {}, deadline misses {}, shed {}, errors {}",
                s.served_cached,
                s.served_exact,
                s.served_nearest,
                s.served_default,
                s.panics_contained,
                s.deadline_exceeded,
                s.shed,
                s.errors
            );
            for (site, hits) in &s.fault_hits {
                body.push_str(&format!("\nfault {site} {hits}"));
            }
            Response::Text { body }
        }
        Request::RouteStatus => {
            let info = service.route_info();
            Response::RouteInfo {
                has_primary: info.has_primary,
                epoch: info.epoch,
                users: info.users,
                migrations: info.migrations,
            }
        }
        Request::MigrateUser {
            user,
            epoch,
            action,
        } => dispatch_migrate(service, user, *epoch, action),
    }
}

/// Execute one migration step. Every step is idempotent (guarded by
/// the migration epoch and, for catch-up pages, the import watermark),
/// so a driver may blindly retry any of them over a fresh connection.
fn dispatch_migrate(
    service: &CtxPrefService,
    user: &str,
    epoch: u64,
    action: &MigrateAction,
) -> Response {
    match action {
        MigrateAction::Export => match service.migrate_export(user) {
            Ok(cut) => Response::UserCut {
                present: cut.present,
                shard: cut.shard,
                last_lsn: cut.last_lsn,
                digest: cut.digest,
            },
            Err(e) => err_of(&e),
        },
        MigrateAction::Snapshot => match service.migrate_snapshot(user) {
            Ok((src_lsn, ops)) => Response::Snapshot { src_lsn, ops },
            Err(e) => err_of(&e),
        },
        MigrateAction::Pull { from_lsn, max } => {
            match service.migrate_pull(user, *from_lsn, *max as usize) {
                Ok(Some(page)) => Response::Records {
                    through: page.through,
                    records: page.records,
                },
                Ok(None) => Response::Gone,
                Err(e) => err_of(&e),
            }
        }
        MigrateAction::Fence => match service.migrate_fence(user, epoch) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
        MigrateAction::Import { src_lsn, ops } => {
            match service.migrate_import(user, epoch, *src_lsn, ops) {
                Ok(()) => Response::Ok,
                Err(e) => err_of(&e),
            }
        }
        MigrateAction::Apply { through, records } => {
            match service.migrate_apply(user, epoch, *through, records) {
                Ok(watermark) => Response::Applied { watermark },
                Err(e) => err_of(&e),
            }
        }
        MigrateAction::Activate => match service.migrate_activate(user, epoch) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
        MigrateAction::Finish => match service.migrate_finish(user, epoch) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
        MigrateAction::Abort => match service.migrate_abort(user, epoch) {
            Ok(()) => Response::Ok,
            Err(e) => err_of(&e),
        },
    }
}

fn render_rows(
    service: &CtxPrefService,
    answer: &ctxpref_core::QueryAnswer,
    attr: &str,
    k: usize,
) -> Result<Vec<AnswerRow>, CoreError> {
    service.with_db(|db| {
        let a = db.relation().schema().require_attr(attr)?;
        Ok(answer
            .results
            .top_k_with_ties(k)
            .iter()
            .map(|e| AnswerRow {
                name: db.relation().tuple(e.tuple_index).value(a).to_string(),
                score: e.score,
            })
            .collect())
    })
}

/// Map a [`ServiceError`] to its wire form. Routing-relevant failures
/// get dedicated response variants (`not-primary`, `migrating`) so a
/// router can react without parsing messages; everything else is a
/// stable kind token plus the rendered message.
fn err_of(e: &ServiceError) -> Response {
    let kind = match e {
        ServiceError::Overloaded { .. } => "overloaded",
        ServiceError::DeadlineExceeded { .. } => "deadline",
        ServiceError::Cancelled => "cancelled",
        ServiceError::QueryPanicked { .. } => "panic",
        ServiceError::Core(_) => "core",
        ServiceError::Storage(_) => "storage",
        ServiceError::Wal(_) => "wal",
        ServiceError::NotDurable => "not-durable",
        ServiceError::NotReplicated => "not-replicated",
        ServiceError::Replication(
            ReplicationError::NoPrimary
            | ReplicationError::NotPrimary { .. }
            | ReplicationError::Fenced { .. },
        ) => return Response::NotPrimary,
        ServiceError::Replication(_) => "replication",
        ServiceError::ShuttingDown => "shutting-down",
        ServiceError::Migrating { user } => return Response::Migrating { user: user.clone() },
        ServiceError::StaleMigration { .. } => "stale-migration",
    };
    Response::Err {
        kind: kind.to_string(),
        message: e.to_string(),
    }
}
