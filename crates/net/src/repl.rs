//! Socket-backed replication: [`TcpTransport`] implements the
//! cluster's [`Transport`]/[`NodeTransport`] seam over real TCP, so a
//! [`Cluster`](ctxpref_replication::Cluster) spans processes instead
//! of a `HashMap`.
//!
//! Each registered node gets a [`ReplServer`]: a loopback listener
//! whose connections run (read frame → decode [`Envelope`] →
//! `ReplNode::handle` → encode [`Reply`] → write frame). Sends dial
//! the peer fresh each time — replication traffic is batchy, and a
//! per-send dial keeps partition semantics exact (a healed link works
//! on the next send, with no stale pooled socket to drain).
//!
//! The fault discipline mirrors [`InProcessTransport`] exactly — the
//! same sites fire in the same order (`repl.partition`,
//! `repl.send.drop`/`repl.heartbeat.drop`, `repl.send.delay`,
//! `repl.send.duplicate`), plus the socket-level `net.conn.drop` site
//! — so every existing chaos plan drives this transport unchanged.
//!
//! [`InProcessTransport`]: ctxpref_replication::InProcessTransport
//!
//! ## Envelope wire form
//!
//! The hot path — `records` shipments, one per acked write under
//! pipelining — travels binary: a frame payload of
//! `[0xC3 | version | from | epoch | shard | n | (lsn, payload)×n]`
//! with LEB128 varints and raw length-delimited record bytes (no hex
//! doubling). `0xC3` cannot begin UTF-8 text, so receivers sniff the
//! first byte. Every other message — and everything a `repl1`-era
//! peer sends — is one frame of text lines in the storage dialect
//! (whitespace-escaped tokens; profiles reuse
//! [`write_profile`]/[`read_profile`] verbatim — the same sections the
//! checkpoint files store):
//!
//! ```text
//! repl1 <from> <epoch> records <shard> <n>      rec <lsn> <hex-payload> ×n
//! repl1 <from> <epoch> snapshot <stripes>       lsns …, stripe/user/profile…
//! repl1 <from> <epoch> heartbeat
//! repl1 <from> <epoch> digest-request
//! repl1 <from> <epoch> resync <shard> <lsn> <n> user/profile…
//! ```
//!
//! Text `records` stays accepted for one version so a rolling upgrade
//! never strands a sender.

use std::collections::HashMap;
use std::io::BufRead;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ctxpref_context::ContextEnvironment;
use ctxpref_faults::hit;
use ctxpref_faults::sites::{
    NET_ACCEPT, NET_CONN_DROP, REPL_HEARTBEAT_DROP, REPL_PARTITION, REPL_SEND_DELAY,
    REPL_SEND_DROP, REPL_SEND_DUPLICATE,
};
use ctxpref_relation::Relation;
use ctxpref_replication::{
    Envelope, Message, NodeId, NodeTransport, ReplNode, Reply, Transport, TransportError,
};
use ctxpref_storage::{escape, read_profile, unescape, write_profile};
use parking_lot::{Mutex, RwLock};

use crate::codec::{hex_decode, put_bytes, put_uv, Dec};
use crate::error::{DecodeError, DecodeKind, ProtoError};
use crate::frame::{read_frame, write_frame};

/// Version tag of the replication wire dialect.
pub const REPL_PROTO_VERSION: &str = "repl1";

/// First payload byte of a binary replication envelope. Like the
/// request codec's `0xC2`, `0xC3` can never begin well-formed UTF-8,
/// so one byte disambiguates the dialects.
pub const REPL_BINARY_MAGIC: u8 = 0xC3;

/// Version byte following [`REPL_BINARY_MAGIC`].
pub const REPL_BINARY_VERSION: u8 = 0x02;

// ---------------------------------------------------------------------------
// Envelope / Reply codec
// ---------------------------------------------------------------------------

fn next_line(cur: &mut &[u8]) -> Result<String, ProtoError> {
    let mut s = String::new();
    cur.read_line(&mut s)
        .map_err(|e| ProtoError::new(format!("reading replication line: {e}")))?;
    if s.is_empty() {
        return Err(ProtoError::new("replication message ended early"));
    }
    while s.ends_with('\n') || s.ends_with('\r') {
        s.pop();
    }
    Ok(s)
}

fn num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, ProtoError> {
    tok.parse()
        .map_err(|_| ProtoError::new(format!("bad {what}: {tok:?}")))
}

fn write_users(
    out: &mut Vec<u8>,
    users: &[(String, ctxpref_profile::Profile)],
    rel: &Relation,
) -> Result<(), ProtoError> {
    for (name, profile) in users {
        out.extend_from_slice(format!("user {}\n", escape(name)).as_bytes());
        write_profile(out, profile, rel)
            .map_err(|e| ProtoError::new(format!("encoding profile for {name:?}: {e}")))?;
    }
    Ok(())
}

fn read_users(
    cur: &mut &[u8],
    count: usize,
    env: &ContextEnvironment,
    rel: &Relation,
) -> Result<Vec<(String, ctxpref_profile::Profile)>, ProtoError> {
    let mut users = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let line = next_line(cur)?;
        let name = match line.split_whitespace().collect::<Vec<_>>()[..] {
            ["user", name] => unescape(name)
                .ok_or_else(|| ProtoError::new(format!("bad user token: {name:?}")))?,
            _ => return Err(ProtoError::new(format!("expected `user <name>`: {line:?}"))),
        };
        let profile = read_profile(&mut *cur, env, rel)
            .map_err(|e| ProtoError::new(format!("decoding profile for {name:?}: {e}")))?;
        users.push((name, profile));
    }
    Ok(users)
}

/// Encode `env` as one frame payload. The `records` hot path goes
/// binary (raw record bytes, varint framing); everything else stays
/// `repl1` text.
pub fn encode_envelope(env: &Envelope, rel: &Relation) -> Result<Vec<u8>, ProtoError> {
    let head = format!("{REPL_PROTO_VERSION} {} {}", env.from, env.epoch);
    let mut out = Vec::new();
    match &env.msg {
        Message::Records { shard, records } => {
            out.push(REPL_BINARY_MAGIC);
            out.push(REPL_BINARY_VERSION);
            put_uv(&mut out, env.from as u64);
            put_uv(&mut out, env.epoch);
            put_uv(&mut out, *shard as u64);
            put_uv(&mut out, records.len() as u64);
            for (lsn, payload) in records {
                put_uv(&mut out, *lsn);
                put_bytes(&mut out, payload);
            }
        }
        Message::Snapshot { stripes, lsns } => {
            out.extend_from_slice(format!("{head} snapshot {}\n", stripes.len()).as_bytes());
            let rendered: Vec<String> = lsns.iter().map(u64::to_string).collect();
            let line = format!("lsns {} {}", lsns.len(), rendered.join(" "));
            out.extend_from_slice(line.trim_end().as_bytes());
            out.push(b'\n');
            for (i, stripe) in stripes.iter().enumerate() {
                out.extend_from_slice(format!("stripe {i} {}\n", stripe.len()).as_bytes());
                write_users(&mut out, stripe, rel)?;
            }
        }
        Message::Heartbeat => out.extend_from_slice(format!("{head} heartbeat\n").as_bytes()),
        Message::DigestRequest => {
            out.extend_from_slice(format!("{head} digest-request\n").as_bytes())
        }
        Message::Resync {
            shard,
            users,
            last_lsn,
        } => {
            out.extend_from_slice(
                format!("{head} resync {shard} {last_lsn} {}\n", users.len()).as_bytes(),
            );
            write_users(&mut out, users, rel)?;
        }
    }
    Ok(out)
}

/// Decode one frame payload back into an [`Envelope`]. Accepts both
/// the binary `records` form and all `repl1` text forms (including
/// text `records` from a pre-upgrade peer).
pub fn decode_envelope(
    payload: &[u8],
    env: &ContextEnvironment,
    rel: &Relation,
) -> Result<Envelope, ProtoError> {
    if payload.first() == Some(&REPL_BINARY_MAGIC) {
        return decode_binary_records(payload).map_err(ProtoError::from);
    }
    let mut cur = payload;
    let header = next_line(&mut cur)?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    let rest = match toks.as_slice() {
        [version, rest @ ..] if *version == REPL_PROTO_VERSION => rest,
        [version, ..] => {
            return Err(ProtoError::new(format!(
                "replication protocol version mismatch: peer speaks {version:?}, this side {REPL_PROTO_VERSION:?}"
            )))
        }
        [] => return Err(ProtoError::new("empty replication header")),
    };
    let (from, epoch, verb) = match rest {
        [from, epoch, verb @ ..] if !verb.is_empty() => (
            num::<NodeId>(from, "sender id")?,
            num::<u64>(epoch, "epoch")?,
            verb,
        ),
        _ => {
            return Err(ProtoError::new(format!(
                "bad replication header: {header:?}"
            )))
        }
    };
    let msg = match verb {
        ["records", shard, n] => {
            let shard = num::<usize>(shard, "shard")?;
            let n = num::<usize>(n, "record count")?;
            let mut records = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let line = next_line(&mut cur)?;
                match line.split_whitespace().collect::<Vec<_>>()[..] {
                    ["rec", lsn, payload] => records.push((
                        num::<u64>(lsn, "lsn")?,
                        hex_decode(payload).map_err(ProtoError::from)?,
                    )),
                    ["rec", lsn] => records.push((num::<u64>(lsn, "lsn")?, Vec::new())),
                    _ => return Err(ProtoError::new(format!("bad record line: {line:?}"))),
                }
            }
            Message::Records { shard, records }
        }
        ["snapshot", nstripes] => {
            let nstripes = num::<usize>(nstripes, "stripe count")?;
            let line = next_line(&mut cur)?;
            let toks: Vec<&str> = line.split_whitespace().collect();
            let lsns = match toks.as_slice() {
                ["lsns", n, vals @ ..] if num::<usize>(n, "lsn count")? == vals.len() => vals
                    .iter()
                    .map(|v| num::<u64>(v, "lsn"))
                    .collect::<Result<Vec<u64>, _>>()?,
                _ => return Err(ProtoError::new(format!("bad lsns line: {line:?}"))),
            };
            let mut stripes = Vec::with_capacity(nstripes.min(1024));
            for want in 0..nstripes {
                let line = next_line(&mut cur)?;
                let nusers = match line.split_whitespace().collect::<Vec<_>>()[..] {
                    ["stripe", i, n] if num::<usize>(i, "stripe index")? == want => {
                        num::<usize>(n, "user count")?
                    }
                    _ => return Err(ProtoError::new(format!("bad stripe line: {line:?}"))),
                };
                stripes.push(read_users(&mut cur, nusers, env, rel)?);
            }
            Message::Snapshot { stripes, lsns }
        }
        ["heartbeat"] => Message::Heartbeat,
        ["digest-request"] => Message::DigestRequest,
        ["resync", shard, last_lsn, n] => Message::Resync {
            shard: num(shard, "shard")?,
            last_lsn: num(last_lsn, "last lsn")?,
            users: {
                let n = num::<usize>(n, "user count")?;
                read_users(&mut cur, n, env, rel)?
            },
        },
        _ => {
            return Err(ProtoError::new(format!(
                "unknown replication verb: {:?}",
                verb.join(" ")
            )))
        }
    };
    Ok(Envelope { from, epoch, msg })
}

/// Decode the binary `records` envelope form. Lengths and counts are
/// validated against the remaining bytes before any allocation, so a
/// hostile claim fails typed instead of reserving gigabytes.
fn decode_binary_records(payload: &[u8]) -> Result<Envelope, DecodeError> {
    let mut d = Dec::new(payload);
    let magic = d.u8()?;
    if magic != REPL_BINARY_MAGIC {
        return Err(DecodeError {
            offset: 0,
            kind: DecodeKind::BadTag {
                what: "replication magic",
                tag: u64::from(magic),
            },
        });
    }
    let version = d.u8()?;
    if version != REPL_BINARY_VERSION {
        return Err(DecodeError {
            offset: 1,
            kind: DecodeKind::BadTag {
                what: "replication codec version",
                tag: u64::from(version),
            },
        });
    }
    let from = d.uv()? as NodeId;
    let epoch = d.uv()?;
    let shard = d.uv()? as usize;
    // Each record is at least 2 bytes (one-byte lsn + one-byte length).
    let n = d.checked_count(2)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let lsn = d.uv()?;
        records.push((lsn, d.bytes()?));
    }
    d.expect_end()?;
    Ok(Envelope {
        from,
        epoch,
        msg: Message::Records { shard, records },
    })
}

/// Encode a [`Reply`] as one frame payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let line = match reply {
        Reply::Progress { next_lsn } => format!("{REPL_PROTO_VERSION} progress {next_lsn}"),
        Reply::SnapshotInstalled => format!("{REPL_PROTO_VERSION} snapshot-installed"),
        Reply::Beat { epoch, applied } => {
            let vals: Vec<String> = applied.iter().map(u64::to_string).collect();
            format!(
                "{REPL_PROTO_VERSION} beat {epoch} {} {}",
                applied.len(),
                vals.join(" ")
            )
            .trim_end()
            .to_string()
        }
        Reply::Digests { digests } => {
            let vals: Vec<String> = digests.iter().map(u64::to_string).collect();
            format!(
                "{REPL_PROTO_VERSION} digests {} {}",
                digests.len(),
                vals.join(" ")
            )
            .trim_end()
            .to_string()
        }
        Reply::Resynced => format!("{REPL_PROTO_VERSION} resynced"),
        Reply::Fenced { current } => format!("{REPL_PROTO_VERSION} fenced {current}"),
        Reply::Failed { reason } => format!("{REPL_PROTO_VERSION} failed {}", escape(reason)),
    };
    line.into_bytes()
}

/// Decode one frame payload back into a [`Reply`].
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ProtoError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| ProtoError::new("reply payload is not UTF-8"))?;
    let toks: Vec<&str> = text.split_whitespace().collect();
    let rest = match toks.as_slice() {
        [version, rest @ ..] if *version == REPL_PROTO_VERSION => rest,
        _ => {
            return Err(ProtoError::new(format!(
                "bad reply header: {:?}",
                text.lines().next().unwrap_or("")
            )))
        }
    };
    match rest {
        ["progress", next_lsn] => Ok(Reply::Progress {
            next_lsn: num(next_lsn, "next lsn")?,
        }),
        ["snapshot-installed"] => Ok(Reply::SnapshotInstalled),
        ["beat", epoch, n, vals @ ..] if num::<usize>(n, "applied count")? == vals.len() => {
            Ok(Reply::Beat {
                epoch: num(epoch, "epoch")?,
                applied: vals
                    .iter()
                    .map(|v| num::<u64>(v, "applied lsn"))
                    .collect::<Result<Vec<u64>, _>>()?,
            })
        }
        ["digests", n, vals @ ..] if num::<usize>(n, "digest count")? == vals.len() => {
            Ok(Reply::Digests {
                digests: vals
                    .iter()
                    .map(|v| num::<u64>(v, "digest"))
                    .collect::<Result<Vec<u64>, _>>()?,
            })
        }
        ["resynced"] => Ok(Reply::Resynced),
        ["fenced", current] => Ok(Reply::Fenced {
            current: num(current, "epoch")?,
        }),
        ["failed", reason] => Ok(Reply::Failed {
            reason: unescape(reason)
                .ok_or_else(|| ProtoError::new(format!("bad reason token: {reason:?}")))?,
        }),
        _ => Err(ProtoError::new(format!("unknown reply: {text:?}"))),
    }
}

// ---------------------------------------------------------------------------
// ReplServer: one listener per registered node
// ---------------------------------------------------------------------------

/// A loopback listener serving one [`ReplNode`]'s replication
/// endpoint: each connection is a loop of (envelope in, reply out).
pub struct ReplServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ReplServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ReplServer {
    /// Bind an ephemeral loopback port and serve `node`'s replication
    /// endpoint on it.
    pub fn spawn(node: Arc<ReplNode>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("ctxpref-repl-accept-{}", node.id()))
                .spawn(move || repl_accept_loop(listener, node, shutdown))?
        };
        Ok(Self {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The endpoint's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. In-flight
    /// connections notice on their next read (the peer redials).
    pub fn shutdown(mut self) {
        self.begin_shutdown();
    }

    fn begin_shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplServer {
    fn drop(&mut self) {
        if !self.shutdown.load(Ordering::Acquire) {
            self.begin_shutdown();
        }
    }
}

fn repl_accept_loop(listener: TcpListener, node: Arc<ReplNode>, shutdown: Arc<AtomicBool>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        if hit(NET_ACCEPT).is_err() {
            continue;
        }
        let node = Arc::clone(&node);
        let shutdown = Arc::clone(&shutdown);
        let _ = std::thread::Builder::new()
            .name("ctxpref-repl-conn".to_string())
            .spawn(move || serve_repl_connection(stream, &node, &shutdown));
    }
}

fn serve_repl_connection(stream: TcpStream, node: &ReplNode, shutdown: &AtomicBool) {
    // A socket whose timeouts could not be set would hang this thread
    // forever on a stalled peer; refuse to serve it (the peer redials).
    if stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(10))))
        .and_then(|()| stream.set_nodelay(true))
        .is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    // The node's own environment and relation decode inbound profiles.
    let env = node.db().db().env().clone();
    let rel = node.db().db().relation().clone();
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            _ => return,
        };
        let reply = match decode_envelope(&payload, &env, &rel) {
            Ok(envelope) => node.handle(&envelope),
            Err(e) => Reply::Failed {
                reason: format!("undecodable envelope: {e}"),
            },
        };
        if write_frame(&mut writer, &encode_reply(&reply)).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

struct PeerEntry {
    addr: SocketAddr,
    server: ReplServer,
    /// One pooled connection per peer; sends to the same peer
    /// serialize on it (replication traffic is batchy, and one socket
    /// per link avoids burning an ephemeral port per send).
    conn: Arc<Mutex<Option<TcpStream>>>,
}

/// Socket-backed [`Transport`]: registered nodes get loopback
/// listeners, and sends dial the peer's endpoint over real TCP.
pub struct TcpTransport {
    rel: Relation,
    dial_timeout: Duration,
    peers: RwLock<HashMap<NodeId, PeerEntry>>,
    /// Severed links, smaller id first (mirrors the in-process set).
    partitions: Mutex<Vec<(NodeId, NodeId)>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peers", &self.peers.read().len())
            .finish()
    }
}

impl TcpTransport {
    /// A transport encoding outbound profiles against `rel` (clone it
    /// from the serving core: `db.relation()`). Inbound profiles are
    /// decoded by each receiving node against its own environment.
    pub fn new(rel: Relation) -> Self {
        Self {
            rel,
            dial_timeout: Duration::from_secs(1),
            peers: RwLock::new(HashMap::new()),
            partitions: Mutex::new(Vec::new()),
        }
    }

    /// The loopback address node `id` listens on, if registered.
    pub fn addr_of(&self, id: NodeId) -> Option<SocketAddr> {
        self.peers.read().get(&id).map(|p| p.addr)
    }

    fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        let link = (a.min(b), a.max(b));
        self.partitions.lock().contains(&link)
    }

    fn dial(&self, to: NodeId, addr: SocketAddr) -> Result<TcpStream, TransportError> {
        let stream = TcpStream::connect_timeout(&addr, self.dial_timeout).map_err(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                TransportError::Unreachable(to)
            } else {
                TransportError::Dropped
            }
        })?;
        // An unconfigurable socket is as useless as an unreachable
        // peer: without timeouts a send could block forever.
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(10))))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|_| TransportError::Dropped)?;
        Ok(stream)
    }

    /// Whether an exchange failure looks like a *stale pooled
    /// connection* (the peer restarted or reaped it between sends) as
    /// opposed to a genuine mid-flight failure. Only the former earns
    /// a silent redial — injected frame faults surface as
    /// `io::ErrorKind::Other` and must stay failures.
    fn is_stale_conn(e: &crate::error::FrameError) -> bool {
        use std::io::ErrorKind;
        match e {
            crate::error::FrameError::Io(io) => matches!(
                io.kind(),
                ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
            ),
            _ => false,
        }
    }

    /// One request/reply over the pooled connection: write the
    /// envelope frame, read the reply frame. Returns the reply, or
    /// whether the failure is retryable on a fresh connection.
    fn try_exchange(stream: &mut TcpStream, payload: &[u8]) -> Result<Reply, bool> {
        if let Err(e) = write_frame(stream, payload) {
            return Err(Self::is_stale_conn(&e));
        }
        match read_frame(stream) {
            Ok(Some(reply)) => decode_reply(&reply).map_err(|_| false),
            // Clean EOF: the peer closed the pooled connection while
            // it was parked — a fresh dial is the honest retry.
            Ok(None) => Err(true),
            Err(e) => Err(Self::is_stale_conn(&e)),
        }
    }

    /// One full exchange with node `to`: reuse the pooled connection,
    /// redialling once if it went stale. Any other socket or codec
    /// failure collapses to `Dropped`: on a real network that is all
    /// the sender learns. A refused dial is `Unreachable` — the
    /// endpoint is gone, not flaky.
    fn exchange(
        &self,
        to: NodeId,
        addr: SocketAddr,
        conn: &Mutex<Option<TcpStream>>,
        env: &Envelope,
    ) -> Result<Reply, TransportError> {
        let payload = encode_envelope(env, &self.rel).map_err(|_| TransportError::Dropped)?;
        let mut slot = conn.lock();
        let pooled = slot.is_some();
        if slot.is_none() {
            *slot = Some(self.dial(to, addr)?);
        }
        match Self::try_exchange(slot.as_mut().expect("connection present"), &payload) {
            Ok(reply) => Ok(reply),
            Err(retryable) => {
                *slot = None;
                if !(retryable && pooled) {
                    return Err(TransportError::Dropped);
                }
                let mut fresh = self.dial(to, addr)?;
                match Self::try_exchange(&mut fresh, &payload) {
                    Ok(reply) => {
                        *slot = Some(fresh);
                        Ok(reply)
                    }
                    Err(_) => Err(TransportError::Dropped),
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&self, to: NodeId, env: Envelope) -> Result<Reply, TransportError> {
        // Same gauntlet, same order as the in-process transport, so
        // chaos plans behave identically over sockets.
        if self.is_partitioned(env.from, to) || hit(REPL_PARTITION).is_err() {
            return Err(TransportError::Partitioned);
        }
        let drop_site = if env.msg.is_heartbeat() {
            REPL_HEARTBEAT_DROP
        } else {
            REPL_SEND_DROP
        };
        if hit(drop_site).is_err() {
            return Err(TransportError::Dropped);
        }
        let _ = hit(REPL_SEND_DELAY);
        // The socket-level site: the connection dies mid-exchange.
        if hit(NET_CONN_DROP).is_err() {
            return Err(TransportError::Dropped);
        }
        let (addr, conn) = self
            .peers
            .read()
            .get(&to)
            .map(|p| (p.addr, Arc::clone(&p.conn)))
            .ok_or(TransportError::Unreachable(to))?;
        let reply = self.exchange(to, addr, &conn, &env)?;
        if hit(REPL_SEND_DUPLICATE).is_err() {
            let _ = self.exchange(to, addr, &conn, &env);
        }
        Ok(reply)
    }
}

impl NodeTransport for TcpTransport {
    fn register(&self, node: Arc<ReplNode>) {
        let id = node.id();
        match ReplServer::spawn(node) {
            Ok(server) => {
                let entry = PeerEntry {
                    addr: server.addr(),
                    server,
                    conn: Arc::new(Mutex::new(None)),
                };
                // Replacing an entry drops (and shuts down) the old
                // listener — a restart gets a fresh port.
                self.peers.write().insert(id, entry);
            }
            Err(_) => {
                // Bind failure leaves the node unregistered; sends
                // fail Unreachable, which the cluster already handles
                // as a down node.
                self.peers.write().remove(&id);
            }
        }
    }

    fn deregister(&self, id: NodeId) {
        if let Some(entry) = self.peers.write().remove(&id) {
            entry.server.shutdown();
        }
    }

    fn is_registered(&self, id: NodeId) -> bool {
        self.peers.read().contains_key(&id)
    }

    fn partition(&self, a: NodeId, b: NodeId) {
        let link = (a.min(b), a.max(b));
        let mut parts = self.partitions.lock();
        if !parts.contains(&link) {
            parts.push(link);
        }
    }

    fn heal(&self, a: NodeId, b: NodeId) {
        let link = (a.min(b), a.max(b));
        self.partitions.lock().retain(|l| *l != link);
    }

    fn heal_all(&self) {
        self.partitions.lock().clear();
    }
}
