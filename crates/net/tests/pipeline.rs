//! Pipelining: many requests in flight on one connection, responses
//! completing **out of order** and matched back by request id.
//!
//! The out-of-order interleave is forced, not hoped for: a
//! deterministic fault plan (`delay_at`) stalls exactly the first
//! request's worker, so its response *must* arrive after its
//! successors'. The raw-socket test asserts the wire really does
//! reorder; the client test asserts `NetClient::pipeline` un-reorders
//! by id.

use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ctxpref_core::MultiUserDb;
use ctxpref_faults::sites::NET_CONN_DELAY;
use ctxpref_faults::FaultPlan;
use ctxpref_net::frame::{read_frame, write_frame};
use ctxpref_net::proto::{Request, Response};
use ctxpref_net::{
    decode_response, encode_request, NetClient, NetClientConfig, NetError, NetServer,
    NetServerConfig,
};
use ctxpref_service::{CtxPrefService, ServiceConfig};
use ctxpref_workload::reference::{poi_env, poi_relation};

/// Fault plans are process-global; serialize the tests that install
/// one so hit ordinals stay deterministic.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn plan_lock() -> MutexGuard<'static, ()> {
    PLAN_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn spawn_server() -> NetServer {
    let env = poi_env();
    let db = MultiUserDb::new(env.clone(), poi_relation(&env, 3, 1), 4);
    let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
    NetServer::bind(
        "127.0.0.1:0",
        service,
        NetServerConfig {
            workers: 4,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback")
}

#[test]
fn wire_responses_arrive_out_of_order_and_carry_their_ids() {
    let _guard = plan_lock();
    let server = spawn_server();

    // Stall exactly the first dispatched job: its response must then
    // trail every other in-flight response onto the wire.
    let plan = FaultPlan::builder(0)
        .delay_at(NET_CONN_DELAY, &[1], Duration::from_millis(400))
        .build();
    let _plan = ctxpref_faults::install(plan);

    let mut stream = TcpStream::connect(server.local_addr()).expect("dial");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let ids = [10u64, 11, 12, 13];
    for id in ids {
        write_frame(&mut stream, &encode_request(id, &Request::Ping)).expect("write frame");
    }

    let mut arrival = Vec::new();
    let started = Instant::now();
    for _ in 0..ids.len() {
        let payload = read_frame(&mut stream)
            .expect("read frame")
            .expect("a response frame");
        let wire = decode_response(&payload).expect("binary response");
        assert_eq!(wire.resp, Response::Pong, "id {}: wrong body", wire.id);
        arrival.push(wire.id);
    }

    let mut sorted = arrival.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, ids, "every request answered exactly once");
    assert_eq!(
        *arrival.last().expect("nonempty"),
        10,
        "the delayed first request must answer last — got arrival order {arrival:?}"
    );
    assert_ne!(
        arrival, ids,
        "responses arrived in request order; the pipeline never interleaved"
    );
    // The three undelayed responses must not have waited behind the
    // stalled one — that would be head-of-line blocking.
    assert!(
        started.elapsed() >= Duration::from_millis(300),
        "the delayed response cannot beat its own stall"
    );
    drop(stream);
    server.shutdown();
}

#[test]
fn pipeline_client_reorders_responses_back_to_request_order() {
    let _guard = plan_lock();
    let server = spawn_server();
    let mut client =
        NetClient::connect(server.local_addr().to_string(), NetClientConfig::default());
    client.add_user("alice").expect("add user");

    // Install *after* the setup mutation so hit #1 is the first
    // pipelined job.
    let plan = FaultPlan::builder(0)
        .delay_at(NET_CONN_DELAY, &[1], Duration::from_millis(300))
        .build();
    let _plan = ctxpref_faults::install(plan);

    let reqs = vec![
        Request::Query {
            user: "alice".to_string(),
            attr: "name".to_string(),
            k: 3,
            deadline_ms: 1000,
            state: vec![
                "Plaka".to_string(),
                "warm".to_string(),
                "friends".to_string(),
            ],
        },
        Request::Ping,
        Request::Stats,
        Request::Ping,
    ];
    let resps = client.pipeline(&reqs).expect("pipelined burst");
    assert_eq!(resps.len(), reqs.len());
    // Position 0 was delayed on the server — it still comes back
    // first, matched by id, not by arrival.
    assert!(
        matches!(&resps[0], Response::Answer(_)),
        "slot 0 must hold the query's answer, got {:?}",
        resps[0]
    );
    assert_eq!(resps[1], Response::Pong);
    assert!(
        matches!(&resps[2], Response::Text { .. }),
        "slot 2 must hold the stats text, got {:?}",
        resps[2]
    );
    assert_eq!(resps[3], Response::Pong);
    server.shutdown();
}

#[test]
fn batched_mutations_travel_as_one_frame_and_answer_per_item() {
    let _guard = plan_lock();
    let server = spawn_server();
    let mut client =
        NetClient::connect(server.local_addr().to_string(), NetClientConfig::default());

    let responses = client
        .batch(vec![
            Request::AddUser {
                user: "bob".to_string(),
            },
            Request::InsertPref {
                user: "bob".to_string(),
                descriptor: "accompanying_people = friends".to_string(),
                attr: "type".to_string(),
                value: "museum".to_string(),
                score: 0.8,
            },
            Request::Ping,
        ])
        .expect("batch");
    assert_eq!(
        responses,
        vec![Response::Ok, Response::Ok, Response::Pong],
        "every item answered in order"
    );

    // The bulk-insert convenience verb reports how many applied.
    let applied = client
        .insert_preferences(
            "bob",
            &[
                ("temperature = good", "type", "open-air", 0.9),
                ("accompanying_people = family", "type", "museum", 0.7),
            ],
        )
        .expect("bulk insert");
    assert_eq!(applied, 2);

    // A failing item stops the batch: the applied prefix stays, the
    // failure surfaces typed.
    let err = client
        .insert_preferences(
            "no-such-user",
            &[("temperature = good", "type", "zoo", 0.5)],
        )
        .expect_err("unknown user must fail");
    assert!(
        matches!(err, NetError::Remote { .. }),
        "expected a typed remote failure, got {err:?}"
    );
    server.shutdown();
}

#[test]
fn nested_batches_are_refused_typed() {
    let _guard = plan_lock();
    let server = spawn_server();
    let mut client =
        NetClient::connect(server.local_addr().to_string(), NetClientConfig::default());
    let nested = Request::Batch {
        requests: vec![Request::Batch {
            requests: vec![Request::Ping],
        }],
    };
    match client.request(&nested) {
        Err(NetError::Remote { kind, .. }) => assert_eq!(kind, "proto"),
        other => panic!("nested batch must be refused typed, got {other:?}"),
    }
    // The refusal did not poison the connection's protocol state.
    client.ping().expect("connection still serviceable");
    server.shutdown();
}
