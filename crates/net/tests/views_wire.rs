//! End-to-end top-k pushdown and observability over the wire: the
//! `topk` verb must answer row-identically to `query`, materialized
//! views must actually serve repeat requests, and the `stats` /
//! `views-status` verbs must surface the qcache and view catalog
//! counters (the regression test for cache observability — an
//! invalidation caused by a remote mutation must be visible in the
//! stats body).

use std::sync::Arc;
use std::time::Duration;

use ctxpref_core::MultiUserDb;
use ctxpref_net::{NetClient, NetClientConfig, NetServer, NetServerConfig};
use ctxpref_service::{CtxPrefService, ServiceConfig};
use ctxpref_workload::reference::{poi_env, poi_relation};

const DEADLINE: Duration = Duration::from_secs(5);
const STATE: [&str; 3] = ["Plaka", "warm", "friends"];

fn spawn_server() -> NetServer {
    let env = poi_env();
    let db = MultiUserDb::new(env.clone(), poi_relation(&env, 2007, 5), 8);
    let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
    NetServer::bind("127.0.0.1:0", service, NetServerConfig::default()).expect("bind loopback")
}

fn client(server: &NetServer) -> NetClient {
    NetClient::connect(server.local_addr().to_string(), NetClientConfig::default())
}

/// Pull the integer following `label` out of a stats line like
/// `views: 3 materialized, 1 pinned, …` (number *before* the label).
fn counter(body: &str, line_prefix: &str, label: &str) -> u64 {
    let line = body
        .lines()
        .find(|l| l.trim_start().starts_with(line_prefix))
        .unwrap_or_else(|| panic!("no {line_prefix:?} line in stats body:\n{body}"));
    let head = line
        .split(label)
        .next()
        .unwrap_or_else(|| panic!("no {label:?} in {line:?}"));
    head.trim_end()
        .rsplit(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no number before {label:?} in {line:?}"))
}

#[test]
fn topk_answers_row_identically_and_counters_surface_in_stats() {
    let server = spawn_server();
    let mut c = client(&server);

    c.add_user("viewer").expect("add user");
    for (desc, value, score) in [
        ("accompanying_people = friends", "museum", 0.9),
        ("accompanying_people = friends", "club", 0.7),
        ("location = Plaka", "cafeteria", 0.8),
        ("temperature = warm", "zoo", 0.6),
    ] {
        c.insert_preference("viewer", desc, "type", value, score)
            .expect("insert pref");
    }

    // Reference rows from the full query path.
    let full = c
        .query("viewer", "name", 5, DEADLINE, &STATE)
        .expect("query");
    assert!(!full.rows.is_empty(), "the demo profile must match rows");

    // Drive the same (user, state) through the top-k verb until the
    // view materializes and serves; every answer must be
    // row-identical to the full path.
    let mut view_served = false;
    for _ in 0..6 {
        let topk = c
            .query_topk("viewer", "name", 5, DEADLINE, &STATE)
            .expect("topk");
        assert_eq!(
            topk.rows, full.rows,
            "top-k pushdown must answer row-identically to query"
        );
        assert!(
            !topk.is_degraded(),
            "a view answer is not a degraded answer (step {})",
            topk.step
        );
        view_served |= topk.step == "view";
    }
    assert!(view_served, "repeat top-k requests must hit the view path");

    // A mutation invalidates the qcache and patches/rebuilds views;
    // both must be visible through the stats verb.
    c.insert_preference(
        "viewer",
        "accompanying_people = friends",
        "type",
        "theater",
        0.95,
    )
    .expect("mutating insert");

    let body = c.stats().expect("stats");
    assert!(
        counter(&body, "cache:", "invalidations") >= 1,
        "the mutation's cache invalidation must surface in stats:\n{body}"
    );
    assert!(
        counter(&body, "views:", "materialized") >= 1,
        "the materialized view must surface in stats:\n{body}"
    );
    assert!(
        counter(&body, "views:", "hits") >= 1,
        "view hits must surface in stats:\n{body}"
    );
    assert!(
        counter(&body, "served:", "view") >= 1,
        "the ladder's view rung must surface in stats:\n{body}"
    );

    // The view answer after the mutation reflects the new preference
    // and still matches the full path bit-for-bit.
    let full = c
        .query("viewer", "name", 5, DEADLINE, &STATE)
        .expect("query after mutation");
    let topk = c
        .query_topk("viewer", "name", 5, DEADLINE, &STATE)
        .expect("topk after mutation");
    assert_eq!(topk.rows, full.rows, "stale view served after mutation");

    // views-status renders the catalog.
    let status = c.views_status().expect("views-status");
    assert!(
        status.contains("views materialized="),
        "unexpected views-status body:\n{status}"
    );

    drop(c);
    server.shutdown();
}
