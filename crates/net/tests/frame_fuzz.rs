//! Frame-decoder fuzz: a recorded request stream is truncated at
//! every byte offset and corrupted one flipped byte at a time, and the
//! decoder must answer every mutation with a clean typed error —
//! never a panic, and never an allocation sized by attacker-supplied
//! bytes.
//!
//! The allocation claim is enforced, not assumed: the test binary
//! installs a counting global allocator, and the hostile-header cases
//! assert that decoding allocated nothing anywhere near the declared
//! (multi-gigabyte) length.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ctxpref_net::frame::{encode_frame, read_frame, FRAME_HEADER, MAX_FRAME_PAYLOAD};
use ctxpref_net::proto::{AnswerRow, MigrateAction, RemoteAnswer, Request, Response, WireFallback};
use ctxpref_net::{decode_request, decode_response, encode_request, encode_response, FrameError};

// ---------------------------------------------------------------------------
// A counting allocator: thread-local arming, so parallel tests in this
// binary don't see each other's allocations.
// ---------------------------------------------------------------------------

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static LARGEST: Cell<usize> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // Const-initialized TLS: no lazy allocation, safe to touch here.
        let _ = ARMED.try_with(|armed| {
            if armed.get() {
                let _ = LARGEST.try_with(|l| l.set(l.get().max(layout.size())));
            }
        });
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Largest single allocation made by `f` on this thread.
fn largest_alloc_during(f: impl FnOnce()) -> usize {
    LARGEST.with(|l| l.set(0));
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    LARGEST.with(|l| l.get())
}

// ---------------------------------------------------------------------------
// The recorded request stream
// ---------------------------------------------------------------------------

/// One of every request shape, with awkward field contents (spaces,
/// newlines, empty strings) so the token escaping is in the stream.
fn recorded_requests() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Query {
            user: "alice".into(),
            attr: "name".into(),
            k: 5,
            deadline_ms: 250,
            state: vec!["Plaka".into(), "warm".into(), "friends".into()],
        },
        Request::TopK {
            user: "alice".into(),
            attr: "name".into(),
            k: 3,
            deadline_ms: 100,
            state: vec!["Plaka".into(), "warm".into(), "friends".into()],
        },
        Request::ViewsStatus,
        Request::QueryDescriptor {
            user: "bob with spaces".into(),
            attr: "type".into(),
            k: 3,
            descriptor: "location = Athens and temperature = good".into(),
        },
        Request::AddUser {
            user: "new\nline".into(),
        },
        Request::RemoveUser { user: "".into() },
        Request::InsertPref {
            user: "alice".into(),
            descriptor: "accompanying_people = friends".into(),
            attr: "type".into(),
            value: "museum".into(),
            score: 0.825,
        },
        Request::RemovePref {
            user: "alice".into(),
            index: 3,
        },
        Request::UpdateScore {
            user: "alice".into(),
            index: 0,
            score: 0.5,
        },
        Request::Checkpoint,
        Request::FlushWal,
        Request::WalStatus,
        Request::ReplStatus,
        Request::Scrub,
        Request::ScrubStatus,
        Request::Stats,
    ]
}

fn recorded_stream() -> Vec<u8> {
    let mut stream = Vec::new();
    for req in recorded_requests() {
        stream.extend_from_slice(&encode_frame(&req.encode()).expect("encodable request"));
    }
    stream
}

/// Drain `bytes` as a frame stream: decode frames (and their payloads
/// as requests) until end-of-stream or the first typed error. Returns
/// frames decoded. Panics only if a layer below panics — which is
/// exactly what the fuzz asserts never happens.
fn drain(bytes: &[u8]) -> (usize, Option<FrameError>) {
    let mut cur = bytes;
    let mut frames = 0;
    loop {
        match read_frame(&mut cur) {
            Ok(Some(payload)) => {
                frames += 1;
                // Whatever survived the checksum must decode or fail
                // typed at the protocol layer — both are fine; a panic
                // is not.
                let _ = Request::decode(&payload);
                let _ = Response::decode(&payload);
            }
            Ok(None) => return (frames, None),
            Err(e) => return (frames, Some(e)),
        }
    }
}

#[test]
fn truncation_at_every_offset_fails_clean() {
    let stream = recorded_stream();
    let total = recorded_requests().len();
    for cut in 0..stream.len() {
        let (frames, err) = drain(&stream[..cut]);
        assert!(
            frames < total,
            "cut at {cut}/{} decoded all {total} frames from a truncated stream",
            stream.len()
        );
        // A cut at a frame boundary is a clean end of stream; anywhere
        // else it must surface as Truncated — never Io, never a panic.
        if let Some(e) = err {
            assert!(
                matches!(e, FrameError::Truncated),
                "cut at {cut}: expected Truncated, got {e:?}"
            );
        }
    }
    // The untouched stream decodes fully.
    let (frames, err) = drain(&stream);
    assert_eq!(frames, total);
    assert!(err.is_none());
}

#[test]
fn flipped_bytes_fail_clean_at_every_offset() {
    let stream = recorded_stream();
    for i in 0..stream.len() {
        for bit in [0x01u8, 0x40, 0x80] {
            let mut bad = stream.clone();
            bad[i] ^= bit;
            // Every outcome is acceptable except a panic or an
            // attacker-sized allocation: a flip may truncate the tail
            // (length field), fail a checksum, claim an oversized
            // frame, or corrupt only the *content* of a token in ways
            // the protocol layer tolerates (it still sees valid
            // tokens). The frame layer's integrity promise is that
            // nothing blows up.
            let largest = largest_alloc_during(|| {
                let _ = drain(&bad);
            });
            // A flipped length byte may declare a frame far bigger
            // than the stream; the decoder must size its buffer by
            // bytes received, not bytes declared. 2× covers Vec
            // growth slack.
            assert!(
                largest <= 2 * stream.len() + 1024,
                "flip {bit:#04x} at {i}: allocation of {largest} bytes while decoding a \
                 {}-byte corrupted stream",
                stream.len()
            );
        }
    }
}

#[test]
fn oversized_claims_are_rejected_without_allocating() {
    // Hostile headers claiming up to u32::MAX bytes. The decoder must
    // reject on the declared length alone, allocating nothing bigger
    // than bookkeeping.
    for declared in [
        u64::from(MAX_FRAME_PAYLOAD) + 1,
        u64::from(MAX_FRAME_PAYLOAD) * 2,
        u64::from(u32::MAX),
    ] {
        let mut hostile = Vec::with_capacity(FRAME_HEADER);
        hostile.extend_from_slice(&(declared as u32).to_le_bytes());
        hostile.extend_from_slice(&0xdead_beef_u64.to_le_bytes());
        let largest = largest_alloc_during(|| {
            let mut cur = &hostile[..];
            match read_frame(&mut cur) {
                Err(FrameError::Oversized { declared: d, max }) => {
                    assert_eq!(d, declared);
                    assert_eq!(max, MAX_FRAME_PAYLOAD);
                }
                other => panic!("declared {declared}: expected Oversized, got {other:?}"),
            }
        });
        assert!(
            largest < 4096,
            "declared {declared}: rejected, but allocated {largest} bytes on the way"
        );
    }
}

#[test]
fn legitimate_max_frame_still_decodes() {
    // The cap is a ceiling, not a budget cut: a frame exactly at
    // MAX_FRAME_PAYLOAD round-trips.
    let payload = vec![0x5a_u8; MAX_FRAME_PAYLOAD as usize];
    let frame = encode_frame(&payload).expect("max-size payload encodes");
    let mut cur = &frame[..];
    let back = read_frame(&mut cur).expect("decodes").expect("one frame");
    assert_eq!(back.len(), payload.len());
    assert!(read_frame(&mut cur).expect("clean end").is_none());
}

// ---------------------------------------------------------------------------
// ctxpref2 binary-codec fuzz: the same discipline — truncation at
// every offset, flipped bytes, hostile length claims — applied to the
// varint codec, with the counting allocator proving the "no
// attacker-sized allocation" claim rather than assuming it.
// ---------------------------------------------------------------------------

/// Representative binary request payloads: every structural shape the
/// codec has (strings, varints, f64s, byte vectors, nested pairs, a
/// batch of sub-requests).
fn binary_request_corpus() -> Vec<Vec<u8>> {
    let requests = vec![
        Request::Ping,
        Request::Query {
            user: "alice".into(),
            attr: "name".into(),
            k: 5,
            deadline_ms: 250,
            state: vec!["Plaka".into(), "warm".into(), "friends".into()],
        },
        Request::TopK {
            user: "alice".into(),
            attr: "name".into(),
            k: 3,
            deadline_ms: 100,
            state: vec!["Plaka".into(), "warm".into(), "friends".into()],
        },
        Request::ViewsStatus,
        Request::InsertPref {
            user: "bob with spaces".into(),
            descriptor: "accompanying_people = friends".into(),
            attr: "type".into(),
            value: "museum".into(),
            score: 0.825,
        },
        Request::MigrateUser {
            user: "u".into(),
            epoch: 9,
            action: MigrateAction::Apply {
                through: 99,
                records: vec![(18, b"score user 0 0.5".to_vec()), (21, vec![0, 255, 7])],
            },
        },
        Request::Batch {
            requests: vec![
                Request::AddUser { user: "a".into() },
                Request::UpdateScore {
                    user: "a".into(),
                    index: 2,
                    score: 0.125,
                },
                Request::Ping,
            ],
        },
    ];
    requests
        .into_iter()
        .enumerate()
        .map(|(i, r)| encode_request(i as u64 + 1, &r))
        .collect()
}

/// Representative binary response payloads.
fn binary_response_corpus() -> Vec<Vec<u8>> {
    let responses = vec![
        Response::Answer(RemoteAnswer {
            step: "nearest-state".into(),
            elapsed_us: 1234,
            resolved_state: Some("(Athens, warm, all)".into()),
            fallbacks: vec![WireFallback {
                step: "exact".into(),
                reason: "panic: injected".into(),
            }],
            rows: vec![AnswerRow {
                name: "Acropolis Museum".into(),
                score: 0.9,
            }],
        }),
        Response::Records {
            through: 40,
            records: vec![(39, b"ins me pref".to_vec()), (40, vec![255])],
        },
        Response::Batch {
            responses: vec![
                Response::Ok,
                Response::Err {
                    kind: "core".into(),
                    message: "nope".into(),
                },
            ],
        },
        Response::Text {
            body: "appends 12\nshard 0: done\n".into(),
        },
    ];
    responses
        .into_iter()
        .map(|r| encode_response(7, &r))
        .collect()
}

#[test]
fn binary_truncation_at_every_offset_fails_typed() {
    for payload in binary_request_corpus() {
        // The untouched payload decodes.
        decode_request(&payload).expect("intact payload decodes");
        for cut in 0..payload.len() {
            let largest = largest_alloc_during(|| {
                decode_request(&payload[..cut])
                    .expect_err("every proper prefix must fail to decode");
            });
            assert!(
                largest <= 2 * payload.len() + 1024,
                "cut at {cut}: allocated {largest} bytes decoding a truncated payload"
            );
        }
    }
    for payload in binary_response_corpus() {
        decode_response(&payload).expect("intact payload decodes");
        for cut in 0..payload.len() {
            let largest = largest_alloc_during(|| {
                decode_response(&payload[..cut])
                    .expect_err("every proper prefix must fail to decode");
            });
            assert!(
                largest <= 2 * payload.len() + 1024,
                "cut at {cut}: allocated {largest} bytes decoding a truncated payload"
            );
        }
    }
}

#[test]
fn binary_flipped_bytes_never_panic_or_overallocate() {
    for payload in binary_request_corpus()
        .into_iter()
        .chain(binary_response_corpus())
    {
        for i in 0..payload.len() {
            for bit in [0x01u8, 0x40, 0x80] {
                let mut bad = payload.clone();
                bad[i] ^= bit;
                // A flip may produce a different valid message, a typed
                // error, or (first byte) demote the payload out of the
                // binary dialect entirely. It must never panic and
                // never allocate by a corrupted length claim.
                let largest = largest_alloc_during(|| {
                    let _ = decode_request(&bad);
                    let _ = decode_response(&bad);
                });
                assert!(
                    largest <= 2 * payload.len() + 1024,
                    "flip {bit:#04x} at {i}: allocated {largest} bytes \
                     decoding a {}-byte corrupted payload",
                    payload.len()
                );
            }
        }
    }
}

#[test]
fn binary_hostile_length_claim_rejected_before_allocation() {
    // A hand-built AddUser whose user-string length claims 2^40 bytes.
    // Tag 4 = add-user in the frozen ctxpref2 vocabulary; the varint
    // [0x80 ×5, 0x20] encodes 1 << 40.
    let mut hostile = vec![0xC2, 0x02, 4, 1];
    hostile.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x20]);
    let largest = largest_alloc_during(|| {
        decode_request(&hostile).expect_err("terabyte string claim must fail typed");
    });
    assert!(
        largest < 4096,
        "hostile length claim rejected, but allocated {largest} bytes on the way"
    );

    // Same discipline for a hostile element *count*: a batch claiming
    // 2^40 sub-requests (tag 16) in a 10-byte payload.
    let mut hostile = vec![0xC2, 0x02, 16, 1];
    hostile.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x20]);
    let largest = largest_alloc_during(|| {
        decode_request(&hostile).expect_err("terabyte batch claim must fail typed");
    });
    assert!(
        largest < 4096,
        "hostile count claim rejected, but allocated {largest} bytes on the way"
    );

    // And for the top-k verb (tag 19): user "a", attr "n", k 1,
    // deadline 1, then a state-value count claiming 2^40 strings.
    let mut hostile = vec![0xC2, 0x02, 19, 1];
    hostile.extend_from_slice(&[1, b'a', 1, b'n', 1, 1]);
    hostile.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x20]);
    let largest = largest_alloc_during(|| {
        decode_request(&hostile).expect_err("terabyte state-count claim must fail typed");
    });
    assert!(
        largest < 4096,
        "hostile top-k state count rejected, but allocated {largest} bytes on the way"
    );
}

#[test]
fn garbage_prefixes_never_panic() {
    // Raw garbage (not derived from a valid stream): every prefix of
    // a pseudo-random byte soup must fail typed.
    let mut soup = Vec::with_capacity(4096);
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    for _ in 0..4096 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        soup.push(x as u8);
    }
    for len in 0..soup.len().min(512) {
        let _ = drain(&soup[..len]);
    }
    let _ = drain(&soup);
}
