//! The replication chaos matrix over **real loopback sockets**: the
//! same three-node cluster, the same seeded violence, the same
//! invariants as `ctxpref-replication`'s chaos suite — but every
//! envelope crosses a TCP connection through `TcpTransport` instead
//! of a function call, with socket-level faults (torn frames, dead
//! connections) layered on top of the replication-level ones.
//!
//! Invariants (unchanged from the in-process suite):
//!
//! 1. **Zero acked-write loss** (quorum seeds).
//! 2. **Epoch-monotonic promotions** (all seeds).
//! 3. **Digest convergence** after healing (all seeds).
//! 4. **Liveness**: the healed cluster accepts and replicates a fresh
//!    write.
//!
//! Override the matrix with `CTXPREF_FUZZ_SEEDS=start..end`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use ctxpref_context::ContextDescriptor;
use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_faults::sites::{
    NET_CONN_DROP, NET_FRAME_READ, NET_FRAME_WRITE, REPL_HEARTBEAT_DROP, REPL_PARTITION,
    REPL_SEND_DELAY, REPL_SEND_DROP, REPL_SEND_DUPLICATE,
};
use ctxpref_faults::FaultPlan;
use ctxpref_net::TcpTransport;
use ctxpref_profile::{AttributeClause, ContextualPreference};
use ctxpref_replication::{
    node_digests, AckMode, Cluster, ClusterConfig, NodeTransport, ReplicationError,
};
use ctxpref_storage::pref_tokens;
use ctxpref_wal::{tiny_env, tiny_relation, SyncPolicy, WalOp, WalOptions};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Fault plans are process-global: serialize every test that installs
/// one (or sends through a transport while another's plan is in).
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-tcp-chaos-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const NODES: usize = 3;
const SHARDS: usize = 4;

fn make_core() -> Arc<ShardedMultiUserDb> {
    Arc::new(ShardedMultiUserDb::new(
        tiny_env(),
        tiny_relation(),
        2,
        SHARDS,
    ))
}

fn make_transport() -> Arc<dyn NodeTransport> {
    Arc::new(TcpTransport::new(tiny_relation()))
}

fn config_for_seed(seed: u64) -> ClusterConfig {
    ClusterConfig {
        nodes: NODES,
        shards: SHARDS,
        ack_mode: if seed.is_multiple_of(2) {
            AckMode::Quorum
        } else {
            AckMode::Async
        },
        wal: WalOptions {
            sync: if (seed / 2).is_multiple_of(2) {
                SyncPolicy::PerRecord
            } else {
                SyncPolicy::GroupCommit {
                    flush_interval: Duration::from_millis(5),
                }
            },
            segment_max_bytes: 512,
        },
        batch_max: 16,
        heartbeat_threshold: 2,
        auto_failover: true,
    }
}

/// Monotone-effect workload: users and clause values are globally
/// unique and never removed, so "this acked op's effect is visible"
/// is a well-defined final-state predicate even across failovers.
struct MonotoneWorkload {
    rng: StdRng,
    users: Vec<String>,
    next_user: u64,
    next_value: u64,
}

impl MonotoneWorkload {
    fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0x7c9_0ff5),
            users: Vec::new(),
            next_user: 0,
            next_value: 0,
        }
    }

    fn next_op(&mut self) -> WalOp {
        let roll = self.rng.random_range(0..100u32);
        if self.users.is_empty() || roll < 20 {
            let user = format!("u{}", self.next_user);
            self.next_user += 1;
            self.users.push(user.clone());
            WalOp::AddUser { user }
        } else {
            let user = self.users[self.rng.random_range(0..self.users.len())].clone();
            let rel = tiny_relation();
            let attr = rel.schema().require_attr("name").unwrap();
            let value = format!("v{}", self.next_value);
            self.next_value += 1;
            let score = self.rng.random_range(0..=1000) as f64 / 1000.0;
            let pref = ContextualPreference::new(
                ContextDescriptor::empty(),
                AttributeClause::eq(attr, value.into()),
                score,
            )
            .unwrap();
            WalOp::InsertPreference { user, pref }
        }
    }
}

fn effect_visible(db: &MultiUserDb, op: &WalOp) -> bool {
    match op {
        WalOp::AddUser { user } => db.profile(user).is_ok(),
        WalOp::InsertPreference { user, pref } => {
            let Ok(profile) = db.profile(user) else {
                return false;
            };
            let want = pref_tokens(pref, db.env(), db.relation());
            profile
                .preferences()
                .iter()
                .any(|p| pref_tokens(p, db.env(), db.relation()) == want)
        }
        _ => unreachable!("monotone workload only adds"),
    }
}

/// One chaos seed over loopback TCP: boot, rampage, heal, assert.
fn run_tcp_chaos_seed(seed: u64) -> Result<(), String> {
    let ctx = |what: &str| format!("seed={seed}: {what}");
    let tmp = TempDir::new(&format!("seed{seed}"));
    let cfg = config_for_seed(seed);
    let quorum = cfg.ack_mode == AckMode::Quorum;
    let cluster = Arc::new(
        Cluster::new_with_transport(&tmp.0, cfg, make_core, make_transport())
            .map_err(|e| ctx(&format!("boot: {e}")))?,
    );

    // A reader thread races queries against every live node while
    // mutations, partitions, and crashes fly over the sockets.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for id in 0..NODES {
                    if let Some(db) = cluster.db_of(id) {
                        let users = db.db().users_sorted();
                        for user in users.iter().take(3) {
                            let _ = db.db().profile(user);
                        }
                        reads += 1;
                    }
                }
                std::thread::yield_now();
            }
            reads
        })
    };

    // Replication-level faults at the in-process suite's rates, plus
    // socket-level ones: torn frames and dead connections.
    let plan = FaultPlan::builder(seed)
        .fail(REPL_SEND_DROP, 0.05)
        .fail(REPL_HEARTBEAT_DROP, 0.05)
        .fail(REPL_SEND_DUPLICATE, 0.10)
        .fail(REPL_PARTITION, 0.02)
        .delay(REPL_SEND_DELAY, 0.05, Duration::from_micros(50))
        .fail(NET_FRAME_READ, 0.01)
        .fail(NET_FRAME_WRITE, 0.01)
        .fail(NET_CONN_DROP, 0.02)
        .build();
    let guard = ctxpref_faults::install(Arc::clone(&plan));

    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_cafe);
    let mut workload = MonotoneWorkload::new(seed);
    let mut acked: Vec<WalOp> = Vec::new();
    let mut crashed: Vec<usize> = Vec::new();

    for i in 0..80 {
        let op = workload.next_op();
        match cluster.write(&op) {
            Ok(_) => acked.push(op),
            // Applied on the primary, never acknowledged: allowed to
            // survive, not required to.
            Err(ReplicationError::QuorumFailed { .. }) => {}
            Err(_) => {}
        }
        if i % 3 == 0 {
            cluster.tick();
        }
        // Scripted violence, seeded per iteration.
        let roll = rng.random_range(0..1000u32);
        if roll < 30 {
            let a = rng.random_range(0..NODES);
            let b = rng.random_range(0..NODES);
            if a != b {
                cluster.partition(a, b);
            }
        } else if roll < 55 {
            cluster.heal_all();
        } else if roll < 70 && crashed.is_empty() {
            // At most one node down at a time keeps a majority alive.
            cluster.crash_primary();
            let down: Vec<usize> = (0..NODES)
                .filter(|&id| cluster.node(id).is_none())
                .collect();
            crashed = down;
        } else if roll < 90 && crashed.is_empty() {
            let id = rng.random_range(0..NODES);
            if cluster.node(id).is_some() && cluster.primary() != Some(id) {
                cluster.crash_node(id);
                crashed.push(id);
            }
        } else if roll < 130 {
            if let Some(id) = crashed.pop() {
                if cluster.restart_node(id).is_err() {
                    crashed.push(id);
                }
            }
        } else if roll < 160 {
            // Checkpoint the primary so lagging cursors fall off the
            // live log and shipping must take the snapshot path (a
            // full snapshot install over the wire).
            if let Some(db) = cluster.primary_db() {
                let _ = db.checkpoint();
            }
        }
    }

    // The storm passes: faults off, links healed, everyone restarts.
    drop(guard);
    cluster.heal_all();
    for id in 0..NODES {
        if cluster.node(id).is_none() {
            cluster
                .restart_node(id)
                .map_err(|e| ctx(&format!("restart node {id}: {e}")))?;
        }
    }
    let mut settled = false;
    for _ in 0..100 {
        cluster.tick();
        let status = cluster.status();
        if status.primary.is_some() && status.max_lag == 0 {
            settled = true;
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    let reads = reader.join().expect("reader thread");
    if reads == 0 {
        return Err(ctx("the reader thread never completed a read"));
    }
    if !settled {
        return Err(ctx(&format!(
            "LIVENESS: cluster never settled after healing: {:?}",
            cluster.status()
        )));
    }
    for _ in 0..10 {
        if cluster.anti_entropy().is_ok() {
            break;
        }
        cluster.tick();
    }
    let _ = cluster.pump();

    // 1. Zero acked-write loss (the quorum guarantee) — over sockets.
    if quorum {
        let final_db = cluster
            .primary_db()
            .ok_or_else(|| ctx("no primary after settling"))?;
        let snapshot = final_db.db().snapshot();
        for (i, op) in acked.iter().enumerate() {
            if !effect_visible(&snapshot, op) {
                return Err(ctx(&format!(
                    "LOST ACKED WRITE: acked op #{i} {op:?} is missing from the \
                     final primary"
                )));
            }
        }
    }

    // 2. Promotions carry strictly ascending epochs.
    let status = cluster.status();
    for pair in status.promotions.windows(2) {
        if pair[1].0 <= pair[0].0 {
            return Err(ctx(&format!(
                "EPOCH REGRESSION: promotion history {:?} is not strictly ascending",
                status.promotions
            )));
        }
    }

    // 3. Anti-entropy converged: every node holds identical digests.
    let reference = node_digests(&cluster.db_of(0).expect("node 0 is live"));
    for id in 1..NODES {
        let theirs = node_digests(&cluster.db_of(id).expect("node is live"));
        if theirs != reference {
            return Err(ctx(&format!(
                "DIGEST DIVERGENCE after healing: node 0 {reference:?} vs node {id} \
                 {theirs:?} (status {:?})",
                cluster.status()
            )));
        }
    }

    // 4. The healed cluster still takes and replicates writes.
    cluster
        .write(&WalOp::AddUser {
            user: "post-chaos-probe".into(),
        })
        .map_err(|e| ctx(&format!("healed cluster refused a write: {e}")))?;
    let _ = cluster.pump();
    for id in 0..NODES {
        let db = cluster.db_of(id).expect("node is live");
        if !db
            .db()
            .users_sorted()
            .contains(&"post-chaos-probe".to_string())
        {
            return Err(ctx(&format!("probe write did not replicate to node {id}")));
        }
    }
    Ok(())
}

/// The matrix: `CTXPREF_FUZZ_SEEDS=a..b` overrides the default 0..32.
fn seed_range() -> std::ops::Range<u64> {
    let Ok(spec) = std::env::var("CTXPREF_FUZZ_SEEDS") else {
        return 0..32;
    };
    let parse = |s: &str| s.trim().parse::<u64>().ok();
    match spec.split_once("..").map(|(a, b)| (parse(a), parse(b))) {
        Some((Some(a), Some(b))) if a < b => a..b,
        _ => panic!("CTXPREF_FUZZ_SEEDS must look like '0..32', got {spec:?}"),
    }
}

#[test]
fn tcp_replication_chaos_matrix() {
    let _serial = fault_lock();
    for seed in seed_range() {
        if let Err(violation) = run_tcp_chaos_seed(seed) {
            panic!(
                "TCP REPLICATION VIOLATION (reproduce with CTXPREF_FUZZ_SEEDS={seed}..{}):\n\
                 {violation}",
                seed + 1
            );
        }
    }
}

/// Deterministic sanity check without any injected faults: a cluster
/// over loopback sockets replicates writes, survives a primary crash
/// with failover, and converges — the basic lifecycle every chaos
/// seed exercises at random, pinned down as a fast test.
#[test]
fn tcp_cluster_replicates_and_fails_over() {
    let _serial = fault_lock();
    let tmp = TempDir::new("basic");
    let mut cfg = ClusterConfig::new(NODES);
    cfg.shards = SHARDS;
    cfg.heartbeat_threshold = 2;
    let cluster = Cluster::new_with_transport(&tmp.0, cfg, make_core, make_transport()).unwrap();

    cluster
        .write(&WalOp::AddUser {
            user: "alice".into(),
        })
        .unwrap();
    cluster.pump().unwrap();
    for id in 0..NODES {
        assert!(
            cluster
                .db_of(id)
                .unwrap()
                .db()
                .users_sorted()
                .contains(&"alice".to_string()),
            "alice did not replicate to node {id} over TCP"
        );
    }

    // Kill the primary: heartbeats over the sockets stop answering,
    // the failure detector notices, a replica is promoted.
    cluster.crash_primary();
    let mut promoted = None;
    for _ in 0..10 {
        if let Some(p) = cluster.tick().promoted {
            promoted = Some(p);
            break;
        }
    }
    let (epoch, new_primary) = promoted.expect("auto-failover never promoted over TCP");
    assert!(epoch > 1);

    cluster
        .write(&WalOp::AddUser { user: "bob".into() })
        .unwrap();
    cluster.restart_node(0).unwrap();
    cluster.pump().unwrap();
    assert_eq!(cluster.primary(), Some(new_primary));
    assert_eq!(
        node_digests(&cluster.db_of(0).unwrap()),
        node_digests(&cluster.db_of(new_primary).unwrap()),
        "restarted node did not converge over TCP"
    );
}
