//! The self-healing verbs over the wire: a remote `scrub` verifies a
//! durable service's files at rest, quarantines and heals real damage,
//! and `scrub-status` exposes the counters — while a non-durable
//! service refuses both with the typed `not-durable` error.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ctxpref_core::MultiUserDb;
use ctxpref_net::{NetClient, NetClientConfig, NetError, NetServer, NetServerConfig, Response};
use ctxpref_service::{CtxPrefService, DurabilityConfig, ServiceConfig, SyncPolicy};
use ctxpref_workload::reference::{poi_env, poi_relation};

/// A fresh directory under the system temp dir; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-net-scrub-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study_db() -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 2);
    MultiUserDb::new(env, rel, 8)
}

fn small_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        shards: 4,
        ..ServiceConfig::default()
    }
}

/// The oldest (sealed) segment of any shard holding at least two.
fn a_sealed_segment(dir: &std::path::Path) -> PathBuf {
    for entry in std::fs::read_dir(dir).unwrap() {
        let shard_dir = entry.unwrap().path();
        if !shard_dir.is_dir()
            || !shard_dir
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("shard-"))
        {
            continue;
        }
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&shard_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "wal"))
            .collect();
        if segs.len() >= 2 {
            segs.sort();
            return segs.remove(0);
        }
    }
    panic!("no shard sealed a segment; grow the workload");
}

#[test]
fn remote_scrub_quarantines_heals_and_counts() {
    let tmp = TempDir::new("heal");
    let dcfg = DurabilityConfig {
        sync: SyncPolicy::PerRecord,
        segment_max_bytes: 256,
        checkpoint_interval: None,
        scrub_interval: None,
        ..DurabilityConfig::new(&tmp.0)
    };
    let service = CtxPrefService::new_durable(study_db(), small_cfg(), dcfg).unwrap();
    let server = NetServer::bind("127.0.0.1:0", Arc::new(service), NetServerConfig::default())
        .expect("bind loopback");
    let mut client =
        NetClient::connect(server.local_addr().to_string(), NetClientConfig::default());

    for i in 0..40 {
        let user = format!("user-{i:03}");
        client.add_user(&user).unwrap();
        client
            .insert_preference(
                &user,
                "accompanying_people = friends",
                "type",
                "museum",
                0.8,
            )
            .unwrap();
    }

    // A clean pass over the wire: sealed segments verified, nothing
    // quarantined.
    let clean = client.scrub().expect("remote scrub");
    let Response::ScrubReport {
        segments_verified,
        quarantined,
        healed,
        ..
    } = clean
    else {
        panic!("scrub answered {clean:?}");
    };
    assert!(segments_verified > 0, "workload sealed no segments");
    assert_eq!(quarantined, 0);
    assert!(!healed, "nothing to heal on a clean pass");

    // Rot one sealed segment at rest; the next remote pass quarantines
    // and heals it, and the counters flow through scrub-status.
    let victim = a_sealed_segment(&tmp.0);
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[30] ^= 0x40;
    std::fs::write(&victim, bytes).unwrap();

    let report = client.scrub().expect("remote scrub after damage");
    assert!(
        matches!(
            report,
            Response::ScrubReport {
                quarantined: 1,
                healed: true,
                ..
            }
        ),
        "damage pass answered {report:?}"
    );
    let status = client.scrub_status().expect("remote scrub-status");
    assert!(
        matches!(
            status,
            Response::ScrubInfo {
                passes: 2,
                quarantined: 1,
                heals: 1,
                ..
            }
        ),
        "scrub-status answered {status:?}"
    );

    // The healed service keeps serving over the same connection.
    let answer = client
        .query(
            "user-000",
            "name",
            3,
            Duration::from_millis(250),
            &["Plaka", "warm", "friends"],
        )
        .expect("query after heal");
    assert!(!answer.rows.is_empty());
    server.shutdown();
}

#[test]
fn non_durable_service_refuses_scrub_verbs_typed() {
    let service = CtxPrefService::new(study_db(), small_cfg());
    let server = NetServer::bind("127.0.0.1:0", Arc::new(service), NetServerConfig::default())
        .expect("bind loopback");
    let mut client =
        NetClient::connect(server.local_addr().to_string(), NetClientConfig::default());
    for result in [client.scrub(), client.scrub_status()] {
        match result {
            Err(NetError::Remote { kind, .. }) => assert_eq!(kind, "not-durable"),
            other => panic!("expected a typed not-durable refusal, got {other:?}"),
        }
    }
    server.shutdown();
}
