//! End-to-end budget propagation: the budget in the wire envelope —
//! not the (larger) deadline inside the request payload — is what the
//! server enforces, and a client whose budget is already gone fails
//! typed without touching the wire.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use ctxpref_core::MultiUserDb;
use ctxpref_faults::{sites, FaultPlan};
use ctxpref_net::{
    NetClient, NetClientConfig, NetError, NetServer, NetServerConfig, Priority, Request, Response,
};
use ctxpref_service::{CtxPrefService, ServiceConfig};
use ctxpref_wal::{tiny_env, tiny_relation};

/// Fault plans are process-global: serialize tests that install one.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn query_request(deadline_ms: u64) -> Request {
    Request::Query {
        user: "alice".to_string(),
        attr: "name".to_string(),
        k: 3,
        deadline_ms,
        state: vec!["low".to_string()],
    }
}

#[test]
fn server_enforces_the_enveloped_budget_not_the_payload_deadline() {
    let _serial = fault_lock();
    let db = MultiUserDb::new(tiny_env(), tiny_relation(), 4);
    let service = Arc::new(CtxPrefService::new(
        db,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    ));
    let server = NetServer::bind(
        "127.0.0.1:0",
        service,
        NetServerConfig {
            max_deadline: Duration::from_secs(2),
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client =
        NetClient::connect(server.local_addr().to_string(), NetClientConfig::default());
    client.add_user("alice").expect("seed user");
    client
        .insert_preference("alice", "*", "name", "alpha", 0.8)
        .expect("seed preference");

    // Control: with a generous budget the same query answers — so the
    // failure below is attributable to the budget, not the query.
    match client.request_enveloped(
        &query_request(1500),
        Some(Duration::from_secs(2)),
        Priority::Interactive,
    ) {
        Ok(Response::Answer(_)) => {}
        other => panic!("healthy query should answer: {other:?}"),
    }

    // Stall the worker pool well past the enveloped budget. The
    // payload still asks for 1.5 s — a server honoring the payload
    // deadline instead of the (hop-decremented) envelope budget would
    // keep the caller waiting right up to it.
    let _stalled = ctxpref_faults::install(
        FaultPlan::builder(23)
            .delay(sites::SVC_WORKER_DEQUEUE, 1.0, Duration::from_millis(400))
            .build(),
    );
    let started = Instant::now();
    let result = client.request_enveloped(
        &query_request(1500),
        Some(Duration::from_millis(100)),
        Priority::Interactive,
    );
    let elapsed = started.elapsed();
    match result {
        Err(NetError::Remote { kind, .. }) => assert_eq!(
            kind, "deadline",
            "budget expiry surfaces as the typed deadline error"
        ),
        other => panic!("expected a remote deadline error, got {other:?}"),
    }
    // The server clamped to the ~100 ms envelope budget: the answer
    // came back long before the 1.5 s payload deadline (and before the
    // 400 ms stall released the worker).
    assert!(
        elapsed < Duration::from_millis(1000),
        "took {elapsed:?} — the payload deadline governed, not the budget"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn exhausted_budget_fails_typed_without_a_wire_attempt() {
    let db = MultiUserDb::new(tiny_env(), tiny_relation(), 4);
    let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
    let server =
        NetServer::bind("127.0.0.1:0", service, NetServerConfig::default()).expect("bind loopback");
    let mut client =
        NetClient::connect(server.local_addr().to_string(), NetClientConfig::default());
    match client.request_enveloped(&query_request(100), Some(Duration::ZERO), Priority::Bulk) {
        Err(NetError::BudgetExhausted { .. }) => {}
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    drop(client);
    server.shutdown();
}
