//! Backpressure regression: with the connection limit saturated, a
//! new client gets a typed `ServerBusy` — immediately, not after a
//! hang — and draining one connection admits the next waiter.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_core::MultiUserDb;
use ctxpref_net::{NetClient, NetClientConfig, NetError, NetServer, NetServerConfig};
use ctxpref_service::{CtxPrefService, ServiceConfig};
use ctxpref_workload::reference::{poi_env, poi_relation};

fn tiny_server(max_connections: usize) -> NetServer {
    let env = poi_env();
    let db = MultiUserDb::new(env.clone(), poi_relation(&env, 3, 1), 4);
    let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
    NetServer::bind(
        "127.0.0.1:0",
        service,
        NetServerConfig {
            max_connections,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn client_for(server: &NetServer) -> NetClient {
    NetClient::connect(
        server.local_addr().to_string(),
        NetClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            ..NetClientConfig::default()
        },
    )
}

#[test]
fn saturated_server_rejects_with_typed_busy_then_admits_after_drain() {
    let server = tiny_server(2);

    // Two clients ping and then *hold* their connections (NetClient
    // keeps the socket open between requests).
    let mut holder_a = client_for(&server);
    let mut holder_b = client_for(&server);
    holder_a.ping().expect("first connection admitted");
    holder_b.ping().expect("second connection admitted");

    // The third connection must be turned away with a typed error —
    // promptly, not by hanging until a socket timeout.
    let mut waiter = client_for(&server);
    let started = Instant::now();
    match waiter.ping() {
        Err(NetError::ServerBusy { limit, retry_after }) => {
            assert_eq!(limit, 2);
            // The refusal carries the server's cooperative hint, so a
            // shed caller knows when trying again is worthwhile.
            assert!(
                retry_after > Duration::ZERO,
                "connection-admission busy should carry a retry hint"
            );
        }
        other => panic!("expected ServerBusy, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "busy rejection took {:?} — that is a hang, not backpressure",
        started.elapsed()
    );

    // Busy is retried only under its own small cap (the server stayed
    // saturated, so the budget drained) and then surfaced typed — the
    // caller still gets the decision, just after a short, bounded
    // grace period.

    // Drain one holder; its server thread notices the close and frees
    // a slot. The waiter then gets in (allow a short window for the
    // server to reap the closed connection).
    drop(holder_a);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match waiter.ping() {
            Ok(()) => break,
            Err(NetError::ServerBusy { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("waiter not admitted after drain: {e:?}"),
        }
    }

    // The admitted waiter is a full citizen: real requests work.
    waiter.add_user("carol").expect("waiter can mutate");
    drop(holder_b);
    drop(waiter);
    server.shutdown();
}

#[test]
fn busy_response_does_not_poison_the_client() {
    // After a Busy rejection the client reconnects cleanly on the
    // next call once capacity exists.
    let server = tiny_server(1);

    let mut holder = client_for(&server);
    holder.ping().expect("holder admitted");

    let mut waiter = client_for(&server);
    assert!(matches!(
        waiter.ping(),
        Err(NetError::ServerBusy { limit: 1, .. })
    ));

    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match waiter.ping() {
            Ok(()) => break,
            Err(NetError::ServerBusy { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("client poisoned by busy rejection: {e:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_reports_connections_that_did_not_drain() {
    let env = poi_env();
    let db = MultiUserDb::new(env.clone(), poi_relation(&env, 3, 1), 4);
    let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
    let server = NetServer::bind(
        "127.0.0.1:0",
        service,
        NetServerConfig {
            max_connections: 4,
            drain_timeout: Duration::from_millis(300),
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut holder = client_for(&server);
    holder.ping().expect("admitted");
    // The holder never closes; shutdown's drain window expires and the
    // count comes back instead of shutdown hanging forever.
    let undrained = server.shutdown();
    assert!(undrained <= 1, "at most the one holder: {undrained}");
    drop(holder);
}
