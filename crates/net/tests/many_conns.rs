//! Scale check: the event-driven server sustains **ten thousand
//! concurrent connections** on one reactor thread — every one
//! admitted, served, and held open at once — and still answers new
//! requests promptly while saturated.
//!
//! This binary is its own harness (`harness = false` in Cargo.toml):
//! the process fd limit (20k here) cannot hold the server's 10k
//! accepted sockets *and* 10k client sockets, so the test re-execs
//! itself as child processes that each hold a slice of the
//! connections. Children pace themselves naturally: each connection
//! is pinged before the next is opened, so a child never outruns the
//! server's accept loop by more than one pending connection.
//!
//! Knobs: `CTXPREF_MANY_CONNS` (total connections, default 10400),
//! `CTXPREF_MANY_CONNS_CHILDREN` (child processes, default 4).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_core::MultiUserDb;
use ctxpref_net::frame::{read_frame, write_frame};
use ctxpref_net::proto::Response;
use ctxpref_net::{
    decode_response, encode_request, NetClient, NetClientConfig, NetServer, NetServerConfig,
    Request,
};
use ctxpref_service::{CtxPrefService, ServiceConfig};
use ctxpref_workload::reference::{poi_env, poi_relation};

const CHILD_ENV: &str = "CTXPREF_MANY_CONNS_CHILD";

fn main() {
    if let Ok(spec) = std::env::var(CHILD_ENV) {
        child(&spec);
        return;
    }
    parent();
    println!("many_conns: ok");
}

/// Child mode: `<addr> <count>` — open and hold `count` pinged
/// connections, report, then hold until the parent closes stdin.
fn child(spec: &str) {
    let (addr, count) = spec.split_once(' ').expect("spec is `<addr> <count>`");
    let count: usize = count.parse().expect("count");
    let mut held = Vec::with_capacity(count);
    for i in 0..count {
        let stream = connect_with_retry(addr);
        ping(&stream, i as u64 + 1);
        held.push(stream);
    }
    println!("held {count}");
    std::io::stdout().flush().expect("report to parent");
    // Hold every socket open until the parent closes our stdin.
    let mut sink = String::new();
    let _ = std::io::stdin().read_to_string(&mut sink);
    drop(held);
}

fn connect_with_retry(addr: &str) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                return s;
            }
            Err(e) if Instant::now() < deadline => {
                // Transient refusal under the connect burst (backlog
                // full, ephemeral port pressure): back off and retry.
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("connect to {addr} failed past the deadline: {e}"),
        }
    }
}

fn ping(mut stream: &TcpStream, id: u64) {
    write_frame(&mut stream, &encode_request(id, &Request::Ping)).expect("write ping");
    let payload = read_frame(&mut stream)
        .expect("read pong frame")
        .expect("a pong frame");
    let wire = decode_response(&payload).expect("binary pong");
    assert_eq!(wire.id, id);
    assert_eq!(wire.resp, Response::Pong);
}

fn parent() {
    let total: usize = std::env::var("CTXPREF_MANY_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_400);
    let children: usize = std::env::var("CTXPREF_MANY_CONNS_CHILDREN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);
    let per_child = total.div_ceil(children);

    let env = poi_env();
    let db = MultiUserDb::new(env.clone(), poi_relation(&env, 3, 1), 4);
    let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
    let server = NetServer::bind(
        "127.0.0.1:0",
        service,
        NetServerConfig {
            max_connections: total + 256,
            // Idle is the *point* here — don't reap held connections.
            read_timeout: Duration::from_secs(600),
            workers: 2,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let exe = std::env::current_exe().expect("own path");
    let started = Instant::now();
    let mut procs: Vec<Child> = (0..children)
        .map(|_| {
            Command::new(&exe)
                .env(CHILD_ENV, format!("{addr} {per_child}"))
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn connection-holder child")
        })
        .collect();

    // Every child reports once all its connections are open and pinged.
    let mut held_total = 0usize;
    let mut readers: Vec<BufReader<std::process::ChildStdout>> = procs
        .iter_mut()
        .map(|p| BufReader::new(p.stdout.take().expect("child stdout")))
        .collect();
    for reader in &mut readers {
        let mut line = String::new();
        reader.read_line(&mut line).expect("child report");
        let held: usize = line
            .trim()
            .strip_prefix("held ")
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unexpected child report: {line:?}"));
        held_total += held;
    }

    assert!(
        held_total >= 10_000,
        "only {held_total} connections held — the scale claim needs ≥10k"
    );
    assert!(
        server.active_connections() >= 10_000,
        "server gauge says {} active while children hold {held_total}",
        server.active_connections()
    );
    let stats = server.net_stats();
    assert!(
        stats.accepted as usize >= held_total,
        "accepted {} < held {held_total}",
        stats.accepted
    );
    assert_eq!(
        stats.refused_busy, 0,
        "no connection should have been refused below the limit"
    );
    eprintln!(
        "many_conns: {held_total} connections held after {:?} ({} accepted)",
        started.elapsed(),
        stats.accepted
    );

    // Saturated but not starved: a fresh client still gets served
    // promptly.
    let mut probe = NetClient::connect(addr, NetClientConfig::default());
    let t = Instant::now();
    probe.ping().expect("ping through a 10k-connection server");
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "ping under load took {:?}",
        t.elapsed()
    );

    // Release the children (closing stdin is the signal), then wait.
    for p in &mut procs {
        drop(p.stdin.take());
    }
    for mut p in procs {
        let status = p.wait().expect("child exit");
        assert!(status.success(), "child failed: {status:?}");
    }
    server.shutdown();
}
