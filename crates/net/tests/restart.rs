//! Reconnect regression: a client survives a full server restart.
//!
//! The client caches one TCP connection between requests. When the
//! server behind it goes away entirely — graceful shutdown, then a
//! fresh process binding the same address — the cached connection is
//! dead, and the next idempotent request must transparently redial and
//! succeed rather than surfacing the stale socket's error.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_core::MultiUserDb;
use ctxpref_net::{NetClient, NetClientConfig, NetServer, NetServerConfig};
use ctxpref_service::{CtxPrefService, ServiceConfig};
use ctxpref_workload::reference::{poi_env, poi_relation};

fn fresh_service() -> Arc<CtxPrefService> {
    let env = poi_env();
    let db = MultiUserDb::new(env.clone(), poi_relation(&env, 7, 2), 8);
    Arc::new(CtxPrefService::new(db, ServiceConfig::default()))
}

/// Bind `addr`, retrying briefly: the previous listener's accepted
/// connections may hold the port in TIME_WAIT for a moment after
/// shutdown, and the retry mirrors what a restarting process does.
fn bind_with_retry(addr: SocketAddr, service: Arc<CtxPrefService>) -> NetServer {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match NetServer::bind(addr, Arc::clone(&service), NetServerConfig::default()) {
            Ok(server) => return server,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("could not rebind {addr} after restart: {e}"),
        }
    }
}

#[test]
fn client_reconnects_across_server_restart() {
    let first = NetServer::bind("127.0.0.1:0", fresh_service(), NetServerConfig::default())
        .expect("bind loopback");
    let addr = first.local_addr();

    let mut client = NetClient::connect(addr.to_string(), NetClientConfig::default());
    client.add_user("alice").expect("create alice on first run");
    client
        .insert_preference(
            "alice",
            "accompanying_people = friends",
            "type",
            "museum",
            0.8,
        )
        .expect("insert preference");
    let before = client
        .query(
            "alice",
            "name",
            3,
            Duration::from_millis(250),
            &["Plaka", "warm", "friends"],
        )
        .expect("query against the first server");
    assert!(!before.rows.is_empty());

    // Full restart: the old server drains and closes; a new one takes
    // over the same address with a fresh (empty) service.
    first.shutdown();
    let second = bind_with_retry(addr, fresh_service());

    // The client still holds the dead connection from the first
    // server. The query is idempotent, so the request loop drops the
    // stale socket, redials, and the *same* client object succeeds
    // against the restarted server without any explicit reset.
    let deadline = Instant::now() + Duration::from_secs(5);
    let after = loop {
        match client.query(
            "alice",
            "name",
            3,
            Duration::from_millis(250),
            &["Plaka", "warm", "friends"],
        ) {
            Ok(a) => break a,
            // The fresh service has no users yet: that error proves the
            // reconnect worked (the answer came from the new server).
            Err(ctxpref_net::NetError::Remote { kind, .. }) if kind == "core" => {
                client.add_user("alice").expect("recreate alice");
                continue;
            }
            Err(_e) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("client never recovered across the restart: {e:?}"),
        }
    };
    // The answer came from the restarted server over a fresh dial of
    // the same client object — reconnect across restart worked.
    assert!(!after.step.is_empty());

    second.shutdown();
}
