//! Wire compatibility: a `ctxpref1`-era client — text payloads, one
//! request at a time, responses expected **in order** — must keep
//! working against the event-driven server unchanged. The server
//! sniffs the dialect from the first payload byte and pins the
//! connection to the text protocol's serial, in-order promise.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use ctxpref_core::MultiUserDb;
use ctxpref_net::frame::{read_frame, write_frame};
use ctxpref_net::proto::{Request, Response};
use ctxpref_net::{NetServer, NetServerConfig};
use ctxpref_service::{CtxPrefService, ServiceConfig};
use ctxpref_workload::reference::{poi_env, poi_relation};

fn spawn_server() -> NetServer {
    let env = poi_env();
    let db = MultiUserDb::new(env.clone(), poi_relation(&env, 3, 1), 4);
    let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
    NetServer::bind("127.0.0.1:0", service, NetServerConfig::default()).expect("bind loopback")
}

/// A minimal `ctxpref1` client: text-encoded requests over raw frames,
/// one in flight, responses read in order. This is byte-for-byte what
/// the pre-pipelining client put on the wire.
fn text_call(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.encode()).expect("write text frame");
    let payload = read_frame(stream)
        .expect("read frame")
        .expect("a response frame");
    Response::decode(&payload).expect("text response")
}

#[test]
fn a_ctxpref1_text_client_still_talks_to_the_new_server() {
    let server = spawn_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("dial");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");

    assert_eq!(text_call(&mut stream, &Request::Ping), Response::Pong);
    assert_eq!(
        text_call(
            &mut stream,
            &Request::AddUser {
                user: "legacy".to_string()
            }
        ),
        Response::Ok
    );
    assert_eq!(
        text_call(
            &mut stream,
            &Request::InsertPref {
                user: "legacy".to_string(),
                descriptor: "accompanying_people = friends".to_string(),
                attr: "type".to_string(),
                value: "museum".to_string(),
                score: 0.8,
            }
        ),
        Response::Ok
    );
    match text_call(
        &mut stream,
        &Request::Query {
            user: "legacy".to_string(),
            attr: "name".to_string(),
            k: 3,
            deadline_ms: 1000,
            state: vec![
                "Plaka".to_string(),
                "warm".to_string(),
                "friends".to_string(),
            ],
        },
    ) {
        Response::Answer(_) => {}
        other => panic!("legacy query must answer, got {other:?}"),
    }
    // Typed errors survive the dialect too.
    match text_call(
        &mut stream,
        &Request::RemoveUser {
            user: "ghost".to_string(),
        },
    ) {
        Response::Err { .. } => {}
        other => panic!("expected a typed error, got {other:?}"),
    }
    drop(stream);
    server.shutdown();
}

#[test]
fn text_requests_written_back_to_back_answer_in_order() {
    // The text dialect has no request ids: its one ordering guarantee
    // is in-order responses. A client that writes several frames
    // before reading (a buffering proxy would) must still see answers
    // in request order, even though the server behind is pipelined.
    let server = spawn_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("dial");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");

    let reqs = [
        Request::AddUser {
            user: "serial".to_string(),
        },
        Request::Ping,
        Request::Stats,
        Request::Ping,
    ];
    for req in &reqs {
        write_frame(&mut stream, &req.encode()).expect("write text frame");
    }
    let mut resps = Vec::new();
    for _ in 0..reqs.len() {
        let payload = read_frame(&mut stream)
            .expect("read frame")
            .expect("a response frame");
        resps.push(Response::decode(&payload).expect("text response"));
    }
    assert_eq!(resps[0], Response::Ok, "add-user answers first");
    assert_eq!(resps[1], Response::Pong);
    assert!(
        matches!(resps[2], Response::Text { .. }),
        "stats answers third, got {:?}",
        resps[2]
    );
    assert_eq!(resps[3], Response::Pong);
    drop(stream);
    server.shutdown();
}

#[test]
fn a_malformed_text_payload_gets_a_typed_refusal_not_a_hang() {
    let server = spawn_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("dial");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");

    write_frame(&mut stream, b"ctxpref1 frobnicate the database").expect("write garbage");
    let payload = read_frame(&mut stream)
        .expect("read frame")
        .expect("a response frame");
    match Response::decode(&payload).expect("text response") {
        Response::Err { kind, .. } => assert_eq!(kind, "proto"),
        other => panic!("expected a typed proto error, got {other:?}"),
    }
    drop(stream);
    server.shutdown();
}
