//! Parser robustness: arbitrary inputs never panic, and structured
//! descriptors round-trip through a canonical textual rendering.

use ctxpref_context::{
    parse_descriptor, parse_extended_descriptor, ContextDescriptor, ContextEnvironment, ParamId,
    ParameterDescriptor,
};
use ctxpref_hierarchy::{Hierarchy, HierarchyBuilder};
use proptest::prelude::*;

fn env() -> ContextEnvironment {
    let mut loc = HierarchyBuilder::new("location", &["Region", "City"]);
    loc.add("City", "Athens", None).unwrap();
    loc.add("City", "Ioannina", None).unwrap();
    loc.add_leaves("Athens", &["Plaka", "Kifisia"]).unwrap();
    loc.add_leaves("Ioannina", &["Perama"]).unwrap();
    ContextEnvironment::new(vec![
        loc.build().unwrap(),
        Hierarchy::flat("weather", &["cold", "mild", "warm", "hot"]).unwrap(),
        Hierarchy::flat("company", &["friends", "family", "alone"]).unwrap(),
    ])
    .unwrap()
}

/// Render a descriptor in the parser's own surface syntax.
fn render(env: &ContextEnvironment, cod: &ContextDescriptor) -> String {
    if cod.is_empty() {
        return "*".to_string();
    }
    let mut parts = Vec::new();
    for (p, pd) in cod.clauses() {
        let h = env.hierarchy(p);
        let part = match pd {
            ParameterDescriptor::Eq(v) => format!("{} = {}", h.name(), h.value_name(*v)),
            ParameterDescriptor::In(vs) => format!(
                "{} in {{{}}}",
                h.name(),
                vs.iter()
                    .map(|v| h.value_name(*v))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            ParameterDescriptor::Range(a, b) => {
                format!(
                    "{} in [{}, {}]",
                    h.name(),
                    h.value_name(*a),
                    h.value_name(*b)
                )
            }
        };
        parts.push(part);
    }
    parts.join(" and ")
}

/// Random structured descriptors over `env()`.
fn descriptor_strategy() -> impl Strategy<Value = ContextDescriptor> {
    let clause = |p: usize, values: usize| {
        prop_oneof![
            (0..values).prop_map(move |v| (p, 0usize, vec![v])),
            proptest::collection::vec(0..values, 1..4).prop_map(move |vs| (p, 1, vs)),
            ((0..values), (0..values)).prop_map(move |(a, b)| (p, 2, vec![a, b])),
        ]
    };
    (
        proptest::option::of(clause(0, 3)), // location regions
        proptest::option::of(clause(1, 4)), // weather
        proptest::option::of(clause(2, 3)), // company
    )
        .prop_map(|(a, b, c)| {
            let env = env();
            let mut cod = ContextDescriptor::empty();
            for spec in [a, b, c].into_iter().flatten() {
                let (p, kind, idx) = spec;
                let p = ParamId(p as u16);
                let h = env.hierarchy(p);
                let dom = h.domain(h.detailed_level());
                let vals: Vec<_> = idx.iter().map(|&i| dom[i % dom.len()]).collect();
                let pd = match kind {
                    0 => ParameterDescriptor::Eq(vals[0]),
                    1 => ParameterDescriptor::In(vals),
                    _ => {
                        let (mut a, mut b) = (vals[0], vals[1]);
                        if h.pos_in_level(a) > h.pos_in_level(b) {
                            std::mem::swap(&mut a, &mut b);
                        }
                        ParameterDescriptor::Range(a, b)
                    }
                };
                cod = cod.with(p, pd);
            }
            cod
        })
}

proptest! {
    /// Arbitrary garbage never panics the parser.
    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let env = env();
        let _ = parse_descriptor(&env, &input);
        let _ = parse_extended_descriptor(&env, &input);
    }

    /// Garbage made of plausible tokens never panics either (and
    /// exercises deeper parse paths than pure noise).
    #[test]
    fn tokeny_garbage_never_panics(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("location"), Just("weather"), Just("and"), Just("or"),
                Just("in"), Just("="), Just("{"), Just("}"), Just("["),
                Just("]"), Just(","), Just("("), Just(")"), Just("*"),
                Just("Plaka"), Just("warm"), Just("'"), Just("∧"), Just("∨"),
            ],
            0..16,
        )
    ) {
        let env = env();
        let input = toks.join(" ");
        let _ = parse_extended_descriptor(&env, &input);
    }

    /// Structured → text → structured is the identity on the denoted
    /// context (state sets), and on the descriptor itself after `In`
    /// deduplication.
    #[test]
    fn descriptor_roundtrips_through_text(cod in descriptor_strategy()) {
        let env = env();
        let text = render(&env, &cod);
        let parsed = parse_descriptor(&env, &text)
            .unwrap_or_else(|e| panic!("rendering {text:?} failed to parse: {e}"));
        let s1 = cod.states(&env).unwrap();
        let s2 = parsed.states(&env).unwrap();
        prop_assert_eq!(s1, s2, "context changed through text {}", text);
    }

    /// Disjunctions of rendered descriptors round-trip state-wise too.
    #[test]
    fn extended_descriptor_roundtrips(
        a in descriptor_strategy(),
        b in descriptor_strategy(),
    ) {
        let env = env();
        let text = format!("({}) or ({})", render(&env, &a), render(&env, &b));
        // `*` inside parens is valid; skip renderings that collapse to it
        // only when both are empty (still parseable).
        let parsed = parse_extended_descriptor(&env, &text).unwrap();
        let direct = ctxpref_context::ExtendedContextDescriptor::new().or(a).or(b);
        let mut s1 = parsed.states(&env).unwrap();
        let mut s2 = direct.states(&env).unwrap();
        s1.sort();
        s2.sort();
        prop_assert_eq!(s1, s2);
    }
}
