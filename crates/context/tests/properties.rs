//! Property-based tests for the theorems of Section 4: Theorem 1 (the
//! `covers` relation is a partial order) and Properties 2–3 (both state
//! distances respect `covers`).

use ctxpref_context::{
    hierarchy_state_dist, jaccard_state_dist, ContextEnvironment, ContextState, CtxValue,
};
use ctxpref_hierarchy::{Hierarchy, ValueId};
use proptest::prelude::*;

fn env3() -> ContextEnvironment {
    ContextEnvironment::new(vec![
        Hierarchy::balanced("a", &[12, 4, 2]).unwrap(),
        Hierarchy::balanced("b", &[8, 2]).unwrap(),
        Hierarchy::balanced("c", &[5]).unwrap(),
    ])
    .unwrap()
}

/// A random extended state: for each parameter pick any value of its
/// extended domain.
fn state(env: &ContextEnvironment, picks: &[usize; 3]) -> ContextState {
    let values: Vec<CtxValue> = env
        .iter()
        .zip(picks)
        .map(|((_, h), &k)| ValueId((k % h.value_count()) as u32))
        .collect();
    ContextState::new(env, values).unwrap()
}

/// A random *detailed* state.
fn detailed(env: &ContextEnvironment, picks: &[usize; 3]) -> ContextState {
    let values: Vec<CtxValue> = env
        .iter()
        .zip(picks)
        .map(|((_, h), &k)| {
            let dom = h.domain(h.detailed_level());
            dom[k % dom.len()]
        })
        .collect();
    ContextState::new(env, values).unwrap()
}

/// The state obtained by lifting each value of `s` to a random
/// (possibly equal) ancestor level — covers `s` by construction.
fn lift(env: &ContextEnvironment, s: &ContextState, lifts: &[usize; 3]) -> ContextState {
    let values: Vec<CtxValue> = env
        .iter()
        .zip(s.values())
        .zip(lifts)
        .map(|(((_, h), &v), &up)| {
            let own = h.level_of(v).index();
            let span = h.level_count() - own;
            let target = own + (up % span);
            h.anc(v, ctxpref_hierarchy::LevelId(target as u8)).unwrap()
        })
        .collect();
    ContextState::new(env, values).unwrap()
}

proptest! {
    /// Theorem 1 — reflexivity.
    #[test]
    fn covers_is_reflexive(p in any::<[usize; 3]>()) {
        let env = env3();
        let s = state(&env, &p);
        prop_assert!(s.covers(&s, &env));
    }

    /// Theorem 1 — antisymmetry.
    #[test]
    fn covers_is_antisymmetric(p in any::<[usize; 3]>(), q in any::<[usize; 3]>()) {
        let env = env3();
        let s = state(&env, &p);
        let t = state(&env, &q);
        if s.covers(&t, &env) && t.covers(&s, &env) {
            prop_assert_eq!(s, t);
        }
    }

    /// Theorem 1 — transitivity, exercised on constructed chains
    /// (random pairs almost never relate).
    #[test]
    fn covers_is_transitive(p in any::<[usize; 3]>(), l1 in any::<[usize; 3]>(), l2 in any::<[usize; 3]>()) {
        let env = env3();
        let s1 = detailed(&env, &p);
        let s2 = lift(&env, &s1, &l1);
        let s3 = lift(&env, &s2, &l2);
        prop_assert!(s2.covers(&s1, &env));
        prop_assert!(s3.covers(&s2, &env));
        prop_assert!(s3.covers(&s1, &env));
    }

    /// Property 2: s3 covers s2 covers s1, s2 ≠ s3 ⇒
    /// dist_H(s3, s1) > dist_H(s2, s1).
    #[test]
    fn hierarchy_distance_strictly_grows(p in any::<[usize; 3]>(), l1 in any::<[usize; 3]>(), l2 in any::<[usize; 3]>()) {
        let env = env3();
        let s1 = detailed(&env, &p);
        let s2 = lift(&env, &s1, &l1);
        let s3 = lift(&env, &s2, &l2);
        if s2 != s3 {
            prop_assert!(
                hierarchy_state_dist(&env, &s3, &s1) > hierarchy_state_dist(&env, &s2, &s1)
            );
        }
    }

    /// Property 3 (weak form, as proved via Property 1): the Jaccard
    /// distance is non-decreasing along cover chains, and strictly
    /// greater when the lifted values gain descendants.
    #[test]
    fn jaccard_distance_monotone_on_chains(p in any::<[usize; 3]>(), l1 in any::<[usize; 3]>(), l2 in any::<[usize; 3]>()) {
        let env = env3();
        let s1 = detailed(&env, &p);
        let s2 = lift(&env, &s1, &l1);
        let s3 = lift(&env, &s2, &l2);
        let d2 = jaccard_state_dist(&env, &s2, &s1);
        let d3 = jaccard_state_dist(&env, &s3, &s1);
        prop_assert!(d3 + 1e-12 >= d2, "jaccard decreased along a cover chain: {d2} → {d3}");
    }

    /// A cover of a state never has a smaller hierarchy distance to a
    /// third detailed state than the state itself... not in general —
    /// but distances to *itself* behave: dist(s, s) = 0 for both.
    #[test]
    fn distances_vanish_on_identity(p in any::<[usize; 3]>()) {
        let env = env3();
        let s = state(&env, &p);
        prop_assert_eq!(hierarchy_state_dist(&env, &s, &s), 0);
        prop_assert_eq!(jaccard_state_dist(&env, &s, &s), 0.0);
    }

    /// Both distances are symmetric.
    #[test]
    fn distances_are_symmetric(p in any::<[usize; 3]>(), q in any::<[usize; 3]>()) {
        let env = env3();
        let s = state(&env, &p);
        let t = state(&env, &q);
        prop_assert_eq!(
            hierarchy_state_dist(&env, &s, &t),
            hierarchy_state_dist(&env, &t, &s)
        );
        let a = jaccard_state_dist(&env, &s, &t);
        let b = jaccard_state_dist(&env, &t, &s);
        prop_assert!((a - b).abs() < 1e-12);
    }

    /// The (all, …, all) state covers everything, and its hierarchy
    /// distance to a detailed state is the sum of hierarchy heights.
    #[test]
    fn all_state_is_top(p in any::<[usize; 3]>()) {
        let env = env3();
        let s = detailed(&env, &p);
        let all = ContextState::all(&env);
        prop_assert!(all.covers(&s, &env));
        let height: u32 = env.iter().map(|(_, h)| h.level_count() as u32 - 1).sum();
        prop_assert_eq!(hierarchy_state_dist(&env, &all, &s), height);
    }
}
