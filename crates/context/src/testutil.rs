//! Shared test fixtures: the paper's reference environment (Figure 2).

use ctxpref_hierarchy::{Hierarchy, HierarchyBuilder};

use crate::env::ContextEnvironment;

/// The reference environment of the paper (Figure 2):
///
/// * `location`: Region ≺ City ≺ Country ≺ ALL with the values of
///   Figure 1 (Plaka, Kifisia under Athens; Perama under Ioannina;
///   both cities under Greece),
/// * `temperature`: Conditions ≺ Characterization ≺ ALL with
///   freezing/cold under `bad` and mild/warm/hot under `good`,
/// * `accompanying_people`: Relationship ≺ ALL with friends, family,
///   alone.
pub(crate) fn reference_env() -> ContextEnvironment {
    let mut loc = HierarchyBuilder::new("location", &["Region", "City", "Country"]);
    loc.add("Country", "Greece", None).unwrap();
    loc.add("City", "Athens", Some("Greece")).unwrap();
    loc.add("City", "Ioannina", Some("Greece")).unwrap();
    loc.add_leaves("Athens", &["Plaka", "Kifisia"]).unwrap();
    loc.add_leaves("Ioannina", &["Perama"]).unwrap();

    let mut temp = HierarchyBuilder::new("temperature", &["Conditions", "Characterization"]);
    temp.add("Characterization", "bad", None).unwrap();
    temp.add("Characterization", "good", None).unwrap();
    temp.add_leaves("bad", &["freezing", "cold"]).unwrap();
    temp.add_leaves("good", &["mild", "warm", "hot"]).unwrap();

    let people = Hierarchy::flat("accompanying_people", &["friends", "family", "alone"]).unwrap();

    ContextEnvironment::new(vec![loc.build().unwrap(), temp.build().unwrap(), people]).unwrap()
}
