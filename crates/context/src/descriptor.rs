use std::collections::BTreeMap;
use std::fmt;

use ctxpref_hierarchy::Hierarchy;

use crate::env::{ContextEnvironment, ParamId};
use crate::error::ContextError;
use crate::state::{ContextState, CtxValue};

/// A context parameter descriptor `cod(Ci)` (Definition 1): a condition
/// a user states about one context parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ParameterDescriptor {
    /// `Ci = v`, `v ∈ edom(Ci)`.
    Eq(CtxValue),
    /// `Ci ∈ {v1, …, vm}`, each `vk ∈ edom(Ci)`.
    In(Vec<CtxValue>),
    /// `Ci ∈ [v1, vm]` — all values between `v1` and `vm` (inclusive) in
    /// the within-level order; both endpoints must live at the same
    /// level (domains are countable, so ranges expand to finite sets).
    Range(CtxValue, CtxValue),
}

impl ParameterDescriptor {
    /// `Context(c)` of Definition 2: the finite set of values the
    /// descriptor denotes, deduplicated, in first-mention order.
    pub fn values(&self, param: ParamId, h: &Hierarchy) -> Result<Vec<CtxValue>, ContextError> {
        let check = |v: CtxValue| -> Result<CtxValue, ContextError> {
            if v.index() >= h.value_count() {
                Err(ContextError::ForeignValue { param })
            } else {
                Ok(v)
            }
        };
        match self {
            Self::Eq(v) => Ok(vec![check(*v)?]),
            Self::In(vs) => {
                if vs.is_empty() {
                    return Err(ContextError::EmptyValueSet { param });
                }
                let mut out = Vec::with_capacity(vs.len());
                for &v in vs {
                    let v = check(v)?;
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
                Ok(out)
            }
            Self::Range(from, to) => {
                let (from, to) = (check(*from)?, check(*to)?);
                h.range_values(from, to)
                    .ok_or(ContextError::RangeLevelMismatch { param })
            }
        }
    }
}

/// A composite context descriptor (Definition 3): a conjunction of
/// parameter descriptors with at most one per parameter. Parameters
/// without a descriptor are implicitly `Ci = all`.
///
/// `Context(cod)` (Definition 4) — the set of states a descriptor
/// denotes — is computed by [`ContextDescriptor::states`] as the
/// Cartesian product of per-parameter value sets, `{all}` for absent
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContextDescriptor {
    clauses: BTreeMap<ParamId, ParameterDescriptor>,
}

impl ContextDescriptor {
    /// The empty descriptor, denoting the single state `(all, …, all)` —
    /// how non-contextual preferences are expressed (Section 4.2).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Add / replace the clause for one parameter (builder style).
    #[must_use]
    pub fn with(mut self, param: ParamId, pd: ParameterDescriptor) -> Self {
        self.clauses.insert(param, pd);
        self
    }

    /// Convenience: `param = value`, both resolved by name.
    pub fn with_eq(
        self,
        env: &ContextEnvironment,
        param: &str,
        value: &str,
    ) -> Result<Self, ContextError> {
        let p = env.require_param(param)?;
        let h = env.hierarchy(p);
        let v = h.lookup(value).ok_or_else(|| ContextError::UnknownValue {
            param: param.to_string(),
            value: value.to_string(),
        })?;
        Ok(self.with(p, ParameterDescriptor::Eq(v)))
    }

    /// Number of parameters with an explicit clause (`k` in Def. 4).
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// True iff no parameter is constrained.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The clause for one parameter, if present.
    pub fn clause(&self, param: ParamId) -> Option<&ParameterDescriptor> {
        self.clauses.get(&param)
    }

    /// Iterate over `(param, descriptor)` clauses in parameter order.
    pub fn clauses(&self) -> impl Iterator<Item = (ParamId, &ParameterDescriptor)> {
        self.clauses.iter().map(|(&p, pd)| (p, pd))
    }

    /// Per-parameter value sets: `Context(cod(Ci))` for constrained
    /// parameters, `{all}` otherwise. The Cartesian product of these is
    /// `Context(cod)`.
    pub fn value_sets(&self, env: &ContextEnvironment) -> Result<Vec<Vec<CtxValue>>, ContextError> {
        let mut sets = Vec::with_capacity(env.len());
        for (p, h) in env.iter() {
            match self.clauses.get(&p) {
                Some(pd) => sets.push(pd.values(p, h)?),
                None => sets.push(vec![h.all_value()]),
            }
        }
        Ok(sets)
    }

    /// Number of states the descriptor denotes, without materializing
    /// them.
    pub fn state_count(&self, env: &ContextEnvironment) -> Result<u128, ContextError> {
        Ok(self
            .value_sets(env)?
            .iter()
            .fold(1u128, |acc, s| acc.saturating_mul(s.len() as u128)))
    }

    /// `Context(cod)` of Definition 4: every state the descriptor
    /// denotes, as the Cartesian product of the per-parameter sets.
    pub fn states(&self, env: &ContextEnvironment) -> Result<Vec<ContextState>, ContextError> {
        let sets = self.value_sets(env)?;
        let total: usize = sets.iter().map(Vec::len).product();
        let mut out = Vec::with_capacity(total);
        let mut current = Vec::with_capacity(sets.len());
        cartesian(&sets, &mut current, &mut out);
        Ok(out)
    }

    /// Do the contexts of two descriptors share at least one state?
    /// Used by conflict detection (Definition 6 condition 1). Because
    /// `Context(cod)` is a Cartesian product of per-parameter sets, two
    /// contexts intersect iff every per-parameter pair of sets
    /// intersects — no state materialization needed.
    pub fn overlaps(
        &self,
        other: &ContextDescriptor,
        env: &ContextEnvironment,
    ) -> Result<bool, ContextError> {
        let a = self.value_sets(env)?;
        let b = other.value_sets(env)?;
        Ok(a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.iter().any(|v| y.contains(v))))
    }

    /// Render using value names, e.g.
    /// `(location = Plaka ∧ temperature ∈ {warm, hot})`.
    pub fn display<'a>(&'a self, env: &'a ContextEnvironment) -> impl fmt::Display + 'a {
        DescriptorDisplay { cod: self, env }
    }
}

fn cartesian(sets: &[Vec<CtxValue>], current: &mut Vec<CtxValue>, out: &mut Vec<ContextState>) {
    if current.len() == sets.len() {
        out.push(ContextState::from_values_unchecked(current.clone()));
        return;
    }
    for &v in &sets[current.len()] {
        current.push(v);
        cartesian(sets, current, out);
        current.pop();
    }
}

struct DescriptorDisplay<'a> {
    cod: &'a ContextDescriptor,
    env: &'a ContextEnvironment,
}

impl fmt::Display for DescriptorDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cod.is_empty() {
            return write!(f, "(true)");
        }
        write!(f, "(")?;
        for (i, (p, pd)) in self.cod.clauses().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            let h = self.env.hierarchy(p);
            match pd {
                ParameterDescriptor::Eq(v) => write!(f, "{} = {}", h.name(), h.value_name(*v))?,
                ParameterDescriptor::In(vs) => {
                    write!(f, "{} ∈ {{", h.name())?;
                    for (j, v) in vs.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", h.value_name(*v))?;
                    }
                    write!(f, "}}")?
                }
                ParameterDescriptor::Range(a, b) => write!(
                    f,
                    "{} ∈ [{}, {}]",
                    h.name(),
                    h.value_name(*a),
                    h.value_name(*b)
                )?,
            }
        }
        write!(f, ")")
    }
}

/// An extended context descriptor (Definition 8): a disjunction of
/// composite descriptors, `(cod11 ∧ …) ∨ … ∨ (codl1 ∧ …)`. This is what
/// queries carry (Definition 9) — e.g. the exploratory query "when I
/// travel to Athens with my family this summer".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExtendedContextDescriptor {
    disjuncts: Vec<ContextDescriptor>,
}

impl ExtendedContextDescriptor {
    /// A descriptor with no disjuncts denotes no states (callers treat
    /// queries with an empty context as non-contextual).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an explicit list of disjuncts.
    pub fn from_disjuncts(disjuncts: Vec<ContextDescriptor>) -> Self {
        Self { disjuncts }
    }

    /// Add one disjunct (builder style).
    #[must_use]
    pub fn or(mut self, cod: ContextDescriptor) -> Self {
        self.disjuncts.push(cod);
        self
    }

    /// The disjuncts, in insertion order.
    pub fn disjuncts(&self) -> &[ContextDescriptor] {
        &self.disjuncts
    }

    /// True iff there are no disjuncts (denotes no states).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// All states denoted by the disjunction — the union of the
    /// disjuncts' contexts, deduplicated, in first-mention order.
    pub fn states(&self, env: &ContextEnvironment) -> Result<Vec<ContextState>, ContextError> {
        let mut out: Vec<ContextState> = Vec::new();
        for cod in &self.disjuncts {
            for s in cod.states(env)? {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        Ok(out)
    }
}

impl From<ContextDescriptor> for ExtendedContextDescriptor {
    fn from(cod: ContextDescriptor) -> Self {
        Self {
            disjuncts: vec![cod],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::reference_env;

    fn pd_eq(env: &ContextEnvironment, param: &str, value: &str) -> (ParamId, ParameterDescriptor) {
        let p = env.param(param).unwrap();
        let v = env.hierarchy(p).lookup(value).unwrap();
        (p, ParameterDescriptor::Eq(v))
    }

    #[test]
    fn eq_descriptor_denotes_singleton() {
        let env = reference_env();
        let (p, pd) = pd_eq(&env, "location", "Plaka");
        let vs = pd.values(p, env.hierarchy(p)).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(env.hierarchy(p).value_name(vs[0]), "Plaka");
    }

    #[test]
    fn in_descriptor_dedupes_and_rejects_empty() {
        let env = reference_env();
        let p = env.param("temperature").unwrap();
        let h = env.hierarchy(p);
        let warm = h.lookup("warm").unwrap();
        let hot = h.lookup("hot").unwrap();
        let pd = ParameterDescriptor::In(vec![warm, hot, warm]);
        assert_eq!(pd.values(p, h).unwrap(), vec![warm, hot]);
        let empty = ParameterDescriptor::In(vec![]);
        assert!(matches!(
            empty.values(p, h).unwrap_err(),
            ContextError::EmptyValueSet { .. }
        ));
    }

    #[test]
    fn range_descriptor_expands_paper_example() {
        // temperature ∈ [mild, hot] = {mild, warm, hot}.
        let env = reference_env();
        let p = env.param("temperature").unwrap();
        let h = env.hierarchy(p);
        let pd = ParameterDescriptor::Range(h.lookup("mild").unwrap(), h.lookup("hot").unwrap());
        let names: Vec<&str> = pd
            .values(p, h)
            .unwrap()
            .into_iter()
            .map(|v| h.value_name(v))
            .collect();
        assert_eq!(names, vec!["mild", "warm", "hot"]);
        // Cross-level range is rejected.
        let bad = ParameterDescriptor::Range(h.lookup("mild").unwrap(), h.lookup("good").unwrap());
        assert!(matches!(
            bad.values(p, h).unwrap_err(),
            ContextError::RangeLevelMismatch { .. }
        ));
    }

    #[test]
    fn composite_expansion_matches_definition_4() {
        // (location = Plaka ∧ temperature ∈ {warm, hot}) with
        // accompanying_people absent → two states ending in `all`.
        let env = reference_env();
        let loc = env.param("location").unwrap();
        let tmp = env.param("temperature").unwrap();
        let lh = env.hierarchy(loc);
        let th = env.hierarchy(tmp);
        let cod = ContextDescriptor::empty()
            .with(loc, ParameterDescriptor::Eq(lh.lookup("Plaka").unwrap()))
            .with(
                tmp,
                ParameterDescriptor::In(vec![
                    th.lookup("warm").unwrap(),
                    th.lookup("hot").unwrap(),
                ]),
            );
        let states = cod.states(&env).unwrap();
        let rendered: Vec<String> = states.iter().map(|s| s.display(&env).to_string()).collect();
        assert_eq!(rendered, vec!["(Plaka, warm, all)", "(Plaka, hot, all)"]);
        assert_eq!(cod.state_count(&env).unwrap(), 2);
    }

    #[test]
    fn empty_descriptor_denotes_all_state() {
        let env = reference_env();
        let states = ContextDescriptor::empty().states(&env).unwrap();
        assert_eq!(states.len(), 1);
        assert_eq!(states[0], ContextState::all(&env));
    }

    #[test]
    fn overlaps_detects_shared_states() {
        let env = reference_env();
        let a = ContextDescriptor::empty()
            .with_eq(&env, "location", "Plaka")
            .unwrap()
            .with_eq(&env, "temperature", "warm")
            .unwrap();
        let b = ContextDescriptor::empty()
            .with_eq(&env, "location", "Plaka")
            .unwrap();
        // b leaves temperature = all, a pins warm → different states.
        assert!(!a.overlaps(&b, &env).unwrap());
        let c = ContextDescriptor::empty()
            .with_eq(&env, "location", "Plaka")
            .unwrap()
            .with_eq(&env, "temperature", "warm")
            .unwrap()
            .with_eq(&env, "accompanying_people", "all")
            .unwrap();
        assert!(a.overlaps(&c, &env).unwrap());
        // Brute-force cross-check against state sets.
        let sa = a.states(&env).unwrap();
        let sc = c.states(&env).unwrap();
        assert!(sa.iter().any(|s| sc.contains(s)));
    }

    #[test]
    fn extended_descriptor_unions_and_dedupes() {
        let env = reference_env();
        let a = ContextDescriptor::empty()
            .with_eq(&env, "location", "Plaka")
            .unwrap();
        let b = ContextDescriptor::empty()
            .with_eq(&env, "location", "Plaka")
            .unwrap();
        let c = ContextDescriptor::empty()
            .with_eq(&env, "location", "Kifisia")
            .unwrap();
        let e = ExtendedContextDescriptor::new().or(a).or(b).or(c);
        assert_eq!(e.states(&env).unwrap().len(), 2);
        assert!(ExtendedContextDescriptor::new().is_empty());
    }

    #[test]
    fn display_renders_paper_notation() {
        let env = reference_env();
        let tmp = env.param("temperature").unwrap();
        let th = env.hierarchy(tmp);
        let cod = ContextDescriptor::empty()
            .with_eq(&env, "location", "Plaka")
            .unwrap()
            .with(
                tmp,
                ParameterDescriptor::Range(th.lookup("warm").unwrap(), th.lookup("hot").unwrap()),
            );
        assert_eq!(
            cod.display(&env).to_string(),
            "(location = Plaka ∧ temperature ∈ [warm, hot])"
        );
        assert_eq!(
            ContextDescriptor::empty().display(&env).to_string(),
            "(true)"
        );
    }

    #[test]
    fn with_eq_reports_unknowns() {
        let env = reference_env();
        assert!(matches!(
            ContextDescriptor::empty()
                .with_eq(&env, "nope", "Plaka")
                .unwrap_err(),
            ContextError::UnknownParam(_)
        ));
        assert!(matches!(
            ContextDescriptor::empty()
                .with_eq(&env, "location", "Sparta")
                .unwrap_err(),
            ContextError::UnknownValue { .. }
        ));
    }
}
