//! A small textual surface for descriptors, mirroring the paper's
//! notation:
//!
//! ```text
//! location = Plaka and temperature in {warm, hot}
//! (location = Athens and accompanying_people = family) or (location = Ioannina)
//! *                                  -- the empty descriptor (all, …, all)
//! ```
//!
//! Grammar (keywords case-insensitive; `∧`/`∨` accepted for `and`/`or`):
//!
//! ```text
//! extended := cod ( "or" cod )*
//! cod      := "*" | [ "(" ] clause ( "and" clause )* [ ")" ]
//! clause   := param ( "=" value
//!                   | "in" "{" value ("," value)* "}"
//!                   | "in" "[" value "," value "]" )
//! ```

use crate::descriptor::{ContextDescriptor, ExtendedContextDescriptor, ParameterDescriptor};
use crate::env::ContextEnvironment;
use crate::error::ContextError;
use crate::state::CtxValue;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Eq,
    Comma,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Star,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ContextError {
        ContextError::Parse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn next_tok(&mut self) -> Result<Option<(usize, Tok)>, ContextError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let rest = &self.src[self.pos..];
        // Unicode connectives.
        for (sym, tok) in [
            ("∧", Tok::Word("and".into())),
            ("∨", Tok::Word("or".into())),
        ] {
            if let Some(r) = rest.strip_prefix(sym) {
                self.pos += rest.len() - r.len();
                return Ok(Some((start, tok)));
            }
        }
        let c = bytes[self.pos];
        let simple = match c {
            b'=' => Some(Tok::Eq),
            b',' => Some(Tok::Comma),
            b'{' => Some(Tok::LBrace),
            b'}' => Some(Tok::RBrace),
            b'[' => Some(Tok::LBracket),
            b']' => Some(Tok::RBracket),
            b'(' => Some(Tok::LParen),
            b')' => Some(Tok::RParen),
            b'*' => Some(Tok::Star),
            _ => None,
        };
        if let Some(t) = simple {
            self.pos += 1;
            return Ok(Some((start, t)));
        }
        if c == b'"' || c == b'\'' {
            let quote = c;
            let mut end = self.pos + 1;
            while end < bytes.len() && bytes[end] != quote {
                end += 1;
            }
            if end >= bytes.len() {
                return Err(self.error("unterminated quoted value"));
            }
            let word = self.src[self.pos + 1..end].to_string();
            self.pos = end + 1;
            return Ok(Some((start, Tok::Word(word))));
        }
        // Bare word: letters, digits, and common name punctuation.
        let is_word_byte =
            |b: u8| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b'/');
        if is_word_byte(c) || c >= 0x80 {
            let mut end = self.pos;
            while end < bytes.len() && (is_word_byte(bytes[end]) || bytes[end] >= 0x80) {
                // Stop before a unicode connective.
                if self.src[end..].starts_with('∧') || self.src[end..].starts_with('∨') {
                    break;
                }
                end += if bytes[end] >= 0x80 {
                    self.src[end..]
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1)
                } else {
                    1
                };
            }
            let word = self.src[self.pos..end].to_string();
            self.pos = end;
            return Ok(Some((start, Tok::Word(word))));
        }
        Err(self.error(format!(
            "unexpected character {:?}",
            self.src[self.pos..].chars().next()
        )))
    }
}

struct Parser<'a> {
    env: &'a ContextEnvironment,
    toks: Vec<(usize, Tok)>,
    i: usize,
    len: usize,
}

impl<'a> Parser<'a> {
    fn new(env: &'a ContextEnvironment, src: &str) -> Result<Self, ContextError> {
        let mut lex = Lexer::new(src);
        let mut toks = Vec::new();
        while let Some(t) = lex.next_tok()? {
            toks.push(t);
        }
        Ok(Self {
            env,
            toks,
            i: 0,
            len: src.len(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.i).map(|(p, _)| *p).unwrap_or(self.len)
    }

    fn error(&self, message: impl Into<String>) -> ContextError {
        ContextError::Parse {
            position: self.pos(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(_, t)| t.clone());
        self.i += 1;
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ContextError> {
        if self.peek() == Some(&tok) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn word(&mut self, what: &str) -> Result<String, ContextError> {
        match self.bump() {
            Some(Tok::Word(w)) => Ok(w),
            _ => {
                self.i = self.i.saturating_sub(1);
                Err(self.error(format!("expected {what}")))
            }
        }
    }

    fn value(&mut self, param: &str) -> Result<CtxValue, ContextError> {
        let name = self.word("a value name")?;
        let p = self.env.require_param(param)?;
        self.env
            .hierarchy(p)
            .lookup(&name)
            .ok_or_else(|| ContextError::UnknownValue {
                param: param.to_string(),
                value: name,
            })
    }

    fn clause(&mut self, cod: ContextDescriptor) -> Result<ContextDescriptor, ContextError> {
        let param = self.word("a context parameter name")?;
        let p = self.env.require_param(&param)?;
        if self.peek() == Some(&Tok::Eq) {
            self.i += 1;
            let v = self.value(&param)?;
            return Ok(cod.with(p, ParameterDescriptor::Eq(v)));
        }
        if self.is_keyword("in") {
            self.i += 1;
            match self.bump() {
                Some(Tok::LBrace) => {
                    let mut vs = vec![self.value(&param)?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.i += 1;
                        vs.push(self.value(&param)?);
                    }
                    self.expect(Tok::RBrace, "`}`")?;
                    Ok(cod.with(p, ParameterDescriptor::In(vs)))
                }
                Some(Tok::LBracket) => {
                    let from = self.value(&param)?;
                    self.expect(Tok::Comma, "`,`")?;
                    let to = self.value(&param)?;
                    self.expect(Tok::RBracket, "`]`")?;
                    Ok(cod.with(p, ParameterDescriptor::Range(from, to)))
                }
                _ => {
                    self.i = self.i.saturating_sub(1);
                    Err(self.error("expected `{` or `[` after `in`"))
                }
            }
        } else {
            Err(self.error("expected `=` or `in`"))
        }
    }

    fn conjunction(&mut self) -> Result<ContextDescriptor, ContextError> {
        if self.peek() == Some(&Tok::Star) {
            self.i += 1;
            return Ok(ContextDescriptor::empty());
        }
        let parenthesized = self.peek() == Some(&Tok::LParen);
        if parenthesized {
            self.i += 1;
            // A parenthesized empty descriptor: `( * )`.
            if self.peek() == Some(&Tok::Star) {
                self.i += 1;
                self.expect(Tok::RParen, "`)`")?;
                return Ok(ContextDescriptor::empty());
            }
        }
        let mut cod = self.clause(ContextDescriptor::empty())?;
        while self.is_keyword("and") {
            self.i += 1;
            cod = self.clause(cod)?;
        }
        if parenthesized {
            self.expect(Tok::RParen, "`)`")?;
        }
        Ok(cod)
    }

    fn extended(&mut self) -> Result<ExtendedContextDescriptor, ContextError> {
        let mut out = ExtendedContextDescriptor::new().or(self.conjunction()?);
        while self.is_keyword("or") {
            self.i += 1;
            out = out.or(self.conjunction()?);
        }
        if self.peek().is_some() {
            return Err(self.error("trailing input after descriptor"));
        }
        Ok(out)
    }
}

/// Parse a composite context descriptor (one conjunction), e.g.
/// `"location = Plaka and temperature in {warm, hot}"`. `"*"` denotes
/// the empty descriptor.
pub fn parse_descriptor(
    env: &ContextEnvironment,
    src: &str,
) -> Result<ContextDescriptor, ContextError> {
    let mut p = Parser::new(env, src)?;
    let cod = p.conjunction()?;
    if p.peek().is_some() {
        return Err(
            p.error("trailing input after descriptor (use parse_extended_descriptor for `or`)")
        );
    }
    Ok(cod)
}

/// Parse an extended context descriptor (a disjunction of
/// conjunctions, Definition 8).
pub fn parse_extended_descriptor(
    env: &ContextEnvironment,
    src: &str,
) -> Result<ExtendedContextDescriptor, ContextError> {
    Parser::new(env, src)?.extended()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::reference_env;

    #[test]
    fn parses_paper_examples() {
        let env = reference_env();
        let cod =
            parse_descriptor(&env, "location = Plaka and temperature in {warm, hot}").unwrap();
        let states = cod.states(&env).unwrap();
        let rendered: Vec<String> = states.iter().map(|s| s.display(&env).to_string()).collect();
        assert_eq!(rendered, vec!["(Plaka, warm, all)", "(Plaka, hot, all)"]);
    }

    #[test]
    fn parses_unicode_connectives_and_ranges() {
        let env = reference_env();
        let cod = parse_descriptor(&env, "location = Plaka ∧ temperature in [mild, hot]").unwrap();
        assert_eq!(cod.state_count(&env).unwrap(), 3);
    }

    #[test]
    fn parses_star_and_quotes() {
        let env = reference_env();
        let cod = parse_descriptor(&env, "*").unwrap();
        assert!(cod.is_empty());
        let cod = parse_descriptor(&env, "location = 'Plaka'").unwrap();
        assert_eq!(cod.clause_count(), 1);
    }

    #[test]
    fn parses_disjunctions() {
        let env = reference_env();
        let e = parse_extended_descriptor(
            &env,
            "(location = Athens and accompanying_people = family) or (location = Ioannina)",
        )
        .unwrap();
        assert_eq!(e.disjuncts().len(), 2);
        assert_eq!(e.states(&env).unwrap().len(), 2);
        // Without parens too.
        let e2 = parse_extended_descriptor(&env, "location = Athens ∨ temperature = good").unwrap();
        assert_eq!(e2.disjuncts().len(), 2);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let env = reference_env();
        let cod = parse_descriptor(&env, "location = Plaka AND temperature IN {warm}").unwrap();
        assert_eq!(cod.clause_count(), 2);
    }

    #[test]
    fn reports_errors_with_positions() {
        let env = reference_env();
        for (src, needle) in [
            ("location == Plaka", "expected"),
            ("location = Sparta", ""),
            ("nowhere = Plaka", ""),
            ("location in {Plaka", "expected `}`"),
            ("location in Plaka", "expected `{` or `[`"),
            ("location = Plaka extra", "trailing"),
            ("location = 'Plaka", "unterminated"),
            ("location ?", "expected"),
            ("", "expected"),
        ] {
            let err = parse_descriptor(&env, src).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "{src:?} → {msg}");
        }
    }

    #[test]
    fn or_is_rejected_by_plain_parse() {
        let env = reference_env();
        assert!(parse_descriptor(&env, "location = Plaka or location = Kifisia").is_err());
    }
}
