//! State similarity (Section 4.3): the hierarchy distance and the
//! Jaccard distance, used to pick the best among several covering
//! context states.

use crate::env::{ContextEnvironment, ParamId};
use crate::state::ContextState;

/// Which of the paper's two distance functions to use when several
/// candidate states cover the query state (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceKind {
    /// The hierarchy state distance of Definition 15: the sum over
    /// parameters of the minimum-path distance between the levels of
    /// the two values. Favours the most *specific* covering state.
    #[default]
    Hierarchy,
    /// The Jaccard state distance of Definition 17: the sum over
    /// parameters of `1 − |desc∩| / |desc∪|` at the detailed level.
    /// Favours the covering state with the smallest cardinality and
    /// produces far fewer ties than the hierarchy distance (Section
    /// 5.1's usability finding).
    Jaccard,
}

impl DistanceKind {
    /// Distance between two states under this metric. The hierarchy
    /// distance is integral; it is returned as `f64` so both metrics
    /// share a total order (`f64` comparisons are safe here — distances
    /// are finite sums of finite non-negative terms).
    pub fn state_dist(self, env: &ContextEnvironment, a: &ContextState, b: &ContextState) -> f64 {
        match self {
            Self::Hierarchy => hierarchy_state_dist(env, a, b) as f64,
            Self::Jaccard => jaccard_state_dist(env, a, b),
        }
    }

    /// Distance contribution of a single parameter.
    pub fn value_dist(
        self,
        env: &ContextEnvironment,
        p: ParamId,
        a: crate::state::CtxValue,
        b: crate::state::CtxValue,
    ) -> f64 {
        let h = env.hierarchy(p);
        match self {
            Self::Hierarchy => h.level_dist(h.level_of(a), h.level_of(b)) as f64,
            Self::Jaccard => h.jaccard(a, b),
        }
    }
}

impl std::fmt::Display for DistanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Hierarchy => write!(f, "Hierarchy"),
            Self::Jaccard => write!(f, "Jaccard"),
        }
    }
}

/// `dist_H(s1, s2)` of Definition 15: `Σ_i |dist_H(L1_i, L2_i)|` where
/// the level distance is the minimum path between the levels of the two
/// values within the parameter's hierarchy (Definition 14).
pub fn hierarchy_state_dist(env: &ContextEnvironment, a: &ContextState, b: &ContextState) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    env.iter()
        .zip(a.values().iter().zip(b.values().iter()))
        .map(|((_, h), (&va, &vb))| h.level_dist(h.level_of(va), h.level_of(vb)))
        .sum()
}

/// `dist_J(s1, s2)` of Definition 17: `Σ_i dist_J(c1_i, c2_i)` with the
/// per-value Jaccard distance of Definition 16.
pub fn jaccard_state_dist(env: &ContextEnvironment, a: &ContextState, b: &ContextState) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    env.iter()
        .zip(a.values().iter().zip(b.values().iter()))
        .map(|((_, h), (&va, &vb))| h.jaccard(va, vb))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::reference_env;

    fn st(env: &ContextEnvironment, names: &[&str]) -> ContextState {
        ContextState::parse(env, names).unwrap()
    }

    #[test]
    fn hierarchy_distance_sums_level_gaps() {
        let env = reference_env();
        let q = st(&env, &["Plaka", "warm", "friends"]);
        // (Athens, good, all): levels City(1), Characterization(1), ALL(1)
        // vs (Region 0, Conditions 0, Relationship 0) → 1 + 1 + 1 = 3.
        let c = st(&env, &["Athens", "good", "all"]);
        assert_eq!(hierarchy_state_dist(&env, &q, &c), 3);
        // (Greece, warm, friends) → 2 + 0 + 0 = 2.
        let g = st(&env, &["Greece", "warm", "friends"]);
        assert_eq!(hierarchy_state_dist(&env, &q, &g), 2);
        // Identity.
        assert_eq!(hierarchy_state_dist(&env, &q, &q), 0);
        // Symmetry.
        assert_eq!(hierarchy_state_dist(&env, &c, &q), 3);
    }

    #[test]
    fn jaccard_distance_sums_value_jaccards() {
        let env = reference_env();
        let q = st(&env, &["Plaka", "warm", "friends"]);
        let g = st(&env, &["Athens", "warm", "friends"]);
        // jaccard(Plaka, Athens) = 1 - 1/2 = 0.5, others 0.
        let d = jaccard_state_dist(&env, &q, &g);
        assert!((d - 0.5).abs() < 1e-12);
        assert_eq!(jaccard_state_dist(&env, &q, &q), 0.0);
    }

    /// Property 2 of the paper: if s2 and s3 both cover s1 and s3 covers
    /// s2 (s2 ≠ s3), then dist_H(s3, s1) > dist_H(s2, s1).
    #[test]
    fn property_2_hierarchy_distance_respects_covers() {
        let env = reference_env();
        let s1 = st(&env, &["Plaka", "warm", "friends"]);
        let s2 = st(&env, &["Athens", "warm", "friends"]);
        let s3 = st(&env, &["Greece", "good", "friends"]);
        assert!(s2.covers(&s1, &env) && s3.covers(&s1, &env) && s3.covers(&s2, &env));
        assert!(hierarchy_state_dist(&env, &s3, &s1) > hierarchy_state_dist(&env, &s2, &s1));
    }

    /// Property 3: the same ordering holds for the Jaccard distance.
    #[test]
    fn property_3_jaccard_distance_respects_covers() {
        let env = reference_env();
        let s1 = st(&env, &["Plaka", "warm", "friends"]);
        let s2 = st(&env, &["Athens", "warm", "friends"]);
        let s3 = st(&env, &["Greece", "good", "friends"]);
        assert!(jaccard_state_dist(&env, &s3, &s1) > jaccard_state_dist(&env, &s2, &s1));
    }

    #[test]
    fn kind_dispatches_and_displays() {
        let env = reference_env();
        let q = st(&env, &["Plaka", "warm", "friends"]);
        let c = st(&env, &["Athens", "good", "all"]);
        assert_eq!(
            DistanceKind::Hierarchy.state_dist(&env, &q, &c),
            hierarchy_state_dist(&env, &q, &c) as f64
        );
        assert_eq!(
            DistanceKind::Jaccard.state_dist(&env, &q, &c),
            jaccard_state_dist(&env, &q, &c)
        );
        assert_eq!(DistanceKind::Hierarchy.to_string(), "Hierarchy");
        assert_eq!(DistanceKind::Jaccard.to_string(), "Jaccard");
        assert_eq!(DistanceKind::default(), DistanceKind::Hierarchy);
    }

    #[test]
    fn per_value_dist_matches_state_sum() {
        let env = reference_env();
        let q = st(&env, &["Plaka", "warm", "friends"]);
        let c = st(&env, &["Athens", "good", "all"]);
        for kind in [DistanceKind::Hierarchy, DistanceKind::Jaccard] {
            let total: f64 = env
                .param_ids()
                .map(|p| kind.value_dist(&env, p, q.value(p), c.value(p)))
                .sum();
            assert!((total - kind.state_dist(&env, &q, &c)).abs() < 1e-12);
        }
    }
}
