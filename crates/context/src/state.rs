use std::fmt;

use ctxpref_hierarchy::{LevelId, ValueId};

use crate::env::{ContextEnvironment, ParamId};
use crate::error::ContextError;

/// A context value: one entry of a context state. Values always belong
/// to the hierarchy of the parameter at the same position, so a bare
/// [`ValueId`] suffices (its level is derivable from the hierarchy).
pub type CtxValue = ValueId;

/// An (extended) context state `s = (c1, c2, …, cn)` with
/// `ci ∈ edom(Ci)` (Section 3.1).
///
/// A *detailed* state (every value from the detailed level `L1`) is what
/// the paper calls a plain context state; allowing values from any level
/// gives the extended states that descriptors and preferences use.
///
/// States are small (`n` is the number of context parameters, three in
/// every experiment of the paper) and are freely cloned.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextState {
    values: Box<[CtxValue]>,
}

impl ContextState {
    /// Build a state, validating arity and value membership.
    pub fn new(env: &ContextEnvironment, values: Vec<CtxValue>) -> Result<Self, ContextError> {
        if values.len() != env.len() {
            return Err(ContextError::ArityMismatch {
                expected: env.len(),
                got: values.len(),
            });
        }
        for (i, &v) in values.iter().enumerate() {
            let p = ParamId(i as u16);
            if v.index() >= env.hierarchy(p).value_count() {
                return Err(ContextError::ForeignValue { param: p });
            }
        }
        Ok(Self {
            values: values.into_boxed_slice(),
        })
    }

    /// Build a state without validation. The caller must guarantee each
    /// value belongs to the corresponding parameter's hierarchy.
    pub fn from_values_unchecked(values: Vec<CtxValue>) -> Self {
        Self {
            values: values.into_boxed_slice(),
        }
    }

    /// The `(all, all, …, all)` state — the context of an empty
    /// descriptor (Definition 4), used for non-contextual preferences.
    pub fn all(env: &ContextEnvironment) -> Self {
        Self {
            values: env.iter().map(|(_, h)| h.all_value()).collect(),
        }
    }

    /// Build a state from value names, e.g.
    /// `ContextState::parse(&env, &["Plaka", "warm", "friends"])`.
    pub fn parse(env: &ContextEnvironment, names: &[&str]) -> Result<Self, ContextError> {
        if names.len() != env.len() {
            return Err(ContextError::ArityMismatch {
                expected: env.len(),
                got: names.len(),
            });
        }
        let mut values = Vec::with_capacity(names.len());
        for ((_, h), &name) in env.iter().zip(names) {
            let v = h.lookup(name).ok_or_else(|| ContextError::UnknownValue {
                param: h.name().to_string(),
                value: name.to_string(),
            })?;
            values.push(v);
        }
        Ok(Self {
            values: values.into_boxed_slice(),
        })
    }

    /// Number of parameters (`n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    /// True iff the state has no values (impossible for states built
    /// against an environment; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value assigned to one parameter.
    #[inline]
    pub fn value(&self, p: ParamId) -> CtxValue {
        self.values[p.index()]
    }

    /// All values in parameter order.
    #[inline]
    pub fn values(&self) -> &[CtxValue] {
        &self.values
    }

    /// `levels(s)` of Definition 13: the hierarchy level of each value.
    pub fn levels(&self, env: &ContextEnvironment) -> Vec<LevelId> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| env.hierarchy(ParamId(i as u16)).level_of(v))
            .collect()
    }

    /// True iff every value is from the detailed level (a plain,
    /// non-extended context state — e.g. the current context at query
    /// submission time, Section 4.1).
    pub fn is_detailed(&self, env: &ContextEnvironment) -> bool {
        self.values
            .iter()
            .enumerate()
            .all(|(i, &v)| env.hierarchy(ParamId(i as u16)).level_of(v) == LevelId::DETAILED)
    }

    /// The `covers` relation of Definition 10: `self` covers `other` iff
    /// for every parameter `k`, `self_k == other_k` or
    /// `self_k = anc(other_k)` at some higher level.
    ///
    /// This is a partial order (Theorem 1); reflexivity, antisymmetry
    /// and transitivity are exercised by property tests.
    pub fn covers(&self, other: &ContextState, env: &ContextEnvironment) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.values
            .iter()
            .zip(other.values.iter())
            .enumerate()
            .all(|(i, (&a, &b))| env.hierarchy(ParamId(i as u16)).is_ancestor_or_self(a, b))
    }

    /// Replace one value, producing a new state.
    pub fn with_value(&self, p: ParamId, v: CtxValue) -> Self {
        let mut values = self.values.to_vec();
        values[p.index()] = v;
        Self {
            values: values.into_boxed_slice(),
        }
    }

    /// Render with value names, e.g. `(Plaka, warm, friends)`.
    pub fn display<'a>(&'a self, env: &'a ContextEnvironment) -> impl fmt::Display + 'a {
        StateDisplay { state: self, env }
    }
}

/// Does a set of states cover another set (Definition 11)? `sup` covers
/// `sub` iff every state of `sub` is covered by some state of `sup`.
pub fn set_covers(sup: &[ContextState], sub: &[ContextState], env: &ContextEnvironment) -> bool {
    sub.iter().all(|s| sup.iter().any(|t| t.covers(s, env)))
}

struct StateDisplay<'a> {
    state: &'a ContextState,
    env: &'a ContextEnvironment,
}

impl fmt::Display for StateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &v) in self.state.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.env.hierarchy(ParamId(i as u16)).value_name(v))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::reference_env;

    #[test]
    fn parse_and_display_roundtrip() {
        let env = reference_env();
        let s = ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();
        assert_eq!(s.display(&env).to_string(), "(Plaka, warm, friends)");
        assert!(s.is_detailed(&env));
        let e = ContextState::parse(&env, &["Greece", "good", "all"]).unwrap();
        assert!(!e.is_detailed(&env));
        assert_eq!(e.display(&env).to_string(), "(Greece, good, all)");
    }

    #[test]
    fn parse_rejects_unknowns_and_arity() {
        let env = reference_env();
        assert!(matches!(
            ContextState::parse(&env, &["Sparta", "warm", "friends"]).unwrap_err(),
            ContextError::UnknownValue { .. }
        ));
        assert!(matches!(
            ContextState::parse(&env, &["Plaka", "warm"]).unwrap_err(),
            ContextError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn new_validates_membership() {
        let env = reference_env();
        let bad = ContextState::new(&env, vec![ValueId(999), ValueId(0), ValueId(0)]);
        assert!(matches!(
            bad.unwrap_err(),
            ContextError::ForeignValue { .. }
        ));
    }

    #[test]
    fn levels_match_definition_13() {
        let env = reference_env();
        let s = ContextState::parse(&env, &["Athens", "good", "all"]).unwrap();
        let lv = s.levels(&env);
        assert_eq!(lv, vec![LevelId(1), LevelId(1), LevelId(1)]);
        let d = ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();
        assert_eq!(d.levels(&env), vec![LevelId(0); 3]);
    }

    #[test]
    fn covers_follows_paper_examples() {
        let env = reference_env();
        let query = ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();
        // (Greece, warm, friends) covers (Plaka, warm, friends).
        let c1 = ContextState::parse(&env, &["Greece", "warm", "friends"]).unwrap();
        assert!(c1.covers(&query, &env));
        assert!(!query.covers(&c1, &env));
        // (Plaka, good, all) covers it as well.
        let c2 = ContextState::parse(&env, &["Plaka", "good", "all"]).unwrap();
        assert!(c2.covers(&query, &env));
        // Neither of c1, c2 covers the other (the paper's tie example).
        assert!(!c1.covers(&c2, &env) && !c2.covers(&c1, &env));
        // (all, all, all) covers everything.
        let all = ContextState::all(&env);
        for s in [&query, &c1, &c2] {
            assert!(all.covers(s, &env));
        }
        // Reflexive.
        assert!(query.covers(&query, &env));
        // Sibling regions don't cover each other.
        let kifisia = ContextState::parse(&env, &["Kifisia", "warm", "friends"]).unwrap();
        assert!(!kifisia.covers(&query, &env) && !query.covers(&kifisia, &env));
    }

    #[test]
    fn set_covers_definition_11() {
        let env = reference_env();
        let q1 = ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();
        let q2 = ContextState::parse(&env, &["Perama", "cold", "family"]).unwrap();
        let c1 = ContextState::parse(&env, &["Athens", "good", "all"]).unwrap();
        let c2 = ContextState::parse(&env, &["Greece", "all", "all"]).unwrap();
        assert!(set_covers(
            &[c1.clone(), c2.clone()],
            &[q1.clone(), q2.clone()],
            &env
        ));
        // c1 alone does not cover q2.
        assert!(!set_covers(&[c1], &[q1, q2], &env));
        // Empty sub-set is trivially covered.
        assert!(set_covers(&[], &[], &env));
    }

    #[test]
    fn with_value_replaces_one_slot() {
        let env = reference_env();
        let s = ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();
        let h = env.hierarchy(ParamId(2));
        let t = s.with_value(ParamId(2), h.lookup("family").unwrap());
        assert_eq!(t.display(&env).to_string(), "(Plaka, warm, family)");
        assert_eq!(s.display(&env).to_string(), "(Plaka, warm, friends)");
    }
}
