use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ctxpref_hierarchy::Hierarchy;

use crate::error::ContextError;

/// Index of a context parameter within its [`ContextEnvironment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub u16);

impl ParamId {
    #[inline]
    /// Zero-based index of the parameter.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0 as u32 + 1)
    }
}

/// The context environment `CE_X = {C1, C2, …, Cn}` of an application
/// (Section 3.1): an ordered set of context parameters, each with its
/// own hierarchy of levels.
///
/// Hierarchies are reference-counted so that states, profiles and
/// indexes can share the environment cheaply.
#[derive(Debug, Clone)]
pub struct ContextEnvironment {
    params: Arc<[Arc<Hierarchy>]>,
    by_name: Arc<HashMap<String, ParamId>>,
}

impl ContextEnvironment {
    /// Build an environment from parameter hierarchies. Parameter names
    /// (hierarchy names) must be unique.
    pub fn new(hierarchies: Vec<Hierarchy>) -> Result<Self, ContextError> {
        Self::from_arcs(hierarchies.into_iter().map(Arc::new).collect())
    }

    /// Like [`Self::new`] but sharing already-reference-counted
    /// hierarchies.
    pub fn from_arcs(hierarchies: Vec<Arc<Hierarchy>>) -> Result<Self, ContextError> {
        if hierarchies.is_empty() {
            return Err(ContextError::EmptyEnvironment);
        }
        let mut by_name = HashMap::with_capacity(hierarchies.len());
        for (i, h) in hierarchies.iter().enumerate() {
            if by_name
                .insert(h.name().to_string(), ParamId(i as u16))
                .is_some()
            {
                return Err(ContextError::DuplicateParam(h.name().to_string()));
            }
        }
        Ok(Self {
            params: hierarchies.into(),
            by_name: Arc::new(by_name),
        })
    }

    /// Number of context parameters (`n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` iff the environment has no parameters — never, by
    /// construction; present for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The hierarchy of one parameter.
    #[inline]
    pub fn hierarchy(&self, p: ParamId) -> &Hierarchy {
        &self.params[p.index()]
    }

    /// Shared handle to the hierarchy of one parameter.
    #[inline]
    pub fn hierarchy_arc(&self, p: ParamId) -> Arc<Hierarchy> {
        Arc::clone(&self.params[p.index()])
    }

    /// Resolve a parameter by name.
    pub fn param(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// Like [`Self::param`] but returning a typed error.
    pub fn require_param(&self, name: &str) -> Result<ParamId, ContextError> {
        self.param(name)
            .ok_or_else(|| ContextError::UnknownParam(name.to_string()))
    }

    /// Iterate over `(ParamId, &Hierarchy)` pairs in parameter order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Hierarchy)> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, h)| (ParamId(i as u16), h.as_ref()))
    }

    /// All parameter ids, in order.
    pub fn param_ids(&self) -> impl Iterator<Item = ParamId> + 'static {
        (0..self.params.len() as u16).map(ParamId)
    }

    /// `|W|`: size of the world, the Cartesian product of the detailed
    /// domains. Saturates at `u128::MAX`.
    pub fn world_size(&self) -> u128 {
        self.params.iter().fold(1u128, |acc, h| {
            acc.saturating_mul(h.domain_size(h.detailed_level()) as u128)
        })
    }

    /// `|EW|`: size of the extended world, the Cartesian product of the
    /// extended domains. Saturates at `u128::MAX`.
    pub fn extended_world_size(&self) -> u128 {
        self.params
            .iter()
            .fold(1u128, |acc, h| acc.saturating_mul(h.edom_size() as u128))
    }

    /// True when two environments are the same underlying object (used
    /// by debug assertions to catch states crossing environments).
    pub fn same_as(&self, other: &ContextEnvironment) -> bool {
        Arc::ptr_eq(&self.params, &other.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> ContextEnvironment {
        ContextEnvironment::new(vec![
            Hierarchy::flat("weather", &["cold", "warm", "hot"]).unwrap(),
            Hierarchy::flat("company", &["friends", "family"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_and_sizes() {
        let e = env();
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.param("weather"), Some(ParamId(0)));
        assert_eq!(e.param("company"), Some(ParamId(1)));
        assert_eq!(e.param("nope"), None);
        assert!(e.require_param("nope").is_err());
        assert_eq!(e.world_size(), 6);
        // edoms: (3 + all) * (2 + all) = 12.
        assert_eq!(e.extended_world_size(), 12);
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert_eq!(
            ContextEnvironment::new(vec![]).unwrap_err(),
            ContextError::EmptyEnvironment
        );
        let dup = ContextEnvironment::new(vec![
            Hierarchy::flat("x", &["a"]).unwrap(),
            Hierarchy::flat("x", &["b"]).unwrap(),
        ]);
        assert!(matches!(dup.unwrap_err(), ContextError::DuplicateParam(_)));
    }

    #[test]
    fn iteration_orders_match() {
        let e = env();
        let names: Vec<&str> = e.iter().map(|(_, h)| h.name()).collect();
        assert_eq!(names, vec!["weather", "company"]);
        let ids: Vec<ParamId> = e.param_ids().collect();
        assert_eq!(ids, vec![ParamId(0), ParamId(1)]);
    }

    #[test]
    fn same_as_tracks_identity() {
        let e = env();
        let e2 = e.clone();
        assert!(e.same_as(&e2));
        assert!(!e.same_as(&env()));
    }
}
