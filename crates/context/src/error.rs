use std::error::Error;
use std::fmt;

use crate::env::ParamId;

/// Errors produced by the context model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextError {
    /// An environment was created with no context parameters.
    EmptyEnvironment,
    /// Two context parameters share a name.
    DuplicateParam(String),
    /// A state was built with the wrong number of values.
    ArityMismatch {
        /// Number of parameters the environment has.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value id does not belong to the hierarchy of its parameter.
    ForeignValue {
        /// The parameter whose hierarchy rejected the value.
        param: ParamId,
    },
    /// A parameter name did not resolve.
    UnknownParam(String),
    /// A value name did not resolve within its parameter's hierarchy.
    UnknownValue {
        /// The parameter the value was looked up in.
        param: String,
        /// The unresolved value name.
        value: String,
    },
    /// The endpoints of a range descriptor live at different levels.
    RangeLevelMismatch {
        /// The parameter whose range descriptor is malformed.
        param: ParamId,
    },
    /// A set descriptor was given no values.
    EmptyValueSet {
        /// The parameter whose set descriptor is empty.
        param: ParamId,
    },
    /// Textual descriptor parse failure.
    Parse {
        /// Byte offset of the error in the input.
        position: usize,
        /// What the parser expected.
        message: String,
    },
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyEnvironment => write!(f, "a context environment needs ≥ 1 parameter"),
            Self::DuplicateParam(p) => write!(f, "duplicate context parameter {p:?}"),
            Self::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "context state arity mismatch: expected {expected}, got {got}"
                )
            }
            Self::ForeignValue { param } => {
                write!(
                    f,
                    "value does not belong to the hierarchy of parameter #{}",
                    param.0
                )
            }
            Self::UnknownParam(p) => write!(f, "unknown context parameter {p:?}"),
            Self::UnknownValue { param, value } => {
                write!(f, "unknown value {value:?} for context parameter {param:?}")
            }
            Self::RangeLevelMismatch { param } => write!(
                f,
                "range descriptor endpoints for parameter #{} are at different levels",
                param.0
            ),
            Self::EmptyValueSet { param } => {
                write!(f, "set descriptor for parameter #{} has no values", param.0)
            }
            Self::Parse { position, message } => {
                write!(f, "descriptor parse error at byte {position}: {message}")
            }
        }
    }
}

impl Error for ContextError {}
