#![warn(missing_docs)]
//! Context model for contextual preferences.
//!
//! Implements Sections 3.1 and 4.2–4.3 of *"Adding Context to
//! Preferences"* (ICDE 2007):
//!
//! * [`ContextEnvironment`] — the set of context parameters
//!   `CE_X = {C1, …, Cn}` of an application, each backed by a
//!   [`ctxpref_hierarchy::Hierarchy`].
//! * [`ContextState`] — an (extended) context state: an assignment of a
//!   value from the extended domain `edom(Ci)` to every parameter.
//! * [`ParameterDescriptor`] / [`ContextDescriptor`] /
//!   [`ExtendedContextDescriptor`] — the descriptor language of
//!   Definitions 1–4 and 8 (`Ci = v`, `Ci ∈ {…}`, `Ci ∈ [v1, vm]`,
//!   conjunctions, and disjunctions of conjunctions), together with
//!   their expansion `Context(cod)` into finite sets of states.
//! * The [`ContextState::covers`] partial order (Definition 10) and the
//!   two state similarity measures of Section 4.3: the hierarchy
//!   distance (Definition 15) and the Jaccard distance (Definition 17),
//!   selected through [`DistanceKind`].
//! * A small textual parser ([`parse_descriptor`] /
//!   [`parse_extended_descriptor`]) so applications and examples can
//!   write descriptors the way the paper does:
//!   `"location = Plaka and temperature in {warm, hot}"`.
//!
//! # Example
//!
//! ```
//! use ctxpref_context::{ContextEnvironment, parse_descriptor};
//! use ctxpref_hierarchy::Hierarchy;
//!
//! let env = ContextEnvironment::new(vec![
//!     Hierarchy::flat("weather", &["cold", "warm"]).unwrap(),
//!     Hierarchy::flat("company", &["friends", "family", "alone"]).unwrap(),
//! ])
//! .unwrap();
//! let cod = parse_descriptor(&env, "weather = warm and company in {friends, family}").unwrap();
//! let states = cod.states(&env).unwrap();
//! assert_eq!(states.len(), 2); // (warm, friends), (warm, family)
//! ```

mod descriptor;
mod distance;
mod env;
mod error;
mod parse;
mod state;
#[cfg(test)]
pub(crate) mod testutil;

pub use descriptor::{ContextDescriptor, ExtendedContextDescriptor, ParameterDescriptor};
pub use distance::{hierarchy_state_dist, jaccard_state_dist, DistanceKind};
pub use env::{ContextEnvironment, ParamId};
pub use error::ContextError;
pub use parse::{parse_descriptor, parse_extended_descriptor};
pub use state::{set_covers, ContextState, CtxValue};
