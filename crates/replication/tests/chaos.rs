//! The replication chaos matrix plus targeted failover tests.
//!
//! Each chaos seed boots a three-node cluster, then races a mutate
//! load (with a concurrent reader thread) against seeded network
//! faults — drops, delays, duplicates, injected partitions — and
//! scripted control-plane violence: explicit partitions, primary
//! kills, replica crashes and restarts, checkpoints that force the
//! snapshot catch-up path. When the dust settles the network heals,
//! crashed nodes restart, and the suite asserts:
//!
//! 1. **Zero acked-write loss** (quorum seeds): every op the cluster
//!    acknowledged is present in the final primary's state.
//! 2. **Epoch-monotonic promotions** (all seeds): the promotion
//!    history carries strictly ascending epochs.
//! 3. **Digest convergence** (all seeds): after healing, pumping, and
//!    anti-entropy, every live node holds byte-equal shard digests.
//! 4. **Liveness**: the healed cluster accepts and replicates a fresh
//!    write.
//!
//! On seeds where no failover ever happened the suite also
//! byte-compares the primary against a model that applied exactly the
//! locally-applied ops, via the storage serialization.
//!
//! Override the matrix with `CTXPREF_FUZZ_SEEDS=start..end` (e.g.
//! `CTXPREF_FUZZ_SEEDS=7..8` to replay one seed).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use ctxpref_context::ContextDescriptor;
use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_faults::sites::{
    REPL_HEARTBEAT_DROP, REPL_PARTITION, REPL_SEND_DELAY, REPL_SEND_DROP, REPL_SEND_DUPLICATE,
};
use ctxpref_faults::FaultPlan;
use ctxpref_profile::{AttributeClause, ContextualPreference};
use ctxpref_replication::{node_digests, AckMode, Cluster, ClusterConfig, ReplicationError};
use ctxpref_storage::pref_tokens;
use ctxpref_wal::{tiny_env, tiny_relation, SyncPolicy, WalOp, WalOptions};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Fault plans are process-global, so every test that installs one (or
/// merely sends through the transport while another test's plan is in)
/// serializes on this lock.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A fresh directory under the system temp dir; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-repl-chaos-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const NODES: usize = 3;
const SHARDS: usize = 4;

fn make_core() -> Arc<ShardedMultiUserDb> {
    Arc::new(ShardedMultiUserDb::new(
        tiny_env(),
        tiny_relation(),
        2,
        SHARDS,
    ))
}

fn config_for_seed(seed: u64) -> ClusterConfig {
    ClusterConfig {
        nodes: NODES,
        shards: SHARDS,
        ack_mode: if seed.is_multiple_of(2) {
            AckMode::Quorum
        } else {
            AckMode::Async
        },
        wal: WalOptions {
            sync: if (seed / 2).is_multiple_of(2) {
                SyncPolicy::PerRecord
            } else {
                SyncPolicy::GroupCommit {
                    flush_interval: Duration::from_millis(5),
                }
            },
            segment_max_bytes: 512,
        },
        batch_max: 16,
        heartbeat_threshold: 2,
        auto_failover: true,
    }
}

/// Monotone-effect workload: users and clause values are globally
/// unique and never removed, so "this acked op's effect is visible"
/// is a well-defined final-state predicate even across failovers.
struct MonotoneWorkload {
    rng: StdRng,
    users: Vec<String>,
    next_user: u64,
    next_value: u64,
}

impl MonotoneWorkload {
    fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0xc4a0_5011),
            users: Vec::new(),
            next_user: 0,
            next_value: 0,
        }
    }

    fn next_op(&mut self) -> WalOp {
        let roll = self.rng.random_range(0..100u32);
        if self.users.is_empty() || roll < 20 {
            let user = format!("u{}", self.next_user);
            self.next_user += 1;
            self.users.push(user.clone());
            WalOp::AddUser { user }
        } else {
            let user = self.users[self.rng.random_range(0..self.users.len())].clone();
            let rel = tiny_relation();
            let attr = rel.schema().require_attr("name").unwrap();
            let value = format!("v{}", self.next_value);
            self.next_value += 1;
            let score = self.rng.random_range(0..=1000) as f64 / 1000.0;
            let pref = ContextualPreference::new(
                ContextDescriptor::empty(),
                AttributeClause::eq(attr, value.into()),
                score,
            )
            .unwrap();
            WalOp::InsertPreference { user, pref }
        }
    }
}

/// Whether `op`'s effect is visible in `db` (monotone workload only).
fn effect_visible(db: &MultiUserDb, op: &WalOp) -> bool {
    match op {
        WalOp::AddUser { user } => db.profile(user).is_ok(),
        WalOp::InsertPreference { user, pref } => {
            let Ok(profile) = db.profile(user) else {
                return false;
            };
            let want = pref_tokens(pref, db.env(), db.relation());
            profile
                .preferences()
                .iter()
                .any(|p| pref_tokens(p, db.env(), db.relation()) == want)
        }
        _ => unreachable!("monotone workload only adds"),
    }
}

/// One chaos seed: boot, rampage, heal, assert.
fn run_chaos_seed(seed: u64) -> Result<(), String> {
    let ctx = |what: &str| format!("seed={seed}: {what}");
    let tmp = TempDir::new(&format!("seed{seed}"));
    let cfg = config_for_seed(seed);
    let quorum = cfg.ack_mode == AckMode::Quorum;
    let cluster =
        Arc::new(Cluster::new(&tmp.0, cfg, make_core).map_err(|e| ctx(&format!("boot: {e}")))?);

    // The reader thread races queries against every live node while
    // mutations, partitions, and crashes fly.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for id in 0..NODES {
                    if let Some(db) = cluster.db_of(id) {
                        let users = db.db().users_sorted();
                        for user in users.iter().take(3) {
                            let _ = db.db().profile(user);
                        }
                        reads += 1;
                    }
                }
                std::thread::yield_now();
            }
            reads
        })
    };

    let plan = FaultPlan::builder(seed)
        .fail(REPL_SEND_DROP, 0.05)
        .fail(REPL_HEARTBEAT_DROP, 0.05)
        .fail(REPL_SEND_DUPLICATE, 0.10)
        .fail(REPL_PARTITION, 0.02)
        .delay(REPL_SEND_DELAY, 0.05, Duration::from_micros(50))
        .build();
    let guard = ctxpref_faults::install(Arc::clone(&plan));

    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_cafe);
    let mut workload = MonotoneWorkload::new(seed);
    let mut acked: Vec<WalOp> = Vec::new();
    let mut applied: Vec<WalOp> = Vec::new();
    let mut crashed: Vec<usize> = Vec::new();

    for i in 0..120 {
        let op = workload.next_op();
        match cluster.write(&op) {
            Ok(_) => {
                acked.push(op.clone());
                applied.push(op);
            }
            Err(ReplicationError::QuorumFailed { .. }) => {
                // Applied on the primary, never acknowledged: allowed
                // to survive, not required to.
                applied.push(op);
            }
            Err(_) => {}
        }
        if i % 3 == 0 {
            cluster.tick();
        }
        // Scripted violence, seeded per iteration.
        let roll = rng.random_range(0..1000u32);
        if roll < 30 {
            let a = rng.random_range(0..NODES);
            let b = rng.random_range(0..NODES);
            if a != b {
                cluster.partition(a, b);
            }
        } else if roll < 55 {
            cluster.heal_all();
        } else if roll < 70 && crashed.is_empty() {
            // At most one node down at a time keeps a majority alive.
            cluster.crash_primary();
            let down: Vec<usize> = (0..NODES)
                .filter(|&id| cluster.node(id).is_none())
                .collect();
            crashed = down;
        } else if roll < 90 && crashed.is_empty() {
            let id = rng.random_range(0..NODES);
            if cluster.node(id).is_some() && cluster.primary() != Some(id) {
                cluster.crash_node(id);
                crashed.push(id);
            }
        } else if roll < 130 {
            if let Some(id) = crashed.pop() {
                if cluster.restart_node(id).is_err() {
                    crashed.push(id);
                }
            }
        } else if roll < 160 {
            // Checkpoint the primary so lagging cursors fall off the
            // live log and shipping must take the snapshot path.
            if let Some(db) = cluster.primary_db() {
                let _ = db.checkpoint();
            }
        }
    }

    // The storm passes: faults off, links healed, everyone restarts.
    drop(guard);
    cluster.heal_all();
    for id in 0..NODES {
        if cluster.node(id).is_none() {
            cluster
                .restart_node(id)
                .map_err(|e| ctx(&format!("restart node {id}: {e}")))?;
        }
    }
    let mut settled = false;
    for _ in 0..100 {
        cluster.tick();
        let status = cluster.status();
        if status.primary.is_some() && status.max_lag == 0 {
            settled = true;
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    let reads = reader.join().expect("reader thread");
    if reads == 0 {
        return Err(ctx("the reader thread never completed a read"));
    }
    if !settled {
        return Err(ctx(&format!(
            "LIVENESS: cluster never settled after healing: {:?}",
            cluster.status()
        )));
    }
    for _ in 0..10 {
        if cluster.anti_entropy().is_ok() {
            break;
        }
        cluster.tick();
    }
    let _ = cluster.pump();

    // 1. Zero acked-write loss (the quorum guarantee).
    if quorum {
        let final_db = cluster
            .primary_db()
            .ok_or_else(|| ctx("no primary after settling"))?;
        let snapshot = final_db.db().snapshot();
        for (i, op) in acked.iter().enumerate() {
            if !effect_visible(&snapshot, op) {
                return Err(ctx(&format!(
                    "LOST ACKED WRITE: acked op #{i} {op:?} is missing from the \
                     final primary"
                )));
            }
        }
    }

    // 2. Promotions carry strictly ascending epochs.
    let status = cluster.status();
    for pair in status.promotions.windows(2) {
        if pair[1].0 <= pair[0].0 {
            return Err(ctx(&format!(
                "EPOCH REGRESSION: promotion history {:?} is not strictly ascending",
                status.promotions
            )));
        }
    }

    // 3. Anti-entropy converged: every node holds identical digests.
    let reference = node_digests(&cluster.db_of(0).expect("node 0 is live"));
    for id in 1..NODES {
        let theirs = node_digests(&cluster.db_of(id).expect("node is live"));
        if theirs != reference {
            return Err(ctx(&format!(
                "DIGEST DIVERGENCE after healing: node 0 {reference:?} vs node {id} \
                 {theirs:?} (status {:?})",
                cluster.status()
            )));
        }
    }

    // 4. The healed cluster still takes and replicates writes. On no-
    //    failover seeds, first byte-compare the primary against the
    //    model of locally-applied ops.
    if status.promotions.len() == 1 {
        let mut model = MultiUserDb::new(tiny_env(), tiny_relation(), 2);
        for op in &applied {
            op.apply_multi(&mut model)
                .map_err(|e| ctx(&format!("model apply: {e}")))?;
        }
        let final_db = cluster.primary_db().expect("primary is live");
        let mut want = Vec::new();
        let mut got = Vec::new();
        ctxpref_storage::write_multi_user(&mut want, &model)
            .map_err(|e| ctx(&format!("serialize model: {e}")))?;
        ctxpref_storage::write_multi_user(&mut got, &final_db.db().snapshot())
            .map_err(|e| ctx(&format!("serialize primary: {e}")))?;
        if want != got {
            return Err(ctx(&format!(
                "STATE DIVERGENCE without failover: model {} bytes vs primary {} bytes",
                want.len(),
                got.len()
            )));
        }
    }
    cluster
        .write(&WalOp::AddUser {
            user: "post-chaos-probe".into(),
        })
        .map_err(|e| ctx(&format!("healed cluster refused a write: {e}")))?;
    let _ = cluster.pump();
    for id in 0..NODES {
        let db = cluster.db_of(id).expect("node is live");
        if !db
            .db()
            .users_sorted()
            .contains(&"post-chaos-probe".to_string())
        {
            return Err(ctx(&format!("probe write did not replicate to node {id}")));
        }
    }
    Ok(())
}

/// The matrix: `CTXPREF_FUZZ_SEEDS=a..b` overrides the default 0..32.
fn seed_range() -> std::ops::Range<u64> {
    let Ok(spec) = std::env::var("CTXPREF_FUZZ_SEEDS") else {
        return 0..32;
    };
    let parse = |s: &str| s.trim().parse::<u64>().ok();
    match spec.split_once("..").map(|(a, b)| (parse(a), parse(b))) {
        Some((Some(a), Some(b))) if a < b => a..b,
        _ => panic!("CTXPREF_FUZZ_SEEDS must look like '0..32', got {spec:?}"),
    }
}

#[test]
fn replication_chaos_matrix() {
    let _serial = fault_lock();
    for seed in seed_range() {
        if let Err(violation) = run_chaos_seed(seed) {
            panic!(
                "REPLICATION VIOLATION (reproduce with CTXPREF_FUZZ_SEEDS={seed}..{}):\n\
                 {violation}",
                seed + 1
            );
        }
    }
}

#[test]
fn quorum_write_requires_a_majority() {
    let _serial = fault_lock();
    let tmp = TempDir::new("quorum");
    let mut cfg = ClusterConfig::new(NODES);
    cfg.shards = SHARDS;
    let cluster = Cluster::new(&tmp.0, cfg, make_core).unwrap();

    cluster
        .write(&WalOp::AddUser {
            user: "alice".into(),
        })
        .unwrap();
    // One replica down: 2 of 3 still ack.
    cluster.crash_node(2);
    cluster
        .write(&WalOp::AddUser { user: "bob".into() })
        .unwrap();
    // Both replicas down: the primary refuses to acknowledge.
    cluster.crash_node(1);
    match cluster.write(&WalOp::AddUser {
        user: "carol".into(),
    }) {
        Err(ReplicationError::QuorumFailed {
            acked: 1,
            needed: 2,
        }) => {}
        other => panic!("expected QuorumFailed, got {other:?}"),
    }
    // The write stayed on the primary's log (it may replicate later) —
    // it just was not acknowledged.
    assert!(cluster
        .primary_db()
        .unwrap()
        .db()
        .users_sorted()
        .contains(&"carol".to_string()));

    // A replica returns: quorum (and acks) resume, and the unacked
    // write replicates with everything else.
    cluster.restart_node(1).unwrap();
    cluster
        .write(&WalOp::AddUser {
            user: "dave".into(),
        })
        .unwrap();
    // "dave"'s quorum ship only covers his own shard; pump the rest.
    cluster.pump().unwrap();
    let replica = cluster.db_of(1).unwrap();
    for user in ["alice", "bob", "carol", "dave"] {
        assert!(
            replica.db().users_sorted().contains(&user.to_string()),
            "{user} missing on the replica"
        );
    }
}

#[test]
fn failover_fences_the_deposed_primary() {
    let _serial = fault_lock();
    let tmp = TempDir::new("fence");
    let mut cfg = ClusterConfig::new(NODES);
    cfg.shards = SHARDS;
    cfg.heartbeat_threshold = 2;
    let cluster = Cluster::new(&tmp.0, cfg, make_core).unwrap();
    cluster
        .write(&WalOp::AddUser {
            user: "alice".into(),
        })
        .unwrap();
    cluster.pump().unwrap();

    // Isolate the primary; replicas miss heartbeats and fail over.
    cluster.partition(0, 1);
    cluster.partition(0, 2);
    let mut promoted = None;
    for _ in 0..10 {
        if let Some(p) = cluster.tick().promoted {
            promoted = Some(p);
            break;
        }
    }
    let (epoch, new_primary) = promoted.expect("auto-failover never promoted");
    assert_ne!(new_primary, 0, "the isolated primary cannot be re-promoted");
    assert!(epoch > 1, "promotion must mint a fresh epoch, got {epoch}");

    // The old primary still *believes* — until the partition heals and
    // the first peer it ships to fences it.
    let old = cluster.node(0).unwrap();
    assert!(
        old.is_primary(),
        "the isolated node cannot know it was deposed yet"
    );
    cluster.heal_all();
    match cluster.write_via(
        0,
        &WalOp::AddUser {
            user: "split-brain".into(),
        },
    ) {
        Err(ReplicationError::Fenced { epoch: fenced_by }) => {
            assert!(
                fenced_by >= epoch,
                "fenced by {fenced_by}, promotion was {epoch}"
            )
        }
        other => panic!("expected the deposed primary to be fenced, got {other:?}"),
    }
    assert!(!old.is_primary(), "a fenced primary must demote");
    assert_eq!(cluster.primary(), Some(new_primary));

    // Its divergent write is discarded by anti-entropy; the cluster
    // converges on the new primary's history.
    for _ in 0..5 {
        cluster.tick();
    }
    cluster.anti_entropy().unwrap();
    cluster.pump().unwrap();
    let reference = node_digests(&cluster.db_of(new_primary).unwrap());
    for id in 0..NODES {
        assert_eq!(
            node_digests(&cluster.db_of(id).unwrap()),
            reference,
            "node {id} diverged after anti-entropy"
        );
    }
    assert!(
        !cluster
            .db_of(0)
            .unwrap()
            .db()
            .users_sorted()
            .contains(&"split-brain".to_string()),
        "the unacked split-brain write must not survive anti-entropy"
    );
}

#[test]
fn promotion_refuses_without_a_majority() {
    let _serial = fault_lock();
    let tmp = TempDir::new("noquorum");
    let mut cfg = ClusterConfig::new(NODES);
    cfg.shards = SHARDS;
    let cluster = Cluster::new(&tmp.0, cfg, make_core).unwrap();
    cluster.crash_primary();
    cluster.crash_node(1);
    match cluster.promote(2) {
        Err(ReplicationError::NoQuorumForPromotion {
            reached: 1,
            needed: 2,
        }) => {}
        other => panic!("expected NoQuorumForPromotion, got {other:?}"),
    }
    assert_eq!(cluster.primary(), None);
    // Once a peer returns the same promotion succeeds.
    cluster.restart_node(1).unwrap();
    let epoch = cluster.promote(2).unwrap();
    assert!(epoch > 1);
    assert_eq!(cluster.primary(), Some(2));
}

/// Satellite: a replica that crashes mid-catch-up resumes from its
/// recovered position without double-applying records it already had.
#[test]
fn replica_crash_mid_catchup_does_not_double_apply() {
    let _serial = fault_lock();
    let tmp = TempDir::new("idem");
    let mut cfg = ClusterConfig::new(NODES);
    cfg.shards = SHARDS;
    cfg.ack_mode = AckMode::Async;
    // Group commit: the crash loses the replica's unsynced tail, so
    // restart genuinely re-receives records it applied before.
    cfg.wal = WalOptions {
        sync: SyncPolicy::GroupCommit {
            flush_interval: Duration::from_millis(5),
        },
        segment_max_bytes: 512,
    };
    let cluster = Cluster::new(&tmp.0, cfg, make_core).unwrap();

    // One user, many inserts: a double-apply would inflate the count.
    cluster
        .write(&WalOp::AddUser {
            user: "counted".into(),
        })
        .unwrap();
    let mut workload = MonotoneWorkload::new(99);
    for _ in 0..40 {
        let op = workload.next_op();
        cluster.write(&op).unwrap();
    }
    cluster.pump().unwrap();

    // Mid-catch-up crash: the replica drops with unsynced state, then
    // recovers and re-enters shipping at whatever LSN survived.
    cluster.crash_node(1);
    for _ in 0..20 {
        cluster.write(&workload.next_op()).unwrap();
    }
    cluster.restart_node(1).unwrap();
    cluster.pump().unwrap();

    let primary = cluster.primary_db().unwrap().db().snapshot();
    let replica = cluster.db_of(1).unwrap().db().snapshot();
    for user in cluster.primary_db().unwrap().db().users_sorted() {
        let want = primary.profile(&user).unwrap().preferences().len();
        let got = replica.profile(&user).unwrap().preferences().len();
        assert_eq!(
            got, want,
            "{user}: replica has {got} preferences, primary {want}"
        );
    }
    assert_eq!(
        node_digests(&cluster.primary_db().unwrap()),
        node_digests(&cluster.db_of(1).unwrap()),
        "replica must converge exactly, no duplicates, no holes"
    );
}

/// A replica that falls behind the primary's checkpoint GC catches up
/// via snapshot install instead of record shipping.
#[test]
fn gc_lagged_replica_catches_up_by_snapshot() {
    let _serial = fault_lock();
    let tmp = TempDir::new("snapcatch");
    let mut cfg = ClusterConfig::new(NODES);
    cfg.shards = SHARDS;
    cfg.ack_mode = AckMode::Async;
    let cluster = Cluster::new(&tmp.0, cfg, make_core).unwrap();

    cluster.crash_node(2);
    let mut workload = MonotoneWorkload::new(7);
    for _ in 0..60 {
        cluster.write(&workload.next_op()).unwrap();
    }
    // Checkpoint twice: the first GCs segments into the snapshot, the
    // second advances first_live_segment past everything node 2 needs.
    cluster.primary_db().unwrap().checkpoint().unwrap();
    cluster.write(&workload.next_op()).unwrap();
    cluster.primary_db().unwrap().checkpoint().unwrap();

    cluster.restart_node(2).unwrap();
    cluster.pump().unwrap();
    assert_eq!(
        node_digests(&cluster.primary_db().unwrap()),
        node_digests(&cluster.db_of(2).unwrap()),
        "snapshot catch-up must reproduce the primary exactly"
    );
    // And the replica keeps taking normal record shipping afterwards.
    cluster
        .write(&WalOp::AddUser {
            user: "after-snapshot".into(),
        })
        .unwrap();
    cluster.pump().unwrap();
    assert!(cluster
        .db_of(2)
        .unwrap()
        .db()
        .users_sorted()
        .contains(&"after-snapshot".to_string()));
}
