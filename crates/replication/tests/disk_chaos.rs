//! Replica-backed repair under disk-fault chaos.
//!
//! The single-node disk-chaos matrix (`ctxpref-wal`) proves scrub,
//! quarantine, and quarantine-aware recovery; this suite proves the
//! **repair** half of the story: a replica whose log suffix was
//! quarantined — and whose healing checkpoint was made to fail, so the
//! loss is real — restarts clean-but-behind and re-fetches everything
//! from a healthy peer through ordinary shipping (with the snapshot
//! fallback) and anti-entropy. Per seed it asserts:
//!
//! 1. **No acked-write loss while a healthy replica exists**: every op
//!    the cluster acknowledged is visible on every node after repair.
//! 2. **No panic under any injected disk fault.**
//! 3. **Digest convergence after repair**: all three nodes byte-equal.
//!
//! Override the matrix with `CTXPREF_FUZZ_SEEDS=a..b` (default 0..32).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use ctxpref_context::ContextDescriptor;
use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_faults::{at_rest, sites, FaultPlan};
use ctxpref_profile::{AttributeClause, ContextualPreference};
use ctxpref_replication::{node_digests, AckMode, Cluster, ClusterConfig};
use ctxpref_storage::pref_tokens;
use ctxpref_wal::segment::SEGMENT_HEADER;
use ctxpref_wal::{tiny_env, tiny_relation, SyncPolicy, WalOp, WalOptions};

/// Fault plans are process-global; every test here serializes.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-repl-disk-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const NODES: usize = 3;
const SHARDS: usize = 4;

fn make_core() -> Arc<ShardedMultiUserDb> {
    Arc::new(ShardedMultiUserDb::new(
        tiny_env(),
        tiny_relation(),
        2,
        SHARDS,
    ))
}

fn config_for_seed(seed: u64) -> ClusterConfig {
    ClusterConfig {
        nodes: NODES,
        shards: SHARDS,
        ack_mode: if seed.is_multiple_of(2) {
            AckMode::Quorum
        } else {
            AckMode::Async
        },
        wal: WalOptions {
            sync: if (seed / 2).is_multiple_of(2) {
                SyncPolicy::PerRecord
            } else {
                SyncPolicy::GroupCommit {
                    flush_interval: Duration::from_millis(5),
                }
            },
            // Small segments so the workload seals several per node —
            // at-rest damage needs a sealed file to bite.
            segment_max_bytes: 256,
        },
        batch_max: 16,
        heartbeat_threshold: 2,
        auto_failover: true,
    }
}

/// Monotone workload: unique users and clause values, never removed,
/// so "this acked op's effect is visible" is a final-state predicate.
fn op_for(i: u64) -> WalOp {
    if i.is_multiple_of(3) {
        WalOp::AddUser {
            user: format!("u{}", i / 3),
        }
    } else {
        let rel = tiny_relation();
        let attr = rel.schema().require_attr("name").unwrap();
        let pref = ContextualPreference::new(
            ContextDescriptor::empty(),
            AttributeClause::eq(attr, format!("v{i}").into()),
            0.5,
        )
        .unwrap();
        WalOp::InsertPreference {
            user: format!("u{}", i / 3),
            pref,
        }
    }
}

/// Whether `op`'s effect is visible in `db` (monotone workload only).
fn effect_visible(db: &MultiUserDb, op: &WalOp) -> bool {
    match op {
        WalOp::AddUser { user } => db.profile(user).is_ok(),
        WalOp::InsertPreference { user, pref } => {
            let Ok(profile) = db.profile(user) else {
                return false;
            };
            let want = pref_tokens(pref, db.env(), db.relation());
            profile
                .preferences()
                .iter()
                .any(|p| pref_tokens(p, db.env(), db.relation()) == want)
        }
        _ => unreachable!("monotone workload only adds"),
    }
}

/// Sealed segment numbers of `shard` on the node whose db is `db`.
fn sealed_segments(db: &ctxpref_wal::DurableDb, shard: usize) -> Vec<u64> {
    let current = db.wal_status().shards[shard].seg_no;
    let first_live = db.manifest().shards[shard].first_live_segment;
    ctxpref_wal::segment::list_segments(db.dir(), shard)
        .unwrap()
        .into_iter()
        .filter(|&s| s >= first_live && s < current)
        .collect()
}

/// One repair seed: write through the cluster, damage a replica's
/// sealed segment at rest, scrub with the heal sabotaged so the loss
/// sticks, crash + restart through quarantine-aware recovery, and let
/// shipping + anti-entropy repair the node from its healthy peers.
fn run_repair_seed(seed: u64) -> Result<(), String> {
    let ctx = |what: &str| format!("seed={seed}: {what}");
    let tmp = TempDir::new(&format!("seed{seed}"));
    let cluster = Arc::new(
        Cluster::new(&tmp.0, config_for_seed(seed), make_core)
            .map_err(|e| ctx(&format!("boot: {e}")))?,
    );

    let mut acked: Vec<WalOp> = Vec::new();
    for i in 0..90 {
        let op = op_for(i);
        if cluster.write(&op).is_ok() {
            acked.push(op);
        }
        if i % 4 == 0 {
            let _ = cluster.pump();
            cluster.tick();
        }
    }
    while let Ok(true) = cluster.pump() {}
    if acked.len() < 60 {
        return Err(ctx(&format!("only {} of 90 writes acked", acked.len())));
    }

    // A scrub pass under injected read errors finds nothing to
    // quarantine on any node — a flaky disk read is not corruption.
    let plan = FaultPlan::builder(seed)
        .fail(sites::WAL_SCRUB, 0.5)
        .fail(sites::CHECKPOINT_READ, 0.5)
        .build();
    plan.run(|| -> Result<(), String> {
        for id in 0..NODES {
            let report = cluster
                .scrub_node(id)
                .map_err(|e| ctx(&format!("clean scrub node {id}: {e}")))?;
            if report.found_damage() {
                return Err(ctx(&format!("phantom quarantine on node {id}: {report:?}")));
            }
        }
        Ok(())
    })?;

    // At-rest damage on a replica: bit flip on even seeds, truncation
    // on odd. The victim is never the primary — the healthy copy must
    // survive for repair to have a source.
    let victim = 1 + (seed as usize) % (NODES - 1);
    assert_ne!(cluster.primary(), Some(victim));
    let victim_db = cluster
        .db_of(victim)
        .ok_or_else(|| ctx("victim not live"))?;
    let mut damaged = None;
    for probe in 0..SHARDS {
        let shard = ((seed as usize) + probe) % SHARDS;
        if let Some(&seg_no) = sealed_segments(&victim_db, shard).first() {
            let path = ctxpref_wal::segment::segment_path(victim_db.dir(), shard, seg_no);
            let hurt = if seed.is_multiple_of(2) {
                at_rest::flip_bit(&path, seed, SEGMENT_HEADER as u64)
            } else {
                at_rest::truncate(&path, seed, SEGMENT_HEADER as u64)
            }
            .map_err(|e| ctx(&format!("damage injection: {e}")))?;
            if hurt.is_some() {
                damaged = Some(shard);
                break;
            }
        }
    }
    let Some(_damaged_shard) = damaged else {
        return Err(ctx("workload sealed no segments on the victim"));
    };
    drop(victim_db);

    // Scrub the victim with its healing checkpoint sabotaged (the
    // manifest swap fails), so the quarantine stays authoritative and
    // the node has genuinely lost a log suffix.
    let plan = FaultPlan::builder(seed)
        .fail_at(sites::MANIFEST_SWAP, &[1])
        .build();
    let report = plan.run(|| cluster.scrub_node(victim));
    let report = report.map_err(|e| ctx(&format!("victim scrub: {e}")))?;
    if !report.found_damage() {
        return Err(ctx(&format!(
            "scrub missed the injected damage: {report:?}"
        )));
    }
    if report.healed {
        return Err(ctx("the sabotaged heal reported success"));
    }

    // Crash + restart: recovery consults quarantine and the node comes
    // back clean-but-behind instead of refusing to start.
    cluster.crash_node(victim);
    cluster
        .restart_node(victim)
        .map_err(|e| ctx(&format!("rescued restart: {e}")))?;
    let status = cluster.status();
    if status.nodes[victim].rescued_shards == 0 {
        return Err(ctx(&format!(
            "recovery did not use the quarantine: {status:?}"
        )));
    }
    if status.scrub_passes < (NODES + 1) as u64 || status.scrub_quarantined == 0 {
        return Err(ctx(&format!("scrub counters not surfaced: {status:?}")));
    }

    // Repair: heartbeats re-learn the victim's true position, shipping
    // re-sends the lost suffix (snapshot fallback if it was GC'd), and
    // anti-entropy sweeps whatever remains.
    let mut settled = false;
    for _ in 0..200 {
        cluster.tick();
        let _ = cluster.pump();
        let status = cluster.status();
        if status.primary.is_some() && status.max_lag == 0 {
            settled = true;
            break;
        }
    }
    if !settled {
        return Err(ctx(&format!(
            "victim never caught up: {:?}",
            cluster.status()
        )));
    }
    for _ in 0..10 {
        if cluster.anti_entropy().is_ok() {
            break;
        }
        cluster.tick();
    }
    let _ = cluster.pump();

    // 1. No acked-write loss: every acked op on every node.
    for id in 0..NODES {
        let db = cluster.db_of(id).ok_or_else(|| ctx("node not live"))?;
        let snapshot = db.db().snapshot();
        for (i, op) in acked.iter().enumerate() {
            if !effect_visible(&snapshot, op) {
                return Err(ctx(&format!(
                    "LOST ACKED WRITE: op #{i} {op:?} missing from node {id} after repair"
                )));
            }
        }
    }

    // 3. Digest convergence after repair.
    let reference = node_digests(&cluster.db_of(0).expect("node 0 live"));
    for id in 1..NODES {
        let theirs = node_digests(&cluster.db_of(id).expect("node live"));
        if theirs != reference {
            return Err(ctx(&format!(
                "DIGEST DIVERGENCE after repair: node 0 {reference:?} vs node {id} {theirs:?}"
            )));
        }
    }

    // The repaired cluster still takes and replicates a fresh write.
    cluster
        .write(&WalOp::AddUser {
            user: "post-repair-probe".into(),
        })
        .map_err(|e| ctx(&format!("repaired cluster refused a write: {e}")))?;
    let _ = cluster.pump();
    for id in 0..NODES {
        let db = cluster.db_of(id).expect("node live");
        if !db
            .db()
            .users_sorted()
            .contains(&"post-repair-probe".to_string())
        {
            return Err(ctx(&format!("probe write did not reach node {id}")));
        }
    }
    Ok(())
}

/// A successfully-healed scrub needs no restart at all: the replica
/// quarantines the rotten file, cuts a fresh checkpoint, and keeps
/// serving — and a later crash recovers cleanly with zero rescues.
#[test]
fn healed_replica_keeps_serving_without_repair() {
    let _serial = fault_lock();
    let tmp = TempDir::new("healed");
    let cluster = Cluster::new(&tmp.0, config_for_seed(0), make_core).unwrap();
    let mut acked = Vec::new();
    for i in 0..90 {
        let op = op_for(i);
        if cluster.write(&op).is_ok() {
            acked.push(op);
        }
        if i % 4 == 0 {
            let _ = cluster.pump();
        }
    }
    while let Ok(true) = cluster.pump() {}

    let victim = 1;
    let victim_db = cluster.db_of(victim).unwrap();
    let shard = (0..SHARDS)
        .find(|&s| !sealed_segments(&victim_db, s).is_empty())
        .expect("no sealed segments on the victim");
    let seg_no = sealed_segments(&victim_db, shard)[0];
    let path = ctxpref_wal::segment::segment_path(victim_db.dir(), shard, seg_no);
    at_rest::flip_bit(&path, 7, SEGMENT_HEADER as u64)
        .unwrap()
        .expect("segment has no payload");
    drop(victim_db);

    let report = cluster.scrub_node(victim).unwrap();
    assert!(report.found_damage(), "{report:?}");
    assert!(report.healed, "{report:?}");

    // No restart, no repair: the node's state never flinched.
    cluster.crash_node(victim);
    cluster.restart_node(victim).unwrap();
    assert_eq!(
        cluster.status().nodes[victim].rescued_shards,
        0,
        "a healed directory must recover without a rescue"
    );
    let snapshot = cluster.db_of(victim).unwrap().db().snapshot();
    for op in &acked {
        assert!(effect_visible(&snapshot, op), "lost {op:?} after heal");
    }
}

/// The matrix: `CTXPREF_FUZZ_SEEDS=a..b` overrides the default 0..32.
fn seed_range() -> std::ops::Range<u64> {
    let Ok(spec) = std::env::var("CTXPREF_FUZZ_SEEDS") else {
        return 0..32;
    };
    let parse = |s: &str| s.trim().parse::<u64>().ok();
    match spec.split_once("..").map(|(a, b)| (parse(a), parse(b))) {
        Some((Some(a), Some(b))) if a < b => a..b,
        _ => panic!("CTXPREF_FUZZ_SEEDS must look like '0..32', got {spec:?}"),
    }
}

#[test]
fn replica_repair_matrix() {
    let _serial = fault_lock();
    for seed in seed_range() {
        let outcome = std::panic::catch_unwind(|| run_repair_seed(seed));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(violation)) => panic!(
                "REPAIR VIOLATION (reproduce with CTXPREF_FUZZ_SEEDS={seed}..{}):\n{violation}",
                seed + 1
            ),
            Err(p) => {
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic".to_string());
                panic!("PANIC under disk fault, seed {seed}: {msg}");
            }
        }
    }
}
