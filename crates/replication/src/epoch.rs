//! Durable epoch (fencing term) persistence.
//!
//! Each node stores its highest-seen epoch in an `EPOCH` file inside
//! its durable directory, swapped atomically (write-temp + fsync +
//! rename) like the checkpoint manifest. A deposed primary that
//! crashes and restarts therefore comes back *knowing* it was deposed:
//! its first shipped batch is fenced by every peer, and it demotes
//! instead of splitting the brain.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// The epoch file's name inside a node's durable directory.
pub const EPOCH_FILE: &str = "EPOCH";

/// Atomically persist `epoch` under `dir`.
pub fn save_epoch(dir: &Path, epoch: u64) -> std::io::Result<()> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!("{EPOCH_FILE}.tmp.{}.{n}", std::process::id()));
    let mut f = File::create(&tmp)?;
    writeln!(f, "epoch {epoch}")?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, dir.join(EPOCH_FILE))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Load the persisted epoch; a missing or unparsable file is epoch 0
/// (a node that never saw a promotion).
pub fn load_epoch(dir: &Path) -> u64 {
    std::fs::read_to_string(dir.join(EPOCH_FILE))
        .ok()
        .and_then(|text| text.strip_prefix("epoch ")?.trim().parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-repl-epoch-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn epoch_round_trips_and_defaults_to_zero() {
        let dir = tempdir();
        assert_eq!(load_epoch(&dir), 0);
        save_epoch(&dir, 7).unwrap();
        assert_eq!(load_epoch(&dir), 7);
        save_epoch(&dir, 8).unwrap();
        assert_eq!(load_epoch(&dir), 8);
    }
}
