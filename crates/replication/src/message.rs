//! The replication wire vocabulary.
//!
//! Every message travels in an [`Envelope`] stamped with the sender's
//! node id and **epoch**. The epoch is the fencing token: a receiver
//! whose own epoch is higher rejects the message with [`Reply::Fenced`]
//! (the sender was deposed and must demote), and a receiver seeing a
//! *higher* epoch adopts it first — so a single stale primary can never
//! overwrite state the new epoch's primary is responsible for.

use ctxpref_profile::Profile;

/// A node's identity within one replication cluster (its index).
pub type NodeId = usize;

/// One shipped log record: the primary-assigned LSN and the framed
/// payload bytes (the same text-line dialect the WAL itself stores).
pub type ShippedRecord = (u64, Vec<u8>);

/// What a replication message asks the receiver to do.
#[derive(Debug, Clone)]
pub enum Message {
    /// Apply these records to one shard, in LSN order.
    Records {
        /// The WAL shard (== core stripe) the records belong to.
        shard: usize,
        /// The records, contiguous and ascending by LSN.
        records: Vec<ShippedRecord>,
    },
    /// Install a full snapshot: per-stripe users plus the LSN watermark
    /// each stripe was cut at (bootstrap / lagging-replica catch-up).
    Snapshot {
        /// Users per stripe, indexed like the receiver's shards.
        stripes: Vec<Vec<(String, Profile)>>,
        /// Per-shard watermark LSNs.
        lsns: Vec<u64>,
    },
    /// Liveness probe; the reply carries the receiver's applied LSNs.
    Heartbeat,
    /// Ask for the receiver's per-shard anti-entropy digests.
    DigestRequest,
    /// Replace one divergent shard outright (anti-entropy repair).
    Resync {
        /// The shard to replace.
        shard: usize,
        /// The shard's authoritative contents.
        users: Vec<(String, Profile)>,
        /// The LSN the shard's sequence continues after.
        last_lsn: u64,
    },
}

impl Message {
    /// Whether this is a heartbeat (they pass through their own
    /// fault site so the failure detector can be exercised without
    /// touching data traffic).
    pub fn is_heartbeat(&self) -> bool {
        matches!(self, Self::Heartbeat)
    }
}

/// A message plus its routing and fencing metadata.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// The sending node.
    pub from: NodeId,
    /// The sender's epoch at send time.
    pub epoch: u64,
    /// The request itself.
    pub msg: Message,
}

/// What the receiver did with a message.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Records were applied (duplicates skipped); the shard now needs
    /// `next_lsn` next. A `next_lsn` at or below the batch's first LSN
    /// means nothing applied — the sender's cursor must move there
    /// (or fall back to a snapshot if its log no longer has it).
    Progress {
        /// The LSN the receiving shard needs next.
        next_lsn: u64,
    },
    /// The snapshot was installed and checkpointed.
    SnapshotInstalled,
    /// Heartbeat acknowledgement.
    Beat {
        /// The receiver's epoch.
        epoch: u64,
        /// The receiver's last applied LSN per shard.
        applied: Vec<u64>,
    },
    /// Per-shard anti-entropy digests.
    Digests {
        /// FNV-1a digest per shard, canonical across nodes.
        digests: Vec<u64>,
    },
    /// The divergent shard was replaced and checkpointed.
    Resynced,
    /// The sender's epoch is stale: it was deposed. The sender must
    /// adopt `current` and demote itself.
    Fenced {
        /// The receiver's (higher) epoch.
        current: u64,
    },
    /// The receiver failed to process the message (durable-layer
    /// error); the sender should retry later.
    Failed {
        /// Human-readable cause.
        reason: String,
    },
}
