//! One replication participant: a [`DurableDb`] plus its fencing epoch
//! and role.
//!
//! A node is symmetric — the same `handle` services a replica applying
//! shipped records, a new primary pulling catch-up records from a peer
//! during promotion, and anti-entropy in either direction. Role only
//! gates the *client* write path (the cluster routes writes to the
//! node it believes is primary; a deposed primary's shipments are
//! fenced by epoch, not by role).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ctxpref_wal::{DurableDb, ReplApply, ScrubReport, WalError, WalOptions};

use crate::digest::node_digests;
use crate::epoch::{load_epoch, save_epoch};
use crate::message::{Envelope, Message, NodeId, Reply};

/// One cluster participant.
#[derive(Debug)]
pub struct ReplNode {
    id: NodeId,
    dir: PathBuf,
    db: Arc<DurableDb>,
    /// Highest epoch this node has seen (persisted in `EPOCH`).
    epoch: AtomicU64,
    /// Whether this node currently believes it is the primary.
    primary: AtomicBool,
    /// WAL shards this node's recovery rescued via quarantine (a scrub
    /// — or a crash mid-heal — had pulled segments out of service, so
    /// the node restarted clean-but-behind instead of refusing; the
    /// missing suffix re-ships from a healthy peer).
    rescued_shards: u64,
}

impl ReplNode {
    /// Wrap a freshly created durable db as node `id` with `epoch`.
    pub fn new(id: NodeId, dir: &Path, db: Arc<DurableDb>, epoch: u64, primary: bool) -> Self {
        let _ = save_epoch(dir, epoch);
        Self {
            id,
            dir: dir.to_path_buf(),
            db,
            epoch: AtomicU64::new(epoch),
            primary: AtomicBool::new(primary),
            rescued_shards: 0,
        }
    }

    /// Recover node `id` from its durable directory; the persisted
    /// epoch comes back with it, so a deposed primary restarts already
    /// knowing it was deposed. Restarts always come back as replicas —
    /// a node must be re-promoted (with a fresh epoch) to serve writes.
    pub fn recover(id: NodeId, dir: &Path, opts: WalOptions) -> Result<Self, WalError> {
        let (db, report) = DurableDb::recover(dir, opts)?;
        let epoch = load_epoch(dir);
        Ok(Self {
            id,
            dir: dir.to_path_buf(),
            db: Arc::new(db),
            epoch: AtomicU64::new(epoch),
            primary: AtomicBool::new(false),
            rescued_shards: report.rescued_shards,
        })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The node's durable database.
    pub fn db(&self) -> &Arc<DurableDb> {
        &self.db
    }

    /// The node's current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether the node currently believes it is primary.
    pub fn is_primary(&self) -> bool {
        self.primary.load(Ordering::Acquire)
    }

    /// WAL shards this node's recovery rescued via quarantine (0 on a
    /// clean restart). A non-zero count means the node came back
    /// missing a log suffix and relies on shipping/anti-entropy to
    /// re-fetch it from a healthy peer.
    pub fn rescued_shards(&self) -> u64 {
        self.rescued_shards
    }

    /// One scrub pass over this node's durable directory: verify
    /// sealed segments + checkpoint, quarantine what fails, heal with
    /// a fresh checkpoint. See [`DurableDb::scrub`].
    pub fn scrub(&self) -> Result<ScrubReport, WalError> {
        self.db.scrub()
    }

    /// Promote: adopt `epoch` (persisted before the role flips) and
    /// start accepting writes.
    pub fn promote(&self, epoch: u64) {
        self.adopt_epoch(epoch);
        self.primary.store(true, Ordering::Release);
    }

    /// Demote to replica (deposed, or administratively).
    pub fn demote(&self) {
        self.primary.store(false, Ordering::Release);
    }

    /// Adopt a higher epoch (persist first, then publish). A node that
    /// believed it was primary demotes: a higher epoch exists, so
    /// someone else was promoted over it.
    pub fn adopt_epoch(&self, epoch: u64) {
        if epoch > self.epoch.load(Ordering::Acquire) {
            let _ = save_epoch(&self.dir, epoch);
            self.epoch.store(epoch, Ordering::Release);
        }
    }

    /// Last applied LSN per shard (what the heartbeat reply carries).
    pub fn applied_lsns(&self) -> Vec<u64> {
        self.db
            .wal_status()
            .shards
            .iter()
            .map(|s| s.last_lsn)
            .collect()
    }

    /// Service one incoming message, applying the epoch fence first:
    /// a stale sender is rejected outright; a newer epoch is adopted
    /// (demoting this node if it thought it was primary) before the
    /// message is honoured.
    pub fn handle(&self, env: &Envelope) -> Reply {
        let current = self.epoch();
        if env.epoch < current {
            return Reply::Fenced { current };
        }
        if env.epoch > current {
            self.adopt_epoch(env.epoch);
            if self.is_primary() {
                self.demote();
            }
        }
        match &env.msg {
            Message::Records { shard, records } => self.apply_records(*shard, records),
            Message::Snapshot { stripes, lsns } => {
                match self.db.install_stripes(stripes.clone(), lsns) {
                    Ok(()) => Reply::SnapshotInstalled,
                    Err(e) => Reply::Failed {
                        reason: format!("snapshot install: {e}"),
                    },
                }
            }
            Message::Heartbeat => Reply::Beat {
                epoch: self.epoch(),
                applied: self.applied_lsns(),
            },
            Message::DigestRequest => Reply::Digests {
                digests: node_digests(&self.db),
            },
            Message::Resync {
                shard,
                users,
                last_lsn,
            } => match self.db.resync_shard(*shard, users.clone(), *last_lsn) {
                Ok(()) => Reply::Resynced,
                Err(e) => Reply::Failed {
                    reason: format!("shard resync: {e}"),
                },
            },
        }
    }

    fn apply_records(&self, shard: usize, records: &[(u64, Vec<u8>)]) -> Reply {
        let mut needs_flush = false;
        for (lsn, payload) in records {
            match self.db.apply_replicated(shard, *lsn, payload) {
                Ok(ReplApply::Applied { durable }) => needs_flush |= !durable,
                Ok(ReplApply::Duplicate) => {}
                Ok(ReplApply::Gap { .. }) => break,
                Err(e) => {
                    return Reply::Failed {
                        reason: format!("apply lsn {lsn}: {e}"),
                    }
                }
            }
        }
        if needs_flush {
            // Group-commit replicas fsync per shipped batch, so a
            // Progress reply always means "durably applied through
            // next_lsn - 1" — the property quorum acks count on.
            if let Err(e) = self.db.flush() {
                return Reply::Failed {
                    reason: format!("flush after batch: {e}"),
                };
            }
        }
        // Whatever happened above (applies, duplicates, a gap), the
        // truthful cursor for the sender is where the shard is now.
        Reply::Progress {
            next_lsn: self.applied_lsns()[shard] + 1,
        }
    }
}
