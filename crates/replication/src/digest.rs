//! Anti-entropy digests.
//!
//! A shard's digest is FNV-1a 64 over its users in sorted order — each
//! user's name followed by every preference serialized in the storage
//! crate's token dialect (the same dialect the WAL logs and snapshots
//! save, so anything that round-trips identically digests identically).
//! Two nodes whose shard digests match hold byte-equal shard contents;
//! a mismatch marks the shard for resync.

use ctxpref_context::ContextEnvironment;
use ctxpref_profile::Profile;
use ctxpref_relation::Relation;
use ctxpref_storage::pref_tokens;
use ctxpref_wal::DurableDb;

fn fnv_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest one stripe's users (already sorted by
/// `ShardedMultiUserDb::stripe_users`).
pub fn stripe_digest(env: &ContextEnvironment, rel: &Relation, users: &[(String, Profile)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (name, profile) in users {
        h = fnv_update(h, name.as_bytes());
        h = fnv_update(h, &[0]);
        for pref in profile.preferences() {
            h = fnv_update(h, pref_tokens(pref, env, rel).as_bytes());
            h = fnv_update(h, &[1]);
        }
    }
    h
}

/// Every shard's digest for one node, in shard order.
pub fn node_digests(db: &DurableDb) -> Vec<u64> {
    let core = db.db();
    (0..db.num_shards())
        .map(|ix| stripe_digest(core.env(), core.relation(), &core.stripe_users(ix)))
        .collect()
}
