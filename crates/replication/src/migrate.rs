//! Per-user snapshot and catch-up surface for live migration.
//!
//! A migration moves exactly one user between two *clusters* (not two
//! nodes of one cluster — that is replication's job). The primitives
//! here are deliberately tiny and composable, because the migration
//! *driver* lives in the routing tier and must be able to retry every
//! step idempotently:
//!
//! * [`user_cut`] — a consistent `(profile, shard, last_lsn)` triple
//!   taken under the user's WAL-shard mutex, so the WAL suffix
//!   strictly after `last_lsn` is exactly what the snapshot misses.
//! * [`snapshot_ops`] — the profile rendered as ordinary WAL-op
//!   payloads (`add` + one `ins` per preference). The destination
//!   applies them through its own normal write path and its own LSN
//!   space; nothing about the source's LSNs leaks into it.
//! * [`user_suffix`] — the catch-up cursor: the shard's records after
//!   a cut, filtered down to the migrating user, plus the highest LSN
//!   *scanned* (so the cursor advances past other users' records).
//!   Because replicas mirror the primary's per-shard LSN sequence
//!   exactly, this cursor stays valid across a failover of the source
//!   cluster mid-migration.
//! * [`user_digest`] — an FNV digest of one user's profile in the
//!   same dialect as the anti-entropy stripe digests, compared
//!   source↔destination at cut-over.

use ctxpref_context::ContextEnvironment;
use ctxpref_profile::Profile;
use ctxpref_relation::Relation;
use ctxpref_wal::{DurableDb, UserCut, WalOp};

use crate::digest::stripe_digest;
use crate::error::ReplicationError;

/// A page of the per-user WAL suffix.
#[derive(Debug, Clone, Default)]
pub struct UserSuffix {
    /// The highest LSN scanned (including other users' records); the
    /// next pull should start at `through + 1`. Equal to `from_lsn -
    /// 1` when nothing new was scanned.
    pub through: u64,
    /// `(lsn, payload)` of every scanned record that targets the
    /// migrating user, in LSN order.
    pub records: Vec<(u64, Vec<u8>)>,
}

/// A consistent per-user cut of `db` (see [`DurableDb::user_cut`]).
pub fn user_cut(db: &DurableDb, user: &str) -> UserCut {
    db.user_cut(user)
}

/// Render a profile as the WAL-op payloads that reconstruct it:
/// one `add` plus one `ins` per preference, in profile order. The
/// destination decodes them against its *own* environment and
/// relation, which therefore must match the source's — the same
/// precondition replication itself has.
pub fn snapshot_ops(
    env: &ContextEnvironment,
    rel: &Relation,
    user: &str,
    profile: &Profile,
) -> Vec<Vec<u8>> {
    let mut ops = Vec::with_capacity(1 + profile.preferences().len());
    ops.push(
        WalOp::AddUser {
            user: user.to_string(),
        }
        .encode(env, rel),
    );
    for pref in profile.preferences() {
        ops.push(
            WalOp::InsertPreference {
                user: user.to_string(),
                pref: pref.clone(),
            }
            .encode(env, rel),
        );
    }
    ops
}

/// Read one page of `user`'s WAL suffix: up to `max` records of
/// `shard` with LSN ≥ `from_lsn`, filtered to the records that target
/// `user`. `Ok(None)` means the suffix below `from_lsn` has been
/// garbage-collected into a checkpoint — the caller must restart from
/// a fresh [`user_cut`].
pub fn user_suffix(
    db: &DurableDb,
    user: &str,
    shard: usize,
    from_lsn: u64,
    max: usize,
) -> Result<Option<UserSuffix>, ReplicationError> {
    let Some(records) = db
        .read_shard_from(shard, from_lsn, max)
        .map_err(ReplicationError::Wal)?
    else {
        return Ok(None);
    };
    let core = db.db();
    let mut page = UserSuffix {
        through: from_lsn.saturating_sub(1),
        records: Vec::new(),
    };
    for rec in records {
        page.through = rec.lsn;
        let op = WalOp::decode(&rec.payload, core.env(), core.relation())
            .map_err(ReplicationError::Wal)?;
        if op.user() == user {
            page.records.push((rec.lsn, rec.payload));
        }
    }
    Ok(Some(page))
}

/// FNV digest of one user's profile, in the anti-entropy dialect.
pub fn user_digest(env: &ContextEnvironment, rel: &Relation, user: &str, profile: &Profile) -> u64 {
    stripe_digest(env, rel, &[(user.to_string(), profile.clone())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_core::ShardedMultiUserDb;
    use ctxpref_wal::{tiny_env, tiny_relation, WalOptions};
    use std::sync::Arc;

    fn tmp() -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ctxpref-migrate-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cut_plus_suffix_reconstructs_user() {
        let dir = tmp();
        let env = tiny_env();
        let rel = tiny_relation();
        let core = Arc::new(ShardedMultiUserDb::new(env.clone(), rel.clone(), 2, 2));
        let db = DurableDb::create(&dir, core, WalOptions::default()).unwrap();
        db.add_user("ada").unwrap();
        db.add_user("bob").unwrap();

        let cut = user_cut(&db, "ada");
        let before = cut.profile.clone().unwrap();

        // Mutations after the cut: some for ada, some for bob.
        db.remove_user("bob").unwrap();
        db.add_user("bob").unwrap();

        let page = user_suffix(&db, "ada", cut.shard, cut.last_lsn + 1, 64)
            .unwrap()
            .unwrap();
        // Interleaved bob traffic on the same shard advances the
        // cursor without shipping bob's records.
        assert!(page
            .records
            .iter()
            .all(|(_, p)| { WalOp::decode(p, &env, &rel).unwrap().user() == "ada" }));

        let ops = snapshot_ops(&env, &rel, "ada", &before);
        assert!(!ops.is_empty());
        let d1 = user_digest(&env, &rel, "ada", &before);
        let d2 = user_digest(&env, &rel, "ada", &db.user_cut("ada").profile.unwrap());
        assert_eq!(d1, d2, "no ada mutations since the cut");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn suffix_reports_gc_as_none() {
        let dir = tmp();
        let core = Arc::new(ShardedMultiUserDb::new(tiny_env(), tiny_relation(), 2, 1));
        let db = DurableDb::create(&dir, core, WalOptions::default()).unwrap();
        db.add_user("ada").unwrap();
        db.checkpoint().unwrap();
        db.add_user("bob").unwrap();
        // LSN 1 (ada) was checkpointed away; a cursor below the
        // checkpoint boundary must demand a fresh snapshot.
        assert!(user_suffix(&db, "ada", 0, 1, 8).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
