//! The replication control plane: one primary, N−1 replicas, WAL
//! shipping, failure detection, failover, and anti-entropy.
//!
//! A [`Cluster`] owns the full membership view (which nodes exist,
//! which are live, who is primary) plus the sender-side replication
//! cursors — per replica, per shard, the next LSN that replica needs.
//! Everything a node learns from a peer travels through the
//! [`Transport`], so the chaos suite's injected partitions, drops,
//! delays, and duplicates exercise exactly the paths a socket
//! transport would.
//!
//! Safety properties (asserted by the chaos matrix):
//!
//! * **Quorum acks survive failover.** A [`AckMode::Quorum`] write is
//!   acknowledged only once a majority of the *configured* cluster
//!   holds it durably. Promotion refuses to proceed without reaching a
//!   majority, and the candidate pulls every reachable peer's log
//!   suffix before serving — the two majorities intersect, so every
//!   acked write reaches the new primary.
//! * **Epochs are fenced and monotonic.** Every promotion mints
//!   `max(reachable epochs) + 1`, persisted on the candidate before it
//!   serves. A deposed primary's shipments are rejected by any peer
//!   that saw the newer epoch, and the rejection demotes it.
//! * **Anti-entropy converges.** Divergent suffixes a deposed primary
//!   applied but never replicated are detected by per-shard digest
//!   comparison and discarded by shard resync.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ctxpref_core::ShardedMultiUserDb;
use ctxpref_wal::{Ack, DurableDb, ScrubReport, WalError, WalOp, WalOptions};
use parking_lot::Mutex;

use crate::digest::node_digests;
use crate::error::ReplicationError;
use crate::message::{Envelope, Message, NodeId, Reply};
use crate::node::ReplNode;
use crate::transport::{InProcessTransport, NodeTransport};

/// When a write is acknowledged to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Ack once the primary holds the write; replicas catch up in the
    /// background. Fast, but a primary failure can lose acked writes.
    Async,
    /// Ack only once a majority of the configured cluster holds the
    /// write durably. Failover then provably preserves it.
    Quorum,
}

/// Cluster tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Total configured nodes (majorities are computed against this,
    /// so crashed nodes still count in the denominator).
    pub nodes: usize,
    /// WAL shards per node (must match the serving core's stripes).
    pub shards: usize,
    /// When writes are acknowledged.
    pub ack_mode: AckMode,
    /// Durability options for every node's WAL.
    pub wal: WalOptions,
    /// Records per shipped batch.
    pub batch_max: usize,
    /// Consecutive missed heartbeats (ticks) before the primary is
    /// declared dead.
    pub heartbeat_threshold: u32,
    /// Whether [`Cluster::tick`] promotes automatically on primary
    /// failure; off, failover is [`Cluster::promote`]-only.
    pub auto_failover: bool,
}

impl ClusterConfig {
    /// A sensible starting config for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            shards: 4,
            ack_mode: AckMode::Quorum,
            wal: WalOptions::default(),
            batch_max: 64,
            heartbeat_threshold: 3,
            auto_failover: true,
        }
    }
}

/// A role/liveness snapshot of one node.
#[derive(Debug, Clone, Copy)]
pub struct NodeStatus {
    /// The node.
    pub id: NodeId,
    /// Whether the node is currently live (registered, not crashed).
    pub live: bool,
    /// Whether the node believes it is primary.
    pub is_primary: bool,
    /// The node's current epoch.
    pub epoch: u64,
    /// Total applied LSNs across shards (its replication position).
    pub applied: u64,
    /// Shards the node's last recovery rescued via quarantine (it came
    /// back clean-but-behind and repairs through shipping).
    pub rescued_shards: u64,
}

/// A point-in-time view of the cluster.
#[derive(Debug, Clone)]
pub struct ClusterStatus {
    /// The node the cluster routes writes to, if any.
    pub primary: Option<NodeId>,
    /// The highest epoch any live node holds.
    pub epoch: u64,
    /// Every promotion so far as `(epoch, node)`, in order. Strictly
    /// ascending epochs — the chaos suite asserts it.
    pub promotions: Vec<(u64, NodeId)>,
    /// Per-node status.
    pub nodes: Vec<NodeStatus>,
    /// How far the laggiest live replica trails the primary, in
    /// applied records (0 with no primary or no live replica).
    pub max_lag: u64,
    /// Scrub passes completed through [`Cluster::scrub_node`].
    pub scrub_passes: u64,
    /// Files those passes quarantined, cluster-wide.
    pub scrub_quarantined: u64,
}

/// What one [`Cluster::tick`] did.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickReport {
    /// A failover promoted this node at this epoch.
    pub promoted: Option<(u64, NodeId)>,
    /// The acting primary was fenced by a peer this tick (it demoted).
    pub fenced: bool,
}

/// Hook invoked on role changes: `(node, epoch)`.
pub type RoleHook = Box<dyn Fn(NodeId, u64) + Send + Sync>;

enum Ship {
    /// The replica accepted records (or a snapshot); cursor updated.
    Advanced,
    /// The replica already has everything the sender's log holds.
    CaughtUp,
}

struct ClusterState {
    nodes: Vec<Option<Arc<ReplNode>>>,
    primary: Option<NodeId>,
    /// Per replica: the next LSN each shard needs (sender-side view);
    /// absent entries are re-learned by heartbeat before shipping.
    cursors: HashMap<NodeId, Vec<u64>>,
    /// Consecutive ticks each replica failed to reach the primary.
    missed: Vec<u32>,
    promotions: Vec<(u64, NodeId)>,
    /// Scrub passes completed through [`Cluster::scrub_node`].
    scrub_passes: u64,
    /// Files those passes quarantined, cluster-wide.
    scrub_quarantined: u64,
}

/// A primary/replica group over one [`NodeTransport`] — in-process by
/// default, or any pluggable implementation (e.g. a socket transport)
/// via [`Cluster::new_with_transport`].
pub struct Cluster {
    config: ClusterConfig,
    dirs: Vec<PathBuf>,
    transport: Arc<dyn NodeTransport>,
    state: Mutex<ClusterState>,
    on_promotion: Mutex<Option<RoleHook>>,
    on_demotion: Mutex<Option<RoleHook>>,
}

impl Cluster {
    /// Bootstrap a fresh cluster under `root`: node `i` gets durable
    /// directory `root/node-<i>`, node 0 starts as primary at epoch 1.
    /// `make_core` builds one empty serving core per node (they must be
    /// configured identically — same environment, relation, ordering).
    pub fn new(
        root: &Path,
        config: ClusterConfig,
        make_core: impl Fn() -> Arc<ShardedMultiUserDb>,
    ) -> Result<Self, ReplicationError> {
        Self::new_with_transport(root, config, make_core, Arc::new(InProcessTransport::new()))
    }

    /// [`Cluster::new`] over an explicit transport, so nodes can talk
    /// through real sockets (`ctxpref-net`'s `TcpTransport`) instead of
    /// the in-process registry. The control plane is identical either
    /// way: every peer interaction goes through [`NodeTransport::send`].
    pub fn new_with_transport(
        root: &Path,
        config: ClusterConfig,
        make_core: impl Fn() -> Arc<ShardedMultiUserDb>,
        transport: Arc<dyn NodeTransport>,
    ) -> Result<Self, ReplicationError> {
        assert!(config.nodes >= 1, "a cluster needs at least one node");
        let mut nodes = Vec::with_capacity(config.nodes);
        let mut dirs = Vec::with_capacity(config.nodes);
        for id in 0..config.nodes {
            let dir = root.join(format!("node-{id}"));
            let db = Arc::new(DurableDb::create(&dir, make_core(), config.wal)?);
            let node = Arc::new(ReplNode::new(id, &dir, db, 1, id == 0));
            transport.register(Arc::clone(&node));
            dirs.push(dir);
            nodes.push(Some(node));
        }
        Ok(Self {
            config,
            dirs,
            transport,
            state: Mutex::new(ClusterState {
                nodes,
                primary: Some(0),
                cursors: HashMap::new(),
                missed: vec![0; config.nodes],
                promotions: vec![(1, 0)],
                scrub_passes: 0,
                scrub_quarantined: 0,
            }),
            on_promotion: Mutex::new(None),
            on_demotion: Mutex::new(None),
        })
    }

    /// The configured knobs.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The transport (for direct partition scripting in tests).
    pub fn transport(&self) -> &Arc<dyn NodeTransport> {
        &self.transport
    }

    /// Install the promotion hook (fired with the promoted node and
    /// its new epoch, while cluster state is held — keep it quick).
    pub fn set_promotion_hook(&self, hook: RoleHook) {
        *self.on_promotion.lock() = Some(hook);
    }

    /// Install the demotion hook (fired when an acting primary is
    /// fenced or deposed).
    pub fn set_demotion_hook(&self, hook: RoleHook) {
        *self.on_demotion.lock() = Some(hook);
    }

    /// The node currently routed writes, if any.
    pub fn primary(&self) -> Option<NodeId> {
        self.state.lock().primary
    }

    /// Node `id`'s handle, if live.
    pub fn node(&self, id: NodeId) -> Option<Arc<ReplNode>> {
        self.state.lock().nodes.get(id)?.clone()
    }

    /// Node `id`'s durable database, if live (for serving reads).
    pub fn db_of(&self, id: NodeId) -> Option<Arc<DurableDb>> {
        self.node(id).map(|n| Arc::clone(n.db()))
    }

    /// The primary's durable database, if a primary is live.
    pub fn primary_db(&self) -> Option<Arc<DurableDb>> {
        let st = self.state.lock();
        let p = st.primary?;
        st.nodes[p].as_ref().map(|n| Arc::clone(n.db()))
    }

    /// Sever the link between two nodes (both directions).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.transport.partition(a, b);
    }

    /// Restore the link between two nodes.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        self.transport.heal(a, b);
    }

    /// Restore every link.
    pub fn heal_all(&self) {
        self.transport.heal_all();
    }

    /// Crash node `id`: it vanishes from the transport and its durable
    /// directory lock is released (once no reader still holds its db).
    pub fn crash_node(&self, id: NodeId) {
        let mut st = self.state.lock();
        self.transport.deregister(id);
        st.nodes[id] = None;
        st.cursors.remove(&id);
        st.missed[id] = 0;
        if st.primary == Some(id) {
            st.primary = None;
        }
    }

    /// Crash whichever node is currently primary (no-op without one).
    pub fn crash_primary(&self) {
        let p = self.state.lock().primary;
        if let Some(p) = p {
            self.crash_node(p);
        }
    }

    /// Restart a crashed node from its durable directory. It recovers
    /// its log, rejoins as a **replica** (whatever it was before), and
    /// catches up through normal shipping. Retries briefly if a reader
    /// still holds the old incarnation's directory lock.
    pub fn restart_node(&self, id: NodeId) -> Result<(), ReplicationError> {
        let mut st = self.state.lock();
        assert!(st.nodes[id].is_none(), "node {id} is already live");
        let mut attempt = 0;
        let node = loop {
            match ReplNode::recover(id, &self.dirs[id], self.config.wal) {
                Ok(node) => break node,
                Err(WalError::Locked { .. }) if attempt < 50 => {
                    attempt += 1;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Err(e) => return Err(e.into()),
            }
        };
        let node = Arc::new(node);
        self.transport.register(Arc::clone(&node));
        st.nodes[id] = Some(node);
        st.missed[id] = 0;
        Ok(())
    }

    /// Run one scrub pass on node `id`'s durable directory. The
    /// cluster lock is **not** held during the scan — scrubbing a
    /// replica never stalls writes or shipping; only the counter
    /// update re-takes it. A quarantined-and-healed node keeps
    /// serving; a quarantine whose heal failed is repaired on the next
    /// restart (recovery consults quarantine, then shipping and
    /// anti-entropy re-fetch the lost suffix from a healthy peer).
    pub fn scrub_node(&self, id: NodeId) -> Result<ScrubReport, ReplicationError> {
        let node = {
            let st = self.state.lock();
            st.nodes
                .get(id)
                .and_then(|n| n.clone())
                .ok_or(ReplicationError::NodeDown { node: id })?
        };
        let report = node.scrub()?;
        let mut st = self.state.lock();
        st.scrub_passes += 1;
        st.scrub_quarantined += report.quarantined.len() as u64;
        Ok(report)
    }

    /// Apply one logged operation through the current primary,
    /// honouring the configured [`AckMode`].
    pub fn write(&self, op: &WalOp) -> Result<Ack, ReplicationError> {
        let mut st = self.state.lock();
        let Some(p) = st.primary else {
            return Err(ReplicationError::NoPrimary);
        };
        self.write_via_locked(&mut st, p, op)
    }

    /// Apply one logged operation through a **specific** node — the
    /// split-brain probe. A node that no longer believes it is primary
    /// refuses; a deposed one that still believes is fenced by the
    /// first peer it ships to (under quorum acks) and demotes.
    pub fn write_via(&self, id: NodeId, op: &WalOp) -> Result<Ack, ReplicationError> {
        let mut st = self.state.lock();
        self.write_via_locked(&mut st, id, op)
    }

    fn write_via_locked(
        &self,
        st: &mut ClusterState,
        id: NodeId,
        op: &WalOp,
    ) -> Result<Ack, ReplicationError> {
        let node = st.nodes[id]
            .clone()
            .ok_or(ReplicationError::NodeDown { node: id })?;
        if !node.is_primary() {
            return Err(ReplicationError::NotPrimary { node: id });
        }
        let ack = node.db().apply(op)?;
        if self.config.ack_mode == AckMode::Async {
            return Ok(ack);
        }
        // Quorum: the write must be durable here and on enough peers
        // that any majority — in particular any future promotion
        // majority — contains it.
        if !ack.durable {
            node.db().flush().map_err(ReplicationError::Wal)?;
        }
        let mut acked = 1;
        let needed = self.config.nodes / 2 + 1;
        for other in 0..self.config.nodes {
            if other == id || st.nodes[other].is_none() {
                continue;
            }
            match self.ship_until(st, &node, other, ack.shard, ack.lsn) {
                Ok(true) => acked += 1,
                Ok(false) => {}
                Err(ReplicationError::Fenced { epoch }) => {
                    self.fence_primary(st, &node, epoch);
                    return Err(ReplicationError::Fenced { epoch });
                }
                Err(_) => {}
            }
        }
        if acked < needed {
            return Err(ReplicationError::QuorumFailed { acked, needed });
        }
        Ok(ack)
    }

    /// Ship `shard` from `from` to replica `to` until the replica's
    /// cursor passes `lsn`, with bounded retries against injected
    /// drops. `Ok(true)` means the replica durably holds `lsn`.
    fn ship_until(
        &self,
        st: &mut ClusterState,
        from: &Arc<ReplNode>,
        to: NodeId,
        shard: usize,
        lsn: u64,
    ) -> Result<bool, ReplicationError> {
        for _ in 0..16 {
            match self.ensure_cursor(st, from, to) {
                Ok(true) => {}
                Ok(false) => continue,
                Err(e) => return Err(e),
            }
            let cursor = st.cursors.get(&to).map(|c| c[shard]).unwrap_or(1);
            if cursor > lsn {
                return Ok(true);
            }
            match self.ship_once(st, from, to, shard) {
                Ok(Ship::Advanced) => {}
                Ok(Ship::CaughtUp) => {}
                Err(e @ ReplicationError::Fenced { .. }) => return Err(e),
                Err(_) => {}
            }
        }
        Ok(st.cursors.get(&to).map(|c| c[shard] > lsn).unwrap_or(false))
    }

    /// Learn replica `to`'s per-shard positions by heartbeat if no
    /// cursor vector is cached. `Ok` reports whether a cursor now
    /// exists; a [`Reply::Fenced`] probe answer surfaces as an error —
    /// the sender was deposed and must not keep shipping.
    fn ensure_cursor(
        &self,
        st: &mut ClusterState,
        from: &Arc<ReplNode>,
        to: NodeId,
    ) -> Result<bool, ReplicationError> {
        if st.cursors.contains_key(&to) {
            return Ok(true);
        }
        let env = Envelope {
            from: from.id(),
            epoch: from.epoch(),
            msg: Message::Heartbeat,
        };
        match self.transport.send(to, env) {
            Ok(Reply::Beat { applied, .. }) => {
                st.cursors
                    .insert(to, applied.iter().map(|l| l + 1).collect());
                Ok(true)
            }
            Ok(Reply::Fenced { current }) => Err(ReplicationError::Fenced { epoch: current }),
            _ => Ok(false),
        }
    }

    /// One shipping step for `(to, shard)`: read a batch at the cursor
    /// from `from`'s log and push it; fall back to a full snapshot when
    /// the cursor's continuation has been checkpointed away.
    fn ship_once(
        &self,
        st: &mut ClusterState,
        from: &Arc<ReplNode>,
        to: NodeId,
        shard: usize,
    ) -> Result<Ship, ReplicationError> {
        let cursor = st.cursors.get(&to).map(|c| c[shard]).unwrap_or(1);
        let batch = from
            .db()
            .read_shard_from(shard, cursor, self.config.batch_max)?;
        let msg = match batch {
            None => {
                // The tail below `cursor` was garbage-collected into a
                // checkpoint: ship the whole snapshot instead.
                let (stripes, lsns) = from.db().snapshot_with_lsns();
                let env = Envelope {
                    from: from.id(),
                    epoch: from.epoch(),
                    msg: Message::Snapshot {
                        stripes,
                        lsns: lsns.clone(),
                    },
                };
                return match self.transport.send(to, env)? {
                    Reply::SnapshotInstalled => {
                        st.cursors.insert(to, lsns.iter().map(|l| l + 1).collect());
                        Ok(Ship::Advanced)
                    }
                    Reply::Fenced { current } => Err(ReplicationError::Fenced { epoch: current }),
                    Reply::Failed { reason } => Err(ReplicationError::Peer { reason }),
                    other => Err(ReplicationError::Peer {
                        reason: format!("unexpected snapshot reply {other:?}"),
                    }),
                };
            }
            Some(records) if records.is_empty() => return Ok(Ship::CaughtUp),
            Some(records) => Message::Records {
                shard,
                records: records.into_iter().map(|r| (r.lsn, r.payload)).collect(),
            },
        };
        let env = Envelope {
            from: from.id(),
            epoch: from.epoch(),
            msg,
        };
        match self.transport.send(to, env)? {
            Reply::Progress { next_lsn } => {
                if let Some(c) = st.cursors.get_mut(&to) {
                    c[shard] = next_lsn;
                }
                Ok(Ship::Advanced)
            }
            Reply::Fenced { current } => Err(ReplicationError::Fenced { epoch: current }),
            Reply::Failed { reason } => Err(ReplicationError::Peer { reason }),
            other => Err(ReplicationError::Peer {
                reason: format!("unexpected records reply {other:?}"),
            }),
        }
    }

    /// A peer with a higher epoch rejected `node`'s traffic: adopt the
    /// epoch, demote, and stop routing writes to it.
    fn fence_primary(&self, st: &mut ClusterState, node: &Arc<ReplNode>, epoch: u64) {
        node.adopt_epoch(epoch);
        node.demote();
        if st.primary == Some(node.id()) {
            st.primary = None;
        }
        if let Some(hook) = self.on_demotion.lock().as_ref() {
            hook(node.id(), epoch);
        }
    }

    /// Ship every live replica as far as the primary's logs currently
    /// reach. Returns whether a fence demoted the primary mid-pump.
    pub fn pump(&self) -> Result<bool, ReplicationError> {
        let mut st = self.state.lock();
        self.pump_locked(&mut st)
    }

    fn pump_locked(&self, st: &mut ClusterState) -> Result<bool, ReplicationError> {
        let Some(p) = st.primary else {
            return Ok(false);
        };
        let Some(node) = st.nodes[p].clone() else {
            return Ok(false);
        };
        for other in 0..self.config.nodes {
            if other == p || st.nodes[other].is_none() {
                continue;
            }
            match self.ensure_cursor(st, &node, other) {
                Ok(true) => {}
                Ok(false) => continue,
                Err(ReplicationError::Fenced { epoch }) => {
                    self.fence_primary(st, &node, epoch);
                    return Ok(true);
                }
                Err(_) => continue,
            }
            for shard in 0..self.config.shards {
                // Bounded: a replica being written to concurrently
                // would otherwise chase the tail forever.
                for _ in 0..64 {
                    match self.ship_once(st, &node, other, shard) {
                        Ok(Ship::Advanced) => {}
                        Ok(Ship::CaughtUp) => break,
                        Err(ReplicationError::Fenced { epoch }) => {
                            self.fence_primary(st, &node, epoch);
                            return Ok(true);
                        }
                        Err(_) => break,
                    }
                }
            }
        }
        Ok(false)
    }

    /// One control-plane beat: pump replication, probe the primary
    /// from every replica, and — with auto-failover on — promote once
    /// every live replica has missed [`ClusterConfig::heartbeat_threshold`]
    /// consecutive probes.
    pub fn tick(&self) -> TickReport {
        let mut report = TickReport::default();
        let mut st = self.state.lock();
        if let Ok(true) = self.pump_locked(&mut st) {
            report.fenced = true;
        }
        let primary = st.primary;
        let mut any_replica = false;
        let mut all_past_threshold = true;
        for id in 0..self.config.nodes {
            if Some(id) == primary {
                continue;
            }
            let Some(node) = st.nodes[id].clone() else {
                continue;
            };
            any_replica = true;
            let reachable = match primary {
                Some(p) => {
                    let env = Envelope {
                        from: id,
                        epoch: node.epoch(),
                        msg: Message::Heartbeat,
                    };
                    matches!(
                        self.transport.send(p, env),
                        Ok(Reply::Beat { .. }) | Ok(Reply::Fenced { .. })
                    )
                }
                None => false,
            };
            if reachable {
                st.missed[id] = 0;
            } else {
                st.missed[id] = st.missed[id].saturating_add(1);
            }
            if st.missed[id] < self.config.heartbeat_threshold {
                all_past_threshold = false;
            }
        }
        if any_replica && all_past_threshold && self.config.auto_failover {
            if let Ok(promoted) = self.failover_locked(&mut st) {
                report.promoted = Some(promoted);
            }
        }
        report
    }

    /// Manually promote node `id` (same safety rules as auto-failover:
    /// a reachability majority is required, and the candidate pulls
    /// every reachable peer's suffix before serving).
    pub fn promote(&self, id: NodeId) -> Result<u64, ReplicationError> {
        let mut st = self.state.lock();
        self.promote_locked(&mut st, id)
    }

    /// Pick the best live candidate (highest applied LSN total, ties to
    /// the lowest id) and promote the first that can reach a majority.
    fn failover_locked(&self, st: &mut ClusterState) -> Result<(u64, NodeId), ReplicationError> {
        let mut candidates: Vec<(NodeId, u64)> = (0..self.config.nodes)
            .filter_map(|id| {
                let node = st.nodes[id].as_ref()?;
                Some((id, node.applied_lsns().iter().sum::<u64>()))
            })
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut last = ReplicationError::NoPrimary;
        for (id, _) in candidates {
            match self.promote_locked(st, id) {
                Ok(epoch) => return Ok((epoch, id)),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// The promotion protocol:
    ///
    /// 1. Probe every other configured node from the candidate; a
    ///    majority of the cluster (counting the candidate) must answer,
    ///    else refuse — promoting on a minority island could strand
    ///    quorum-acked writes on the other side.
    /// 2. Pull each reachable peer's log suffix into the candidate,
    ///    shard by shard (peers ahead on a shard resync it wholesale if
    ///    their suffix was already checkpointed away). Any quorum-acked
    ///    write lives on a majority, every majority intersects the
    ///    reachable set, so the candidate ends up holding them all.
    /// 3. Mint `max(seen epochs) + 1`, persist it on the candidate,
    ///    flip it to primary, and broadcast the new epoch so reachable
    ///    stale primaries demote immediately.
    fn promote_locked(&self, st: &mut ClusterState, id: NodeId) -> Result<u64, ReplicationError> {
        let candidate = st.nodes[id]
            .clone()
            .ok_or(ReplicationError::NodeDown { node: id })?;
        // 1. Reachability quorum.
        let mut reached = 1;
        let mut peers: Vec<NodeId> = Vec::new();
        for other in 0..self.config.nodes {
            if other == id {
                continue;
            }
            for _ in 0..2 {
                let env = Envelope {
                    from: id,
                    epoch: candidate.epoch(),
                    msg: Message::Heartbeat,
                };
                match self.transport.send(other, env) {
                    Ok(Reply::Beat { epoch, .. }) => {
                        candidate.adopt_epoch(epoch);
                        reached += 1;
                        peers.push(other);
                        break;
                    }
                    Ok(Reply::Fenced { current }) => {
                        // Reachable, but our epoch was stale: adopt
                        // theirs and re-probe for their positions.
                        candidate.adopt_epoch(current);
                    }
                    _ => break,
                }
            }
        }
        let needed = self.config.nodes / 2 + 1;
        if reached < needed {
            return Err(ReplicationError::NoQuorumForPromotion { reached, needed });
        }
        // 2. Pull every reachable peer's suffix into the candidate.
        for &peer_id in &peers {
            let Some(peer) = st.nodes[peer_id].clone() else {
                continue;
            };
            for shard in 0..self.config.shards {
                self.pull_shard(&candidate, &peer, shard);
            }
        }
        // 3. Mint, persist, serve, broadcast.
        let epoch = candidate.epoch() + 1;
        candidate.promote(epoch);
        let old = st.primary.take();
        st.primary = Some(id);
        st.promotions.push((epoch, id));
        st.cursors.clear();
        st.missed.iter_mut().for_each(|m| *m = 0);
        for &peer_id in &peers {
            let env = Envelope {
                from: id,
                epoch,
                msg: Message::Heartbeat,
            };
            let _ = self.transport.send(peer_id, env);
        }
        if let Some(old_id) = old {
            if old_id != id {
                if let Some(hook) = self.on_demotion.lock().as_ref() {
                    hook(old_id, epoch);
                }
            }
        }
        if let Some(hook) = self.on_promotion.lock().as_ref() {
            hook(id, epoch);
        }
        Ok(epoch)
    }

    /// Pull `shard`'s suffix from `peer` into `candidate` during
    /// promotion. Messages travel peer → candidate through the
    /// transport (under the candidate's adopted epoch, so they are not
    /// self-fenced), with bounded retries against injected faults.
    fn pull_shard(&self, candidate: &Arc<ReplNode>, peer: &Arc<ReplNode>, shard: usize) {
        for _ in 0..25 {
            let cursor = candidate.applied_lsns()[shard] + 1;
            let batch = match peer
                .db()
                .read_shard_from(shard, cursor, self.config.batch_max)
            {
                Ok(b) => b,
                Err(_) => return,
            };
            let msg = match batch {
                None => {
                    // The peer checkpointed the suffix away; if it is
                    // genuinely ahead on this shard, resync wholesale.
                    let (stripes, lsns) = peer.db().snapshot_with_lsns();
                    if lsns[shard] < cursor {
                        return;
                    }
                    Message::Resync {
                        shard,
                        users: stripes.into_iter().nth(shard).unwrap_or_default(),
                        last_lsn: lsns[shard],
                    }
                }
                Some(records) if records.is_empty() => return,
                Some(records) => Message::Records {
                    shard,
                    records: records.into_iter().map(|r| (r.lsn, r.payload)).collect(),
                },
            };
            let env = Envelope {
                from: peer.id(),
                epoch: candidate.epoch(),
                msg,
            };
            match self.transport.send(candidate.id(), env) {
                Ok(Reply::Progress { .. }) | Ok(Reply::Resynced) => {}
                _ => continue,
            }
        }
    }

    /// Compare per-shard digests between the primary and every live
    /// replica; resync each divergent shard from the primary's copy.
    /// Returns how many shard resyncs were performed. Run this against
    /// a quiescent (or briefly paused) cluster — concurrent writes make
    /// digests transiently diverge by design.
    pub fn anti_entropy(&self) -> Result<usize, ReplicationError> {
        let mut st = self.state.lock();
        let Some(p) = st.primary else {
            return Err(ReplicationError::NoPrimary);
        };
        let node = st.nodes[p].clone().ok_or(ReplicationError::NoPrimary)?;
        let local = node_digests(node.db());
        let mut resyncs = 0;
        for other in 0..self.config.nodes {
            if other == p || st.nodes[other].is_none() {
                continue;
            }
            let env = Envelope {
                from: p,
                epoch: node.epoch(),
                msg: Message::DigestRequest,
            };
            let theirs = match self.transport.send(other, env) {
                Ok(Reply::Digests { digests }) => digests,
                Ok(Reply::Fenced { current }) => {
                    self.fence_primary(&mut st, &node, current);
                    return Err(ReplicationError::Fenced { epoch: current });
                }
                _ => continue,
            };
            for shard in 0..self.config.shards {
                if theirs.get(shard) == Some(&local[shard]) {
                    continue;
                }
                // Divergent: replace the replica's shard with the
                // primary's authoritative copy and watermark.
                let (stripes, lsns) = node.db().snapshot_with_lsns();
                let msg = Message::Resync {
                    shard,
                    users: stripes.into_iter().nth(shard).unwrap_or_default(),
                    last_lsn: lsns[shard],
                };
                let env = Envelope {
                    from: p,
                    epoch: node.epoch(),
                    msg,
                };
                match self.transport.send(other, env) {
                    Ok(Reply::Resynced) => {
                        resyncs += 1;
                        if let Some(c) = st.cursors.get_mut(&other) {
                            c[shard] = lsns[shard] + 1;
                        }
                    }
                    Ok(Reply::Fenced { current }) => {
                        self.fence_primary(&mut st, &node, current);
                        return Err(ReplicationError::Fenced { epoch: current });
                    }
                    _ => {}
                }
            }
        }
        Ok(resyncs)
    }

    /// A point-in-time view: roles, epochs, lag, promotion history.
    pub fn status(&self) -> ClusterStatus {
        let st = self.state.lock();
        let nodes: Vec<NodeStatus> = (0..self.config.nodes)
            .map(|id| match &st.nodes[id] {
                Some(node) => NodeStatus {
                    id,
                    live: true,
                    is_primary: node.is_primary(),
                    epoch: node.epoch(),
                    applied: node.applied_lsns().iter().sum(),
                    rescued_shards: node.rescued_shards(),
                },
                None => NodeStatus {
                    id,
                    live: false,
                    is_primary: false,
                    epoch: 0,
                    applied: 0,
                    rescued_shards: 0,
                },
            })
            .collect();
        let epoch = nodes
            .iter()
            .filter(|n| n.live)
            .map(|n| n.epoch)
            .max()
            .unwrap_or(0);
        let max_lag = match st.primary {
            Some(p) if st.nodes[p].is_some() => {
                let head = nodes[p].applied;
                nodes
                    .iter()
                    .filter(|n| n.live && n.id != p)
                    .map(|n| head.saturating_sub(n.applied))
                    .max()
                    .unwrap_or(0)
            }
            _ => 0,
        };
        ClusterStatus {
            primary: st.primary,
            epoch,
            promotions: st.promotions.clone(),
            nodes,
            max_lag,
            scrub_passes: st.scrub_passes,
            scrub_quarantined: st.scrub_quarantined,
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("config", &self.config)
            .field("status", &self.status())
            .finish()
    }
}
