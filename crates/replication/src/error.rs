//! Typed errors of the replication layer.

use std::error::Error;
use std::fmt;

use ctxpref_wal::{DurableError, WalError};

use crate::message::NodeId;

/// Why a message could not be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The destination node is not registered (crashed or removed).
    Unreachable(NodeId),
    /// A partition (static or injected) separates the two nodes.
    Partitioned,
    /// The network dropped this message (injected loss).
    Dropped,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unreachable(id) => write!(f, "node {id} is unreachable"),
            Self::Partitioned => write!(f, "link is partitioned"),
            Self::Dropped => write!(f, "message dropped"),
        }
    }
}

impl Error for TransportError {}

/// Errors of cluster-level replication operations.
#[derive(Debug)]
pub enum ReplicationError {
    /// No live primary exists right now (between a crash and the
    /// failover that repairs it).
    NoPrimary,
    /// The addressed node is not the primary (it was deposed, or never
    /// was) — writes must go to the current primary.
    NotPrimary {
        /// The node that refused the write.
        node: NodeId,
    },
    /// The addressed node does not exist or is crashed.
    NodeDown {
        /// The missing node.
        node: NodeId,
    },
    /// A quorum write could not reach a majority before acking. The
    /// write is in the primary's log and may still replicate later,
    /// but it was **not** acknowledged.
    QuorumFailed {
        /// Nodes (including the primary) that durably hold the write.
        acked: usize,
        /// The majority that was required.
        needed: usize,
    },
    /// A receiver with a higher epoch fenced this node's traffic: the
    /// sender was deposed and must demote.
    Fenced {
        /// The fencing (current) epoch.
        epoch: u64,
    },
    /// A promotion could not reach a majority of the cluster, so it
    /// was refused (promoting on a minority island could lose
    /// quorum-acked writes).
    NoQuorumForPromotion {
        /// Nodes the candidate could reach, including itself.
        reached: usize,
        /// The majority that was required.
        needed: usize,
    },
    /// A peer received a message but failed to process it (its durable
    /// layer errored); the operation should be retried later.
    Peer {
        /// The peer's reported cause.
        reason: String,
    },
    /// The durable layer failed beneath replication.
    Durable(DurableError),
    /// The log/manifest layer failed beneath replication.
    Wal(WalError),
    /// Delivery failed.
    Transport(TransportError),
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoPrimary => write!(f, "no live primary (failover pending)"),
            Self::NotPrimary { node } => write!(f, "node {node} is not the primary"),
            Self::NodeDown { node } => write!(f, "node {node} is down"),
            Self::QuorumFailed { acked, needed } => {
                write!(
                    f,
                    "quorum write reached {acked} of the {needed} nodes required"
                )
            }
            Self::Fenced { epoch } => {
                write!(f, "fenced by epoch {epoch}: this node was deposed")
            }
            Self::NoQuorumForPromotion { reached, needed } => {
                write!(
                    f,
                    "promotion refused: reached {reached} nodes, majority is {needed}"
                )
            }
            Self::Peer { reason } => write!(f, "peer failed: {reason}"),
            Self::Durable(e) => write!(f, "{e}"),
            Self::Wal(e) => write!(f, "{e}"),
            Self::Transport(e) => write!(f, "transport: {e}"),
        }
    }
}

impl Error for ReplicationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Durable(e) => Some(e),
            Self::Wal(e) => Some(e),
            Self::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DurableError> for ReplicationError {
    fn from(e: DurableError) -> Self {
        Self::Durable(e)
    }
}

impl From<WalError> for ReplicationError {
    fn from(e: WalError) -> Self {
        Self::Wal(e)
    }
}

impl From<TransportError> for ReplicationError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}
