#![warn(missing_docs)]
//! WAL-shipping replication for the durable serving core.
//!
//! One primary [`DurableDb`](ctxpref_wal::DurableDb) accepts writes;
//! replicas mirror its per-shard LSN sequence by appending the shipped
//! payloads to their **own** write-ahead logs (both sides use the same
//! user→shard fold, so shard `i` here is shard `i` there). That makes
//! every replica a complete durable node in its own right: it
//! checkpoints, recovers, and — after a failover — serves as the next
//! primary with no format conversion.
//!
//! The layers, bottom to top:
//!
//! * [`message`] — the wire vocabulary: epoch-stamped [`Envelope`]s
//!   carrying record batches, snapshots, heartbeats, digests, and
//!   resyncs; [`Reply`] closes the loop with cursor progress.
//! * [`epoch`] — the fencing term, persisted per node like the
//!   checkpoint manifest, so deposed primaries stay deposed across
//!   crashes.
//! * [`node`] — [`ReplNode`]: one participant; symmetric `handle`
//!   services shipping, catch-up pulls, and anti-entropy alike, with
//!   the epoch fence applied before anything else.
//! * [`digest`] — canonical per-shard FNV digests for anti-entropy.
//! * [`migrate`] — the per-user snapshot + catch-up primitives that
//!   the routing tier composes into live migration between clusters.
//! * [`transport`] — the [`Transport`] seam and its in-process
//!   implementation, threaded through the `repl.*` fault sites so a
//!   seeded [`FaultPlan`](ctxpref_faults::FaultPlan) can partition,
//!   drop, delay, and duplicate deterministically.
//! * [`cluster`] — [`Cluster`]: membership, cursors, quorum writes,
//!   heartbeat failure detection, majority-guarded promotion with
//!   pre-serve catch-up, and digest-driven anti-entropy.
//!
//! The replication chaos suite (`tests/chaos.rs`) drives all of it
//! across a seed matrix and asserts: acked quorum writes survive
//! partitions and primary kills, promotions carry strictly ascending
//! epochs, and healed clusters converge to byte-equal digests.

pub mod cluster;
pub mod digest;
pub mod epoch;
pub mod error;
pub mod message;
pub mod migrate;
pub mod node;
pub mod transport;

pub use cluster::{
    AckMode, Cluster, ClusterConfig, ClusterStatus, NodeStatus, RoleHook, TickReport,
};
pub use digest::{node_digests, stripe_digest};
pub use epoch::{load_epoch, save_epoch, EPOCH_FILE};
pub use error::{ReplicationError, TransportError};
pub use message::{Envelope, Message, NodeId, Reply, ShippedRecord};
pub use migrate::{snapshot_ops, user_cut, user_digest, user_suffix, UserSuffix};
pub use node::ReplNode;
pub use transport::{InProcessTransport, NodeTransport, Transport};
