//! Message delivery between nodes.
//!
//! The [`Transport`] trait is the seam the chaos suite leans on: the
//! in-process implementation routes an [`Envelope`] straight into the
//! destination node's `handle`, but every send first walks the
//! network fault sites (`repl.partition`, `repl.send.drop` /
//! `repl.heartbeat.drop`, `repl.send.delay`, `repl.send.duplicate`),
//! so a deterministic [`FaultPlan`](ctxpref_faults::FaultPlan) can
//! partition links, lose or delay batches, and redeliver duplicates
//! without any real network in the loop.

use std::collections::HashMap;
use std::sync::Arc;

use ctxpref_faults::hit;
use ctxpref_faults::sites::{
    REPL_HEARTBEAT_DROP, REPL_PARTITION, REPL_SEND_DELAY, REPL_SEND_DROP, REPL_SEND_DUPLICATE,
};
use parking_lot::{Mutex, RwLock};

use crate::error::TransportError;
use crate::message::{Envelope, NodeId, Reply};
use crate::node::ReplNode;

/// Delivers envelopes to nodes; the cluster is generic over this so a
/// test double (or a real socket transport) can slot in.
pub trait Transport: Send + Sync {
    /// Deliver `env` to node `to` and return its reply.
    fn send(&self, to: NodeId, env: Envelope) -> Result<Reply, TransportError>;
}

/// The full membership seam a [`crate::Cluster`] drives: delivery plus
/// node lifecycle (register on boot/restart, deregister on crash) and
/// link scripting (partition/heal, used by both the chaos suites and
/// operational drain). [`InProcessTransport`] routes in memory; a
/// socket transport (`ctxpref-net`'s `TcpTransport`) spawns one
/// listener per registered node and dials peers over TCP.
pub trait NodeTransport: Transport {
    /// Make `node` reachable (boot or restart).
    fn register(&self, node: Arc<ReplNode>);

    /// Crash `id`: every future send to it fails
    /// [`TransportError::Unreachable`].
    fn deregister(&self, id: NodeId);

    /// Whether `id` is currently registered (live).
    fn is_registered(&self, id: NodeId) -> bool;

    /// Sever the link between `a` and `b` (both directions).
    fn partition(&self, a: NodeId, b: NodeId);

    /// Restore the link between `a` and `b`.
    fn heal(&self, a: NodeId, b: NodeId);

    /// Restore every link.
    fn heal_all(&self);
}

/// In-process transport: a registry of live nodes plus an explicit
/// partition set. Deregistered nodes model crashes (Unreachable);
/// partitions are symmetric per unordered node pair.
#[derive(Default)]
pub struct InProcessTransport {
    nodes: RwLock<HashMap<NodeId, Arc<ReplNode>>>,
    /// Severed links, stored with the smaller id first.
    partitions: Mutex<Vec<(NodeId, NodeId)>>,
}

impl InProcessTransport {
    /// An empty transport (no nodes, no partitions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Make `node` reachable.
    pub fn register(&self, node: Arc<ReplNode>) {
        self.nodes.write().insert(node.id(), node);
    }

    /// Crash `id`: every future send to it fails Unreachable.
    pub fn deregister(&self, id: NodeId) {
        self.nodes.write().remove(&id);
    }

    /// Whether `id` is currently registered (live).
    pub fn is_registered(&self, id: NodeId) -> bool {
        self.nodes.read().contains_key(&id)
    }

    /// Sever the link between `a` and `b` (both directions).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let link = (a.min(b), a.max(b));
        let mut parts = self.partitions.lock();
        if !parts.contains(&link) {
            parts.push(link);
        }
    }

    /// Restore the link between `a` and `b`.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let link = (a.min(b), a.max(b));
        self.partitions.lock().retain(|l| *l != link);
    }

    /// Restore every link.
    pub fn heal_all(&self) {
        self.partitions.lock().clear();
    }

    fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        let link = (a.min(b), a.max(b));
        self.partitions.lock().contains(&link)
    }
}

impl NodeTransport for InProcessTransport {
    fn register(&self, node: Arc<ReplNode>) {
        InProcessTransport::register(self, node);
    }

    fn deregister(&self, id: NodeId) {
        InProcessTransport::deregister(self, id);
    }

    fn is_registered(&self, id: NodeId) -> bool {
        InProcessTransport::is_registered(self, id)
    }

    fn partition(&self, a: NodeId, b: NodeId) {
        InProcessTransport::partition(self, a, b);
    }

    fn heal(&self, a: NodeId, b: NodeId) {
        InProcessTransport::heal(self, a, b);
    }

    fn heal_all(&self) {
        InProcessTransport::heal_all(self);
    }
}

impl Transport for InProcessTransport {
    fn send(&self, to: NodeId, env: Envelope) -> Result<Reply, TransportError> {
        // 1. Partitions cut the link before anything else: an explicit
        //    partition or an injected one at `repl.partition`.
        if self.is_partitioned(env.from, to) || hit(REPL_PARTITION).is_err() {
            return Err(TransportError::Partitioned);
        }
        // 2. Loss, on a site split by traffic class so plans can starve
        //    the failure detector without losing data (or vice versa).
        let drop_site = if env.msg.is_heartbeat() {
            REPL_HEARTBEAT_DROP
        } else {
            REPL_SEND_DROP
        };
        if hit(drop_site).is_err() {
            return Err(TransportError::Dropped);
        }
        // 3. Latency: a Delay fault sleeps inside `hit` and returns Ok.
        let _ = hit(REPL_SEND_DELAY);
        let node = self
            .nodes
            .read()
            .get(&to)
            .cloned()
            .ok_or(TransportError::Unreachable(to))?;
        let reply = node.handle(&env);
        // 4. Duplicate delivery: the receiver sees the same envelope
        //    twice; LSN cursors make the replay a no-op, and the chaos
        //    suite asserts exactly that.
        if hit(REPL_SEND_DUPLICATE).is_err() {
            let _ = node.handle(&env);
        }
        Ok(reply)
    }
}
