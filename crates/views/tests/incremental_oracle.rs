//! The tentpole property: a materialized view maintained
//! *incrementally* across an arbitrary mutation sequence must answer
//! bit-identically to full recomputation. Every `serve` hit is checked
//! against a fresh `rank_cs` + `top_k_with_ties(k)` oracle — same
//! rows, same scores, same order — for k ∈ {1, 3, 10}, under
//! single-state and multi-state preference descriptors, across
//! inserts, removals, and score updates in both directions.

use ctxpref_context::{
    ContextDescriptor, ContextEnvironment, ContextState, DistanceKind, ExtendedContextDescriptor,
    ParamId, ParameterDescriptor,
};
use ctxpref_hierarchy::Hierarchy;
use ctxpref_profile::{AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree};
use ctxpref_relation::{AttrId, AttrType, Relation, Schema, ScoreCombiner};
use ctxpref_resolve::{rank_cs, TieBreak};
use ctxpref_views::{Change, ViewCatalog, ViewOpts, MATERIALIZE_AFTER};
use proptest::prelude::*;

fn env() -> ContextEnvironment {
    ContextEnvironment::new(vec![
        Hierarchy::balanced("a", &[6, 2]).unwrap(),
        Hierarchy::balanced("b", &[5]).unwrap(),
    ])
    .unwrap()
}

fn relation(n: usize) -> Relation {
    let schema = Schema::new(&[("v", AttrType::Str)]).unwrap();
    let mut rel = Relation::new("r", schema);
    for i in 0..n {
        rel.insert(vec![format!("v{}", i % 12).into()]).unwrap();
    }
    rel
}

fn opts() -> ViewOpts {
    ViewOpts {
        distance: DistanceKind::Hierarchy,
        tie: TieBreak::All,
        combiner: ScoreCombiner::Max,
    }
}

/// A random preference. `wide` drops one parameter from the
/// descriptor, making it cover every state of that parameter — the
/// multi-state descriptor case.
fn random_pref(env: &ContextEnvironment, x: u64) -> ContextualPreference {
    let ha = env.hierarchy(ParamId(0));
    let hb = env.hierarchy(ParamId(1));
    let da = ha.domain(ha.detailed_level());
    let db = hb.domain(hb.detailed_level());
    let va = da[(x >> 8) as usize % da.len()];
    let vb = db[(x >> 20) as usize % db.len()];
    let mut cod = ContextDescriptor::empty();
    let wide = (x >> 30) % 4;
    if wide != 0 {
        cod = cod.with(ParamId(0), ParameterDescriptor::Eq(va));
    }
    if wide != 1 {
        cod = cod.with(ParamId(1), ParameterDescriptor::Eq(vb));
    }
    let clause = AttributeClause::eq(AttrId(0), format!("v{}", (x >> 32) % 12).into());
    // Coarse score grid → frequent exact ties, the hard case for the
    // floor/dominates rules.
    let score = 0.1 + ((x >> 40) % 9) as f64 / 10.0;
    ContextualPreference::new(cod, clause, score).unwrap()
}

fn state_at(env: &ContextEnvironment, ix: usize) -> ContextState {
    let ha = env.hierarchy(ParamId(0));
    let hb = env.hierarchy(ParamId(1));
    let da = ha.domain(ha.detailed_level());
    let db = hb.domain(hb.detailed_level());
    ContextState::from_values_unchecked(vec![da[ix % da.len()], db[(ix / da.len()) % db.len()]])
}

fn descriptor_of(env: &ContextEnvironment, state: &ContextState) -> ExtendedContextDescriptor {
    let mut cod = ContextDescriptor::empty();
    for (pid, h) in env.iter() {
        let v = state.value(pid);
        if v != h.all_value() {
            cod = cod.with(pid, ParameterDescriptor::Eq(v));
        }
    }
    cod.into()
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(usize),
    Rescore(usize, u8),
    Query(usize, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u64>().prop_map(Op::Insert),
        1 => (0usize..64).prop_map(Op::Remove),
        2 => ((0usize..64), any::<u8>()).prop_map(|(i, s)| Op::Rescore(i, s)),
        4 => ((0usize..12), any::<u8>()).prop_map(|(s, k)| Op::Query(s, k)),
    ]
}

/// The full-recompute oracle: fresh resolution of `state` over the
/// current tree, cut to `top_k_with_ties(k)`.
fn oracle(
    env: &ContextEnvironment,
    tree: &ProfileTree,
    rel: &Relation,
    state: &ContextState,
    k: usize,
) -> Vec<ctxpref_relation::ScoredTuple> {
    let ecod = descriptor_of(env, state);
    let q = rank_cs(
        tree,
        rel,
        &ecod,
        DistanceKind::Hierarchy,
        TieBreak::All,
        ScoreCombiner::Max,
    )
    .unwrap();
    q.results.top_k_with_ties(k).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn incremental_views_match_full_recompute(
        seed in any::<u64>(),
        tuples in 10usize..80,
        ops in proptest::collection::vec(op_strategy(), 20..120),
    ) {
        let env = env();
        let rel = relation(tuples);
        let order = ParamOrder::by_ascending_domain(&env);
        let mut profile = Profile::new(env.clone());
        // Seed profile so early queries have something to rank.
        let mut x = seed;
        for _ in 0..6 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let _ = profile.insert(random_pref(&env, x));
        }
        let mut tree = ProfileTree::from_profile(&profile, order.clone()).unwrap();
        let catalog = ViewCatalog::new(8);
        let opts = opts();
        let mut served = 0u64;
        let mut queried = false;

        for op in ops {
            match op {
                Op::Insert(r) => {
                    let pref = random_pref(&env, r);
                    if tree.insert(&pref).is_err() {
                        continue; // duplicate (state, clause): rejected upstream
                    }
                    profile.insert_unchecked(pref);
                    let pref = profile.preferences().last().unwrap();
                    catalog.on_mutation(&tree, &rel, &opts, Change::Insert(pref));
                }
                Op::Remove(i) => {
                    if profile.len() <= 1 {
                        continue;
                    }
                    let removed = profile.remove(i % profile.len());
                    tree = ProfileTree::from_profile(&profile, order.clone()).unwrap();
                    catalog.on_mutation(&tree, &rel, &opts, Change::Remove(&removed));
                }
                Op::Rescore(i, s) => {
                    if profile.is_empty() {
                        continue;
                    }
                    let i = i % profile.len();
                    let old_score = profile.preferences()[i].score();
                    let score = 0.1 + (s % 9) as f64 / 10.0;
                    // Overlapping descriptors can make the new score
                    // conflict at the tree level: probe on a clone, as
                    // the real store rejects such updates up front.
                    let mut candidate = profile.clone();
                    if candidate.update_score(i, score).is_err() {
                        continue;
                    }
                    let Ok(t) = ProfileTree::from_profile(&candidate, order.clone()) else {
                        continue;
                    };
                    profile = candidate;
                    tree = t;
                    let pref = &profile.preferences()[i];
                    catalog.on_mutation(&tree, &rel, &opts, Change::Rescore { pref, old_score });
                }
                Op::Query(s, kpick) => {
                    queried = true;
                    let state = state_at(&env, s);
                    let k = [1usize, 3, 10][kpick as usize % 3];
                    // Drive the state past the materialization
                    // threshold so the view path actually serves.
                    for _ in 0..=MATERIALIZE_AFTER {
                        if let Some(got) = catalog.serve(&tree, &rel, &opts, &state, k) {
                            let want = oracle(&env, &tree, &rel, &state, k);
                            prop_assert_eq!(
                                got.entries(), want.as_slice(),
                                "view diverged from recompute: state {} k {}", s, k
                            );
                            served += 1;
                        }
                    }
                }
            }
        }
        // Each query op repeats past the materialization threshold, so
        // any query at all must have been served from a view at least
        // once — the equality above cannot pass vacuously.
        prop_assert!(served > 0 || !queried, "no view ever served");
    }
}
