//! Context-state interning.
//!
//! The resolution hot path used to pass whole [`ContextState`] values
//! (boxed value slices) around as keys. A [`StateTable`] interns each
//! distinct state once and hands out a dense [`StateId`] — a `u32` —
//! so view keys, selection signatures, and hit-frequency tracking all
//! compare and hash a single integer instead of a slice. The table is
//! append-only: ids stay stable for the table's lifetime, which is
//! what lets a view's selection signature be compared across
//! mutations without re-hashing states.

use std::collections::HashMap;

use ctxpref_context::ContextState;

/// A dense interned id for a [`ContextState`] within one
/// [`StateTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// Zero-based index into the owning table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only intern table mapping context states to dense
/// [`StateId`]s.
#[derive(Debug, Default)]
pub struct StateTable {
    ids: HashMap<ContextState, StateId>,
    states: Vec<ContextState>,
}

impl StateTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `state`, returning its stable id (allocating one on
    /// first sight).
    pub fn intern(&mut self, state: &ContextState) -> StateId {
        if let Some(&id) = self.ids.get(state) {
            return id;
        }
        let id = StateId(self.states.len() as u32);
        self.states.push(state.clone());
        self.ids.insert(state.clone(), id);
        id
    }

    /// The id of `state` if it has been interned, without allocating.
    pub fn lookup(&self, state: &ContextState) -> Option<StateId> {
        self.ids.get(state).copied()
    }

    /// The state behind an id minted by this table.
    pub fn resolve(&self, id: StateId) -> &ContextState {
        &self.states[id.index()]
    }

    /// Number of distinct states interned.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no state has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_context::ContextEnvironment;
    use ctxpref_hierarchy::Hierarchy;

    fn env() -> ContextEnvironment {
        ContextEnvironment::new(vec![
            Hierarchy::flat("a", &["x", "y"]).unwrap(),
            Hierarchy::flat("b", &["p", "q"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let env = env();
        let s1 = ContextState::parse(&env, &["x", "p"]).unwrap();
        let s2 = ContextState::parse(&env, &["y", "q"]).unwrap();
        let mut t = StateTable::new();
        let id1 = t.intern(&s1);
        let id2 = t.intern(&s2);
        assert_ne!(id1, id2);
        assert_eq!(t.intern(&s1), id1, "re-interning returns the same id");
        assert_eq!(t.lookup(&s2), Some(id2));
        assert_eq!(t.resolve(id1), &s1);
        assert_eq!(t.len(), 2);
        let s3 = ContextState::parse(&env, &["all", "all"]).unwrap();
        assert_eq!(t.lookup(&s3), None, "lookup never allocates an id");
    }
}
