//! Materialized per-(user, context-state) top-k views with
//! incremental maintenance, plus the context-state intern table that
//! lets the resolution hot path key everything by dense ids instead
//! of allocated state values.
//!
//! The paper's §7 motivates maintaining context-derived rankings
//! incrementally rather than recompute-and-invalidate; this crate is
//! that subsystem. See [`catalog::ViewCatalog`] for the maintenance
//! rules and their exactness argument, and `tests/` for the property
//! test proving incremental == recomputed over the full mutation
//! vocabulary.

#![warn(missing_docs)]

pub mod catalog;
pub mod intern;

pub use catalog::{Change, ViewCatalog, ViewOpts, ViewStats, AUTOPIN_AFTER, MATERIALIZE_AFTER};
pub use intern::{StateId, StateTable};
