//! Materialized per-(user, context-state) top-k views.
//!
//! The qcache answers repeat queries but *invalidates everything* on
//! any preference mutation, so a hot (user, state) pair pays full tree
//! resolution on every write. A [`ViewCatalog`] instead keeps the
//! ranked answer materialized and maintains it **incrementally**:
//!
//! * Every view stores a *selection signature* — the interned set of
//!   stored context states its resolution selected. After a mutation
//!   the signature is recomputed with a cheap resolver walk (no
//!   relation scan); only if the selected set changed does the view
//!   pay a targeted rebuild.
//! * With an unchanged signature, an insert or score-raise is a
//!   *patch*: the mutation's σ-selection is merged into the view's
//!   bounded ranking (top-`k_max` heap region plus an overflow
//!   ledger) under the `Max` combiner — exact, because a retained
//!   tuple's recorded score is its true maximum and an absent tuple's
//!   true score is provably below the retained floor.
//! * A removal or score-drop that touches a retained tuple leaves the
//!   second-best contributor unknown — the heap cannot be refilled
//!   from local knowledge (the underflow path) — so that one view is
//!   rebuilt; every other view stays untouched.
//!
//! Views are *epoch-stamped*: the catalog bumps a mutation epoch on
//! every write and each view's content records the epoch it is valid
//! at. Serving refuses content from another epoch (it is rebuilt
//! lazily instead), so a view answer is always bit-identical to fresh
//! resolution — the property test in `tests/` drives randomized
//! mutation sequences against a full-recompute oracle.
//!
//! Hot states are *auto-materialized* once their top-k request count
//! crosses a threshold, LRU-evicted beyond a per-user capacity, and
//! *auto-pinned* (never evicted) once clearly hot. Pinned states
//! survive checkpoint restore: only the (user, state) registration is
//! persisted, never the ranking, so a recovered view is rebuilt
//! lazily and can never be trusted stale across WAL replay.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::RwLock;

use ctxpref_context::{ContextState, DistanceKind};
use ctxpref_profile::ContextualPreference;
use ctxpref_relation::{RankedResults, Relation, ScoreCombiner, ScoredTuple};
use ctxpref_resolve::{ContextResolver, PreferenceStore, TieBreak};

use crate::intern::{StateId, StateTable};

/// Requests a state must receive before it is materialized.
pub const MATERIALIZE_AFTER: u64 = 2;
/// Hits a materialized view must serve before it is auto-pinned.
pub const AUTOPIN_AFTER: u64 = 64;
/// Growth bound: a patched ranking may hold at most this many times
/// its build capacity before the view is rebuilt compactly.
const GROWTH_FACTOR: usize = 2;

/// The resolution options a view is materialized under. Views answer
/// only for the exact options they were built with (and only the
/// `Max` combiner admits the incremental patch rules); the catalog
/// drops all content when the options change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewOpts {
    /// State-distance metric used by resolution.
    pub distance: DistanceKind,
    /// Tie-break among equidistant candidates.
    pub tie: TieBreak,
    /// Score combiner (views require [`ScoreCombiner::Max`]).
    pub combiner: ScoreCombiner,
}

impl ViewOpts {
    /// Whether the incremental maintenance rules are sound under
    /// these options.
    pub fn supports_views(&self) -> bool {
        matches!(self.combiner, ScoreCombiner::Max)
    }
}

/// One preference mutation, as reported to [`ViewCatalog::on_mutation`].
#[derive(Debug, Clone, Copy)]
pub enum Change<'a> {
    /// `pref` was inserted.
    Insert(&'a ContextualPreference),
    /// `pref` was removed.
    Remove(&'a ContextualPreference),
    /// `pref` (carrying the new score) replaced the same preference at
    /// `old_score`.
    Rescore {
        /// The preference, already carrying its new score.
        pref: &'a ContextualPreference,
        /// The score it had before the mutation.
        old_score: f64,
    },
}

/// Monotonic view-serving counters plus current gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViewStats {
    /// Top-k requests answered straight from a materialized view.
    pub view_hits: u64,
    /// Top-k requests that fell through to resolution.
    pub view_misses: u64,
    /// Mutations absorbed by an incremental patch.
    pub view_patches: u64,
    /// Targeted single-view rebuilds (signature change, underflow,
    /// growth bound, or lazy revalidation).
    pub view_rebuilds: u64,
    /// Views currently holding a materialized ranking.
    pub materialized_views: u64,
    /// Views currently pinned (never evicted).
    pub pinned_views: u64,
}

impl ViewStats {
    /// Fold another catalog's stats into this one (per-user catalogs
    /// aggregate to a service-wide view surface).
    pub fn absorb(&mut self, other: &ViewStats) {
        self.view_hits += other.view_hits;
        self.view_misses += other.view_misses;
        self.view_patches += other.view_patches;
        self.view_rebuilds += other.view_rebuilds;
        self.materialized_views += other.materialized_views;
        self.pinned_views += other.pinned_views;
    }
}

/// The materialized ranking of one view, valid at one epoch.
#[derive(Debug)]
struct Content {
    /// Interned selected states, sorted — the selection signature.
    signature: Vec<StateId>,
    /// The retained prefix of the full ranking: every tuple whose
    /// score is ≥ the floor, in exactly the order a fresh
    /// `RankedResults` would put them (score desc, tuple index asc).
    /// The first `k_max` entries are the heap region; the rest is the
    /// overflow ledger feeding it.
    ranked: Vec<ScoredTuple>,
    /// Whether `ranked` holds the *entire* ranking (then any `k` can
    /// be served and absent tuples are known unmatched).
    complete: bool,
    /// Largest `k` this content can serve when not `complete`.
    k_max: usize,
    /// Build capacity (`k_max` + ledger) used for the growth bound.
    cap: usize,
    /// The catalog epoch this content is valid at.
    epoch: u64,
}

impl Content {
    /// Lowest retained score. Every absent tuple's true score is
    /// strictly below this (build retains all ties at the floor).
    fn floor(&self) -> f64 {
        self.ranked.last().map_or(f64::NEG_INFINITY, |t| t.score)
    }
}

/// One registered view: a context state, its pin status, and (when
/// materialized) its ranking. Hit accounting is atomic so the serve
/// path never takes the catalog's write lock.
#[derive(Debug)]
struct View {
    state: ContextState,
    pinned: AtomicBool,
    content: Option<Content>,
    hits: AtomicU64,
    last_used: AtomicU64,
}

impl View {
    fn new(state: ContextState, pinned: bool, tick: u64) -> Self {
        Self {
            state,
            pinned: AtomicBool::new(pinned),
            content: None,
            hits: AtomicU64::new(0),
            last_used: AtomicU64::new(tick),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    table: StateTable,
    views: HashMap<StateId, View>,
    /// Top-k request counts for states not yet materialized.
    freq: HashMap<StateId, u64>,
    /// The options current content was built under.
    opts: Option<ViewOpts>,
    epoch: u64,
}

/// A per-user catalog of materialized top-k views. Internally
/// synchronized: serving takes a read lock (the shard-level read lock
/// is already held), maintenance and materialization take the write
/// lock.
#[derive(Debug)]
pub struct ViewCatalog {
    inner: RwLock<Inner>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    patches: AtomicU64,
    rebuilds: AtomicU64,
}

impl ViewCatalog {
    /// An empty catalog evicting unpinned views beyond `capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: RwLock::new(Inner::default()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            patches: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        }
    }

    fn now(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Register and pin `state`: materialized lazily on first serve,
    /// never evicted, and carried across snapshots.
    pub fn pin(&self, state: ContextState) {
        let tick = self.now();
        let mut inner = self.inner.write();
        let id = inner.table.intern(&state);
        match inner.views.get_mut(&id) {
            Some(v) => v.pinned.store(true, Ordering::Relaxed),
            None => {
                inner.views.insert(id, View::new(state, true, tick));
            }
        }
    }

    /// Unpin `state` (it becomes LRU-evictable). Returns whether it
    /// was pinned.
    pub fn unpin(&self, state: &ContextState) -> bool {
        let mut inner = self.inner.write();
        let Some(id) = inner.table.lookup(state) else {
            return false;
        };
        match inner.views.get_mut(&id) {
            Some(v) => v.pinned.swap(false, Ordering::Relaxed),
            None => false,
        }
    }

    /// The currently pinned states (what snapshot/checkpoint carry —
    /// registrations only, never contents).
    pub fn pinned_states(&self) -> Vec<ContextState> {
        let inner = self.inner.read();
        let mut out: Vec<ContextState> = inner
            .views
            .values()
            .filter(|v| v.pinned.load(Ordering::Relaxed))
            .map(|v| v.state.clone())
            .collect();
        out.sort();
        out
    }

    /// Serve `top_k_with_ties(k)` for `state` from a materialized
    /// view, or record the miss (materializing the state once it is
    /// hot). `None` means the caller must resolve normally.
    pub fn serve<P: PreferenceStore>(
        &self,
        store: &P,
        relation: &Relation,
        opts: &ViewOpts,
        state: &ContextState,
        k: usize,
    ) -> Option<RankedResults> {
        if !opts.supports_views() || k == 0 {
            return None;
        }
        {
            let inner = self.inner.read();
            if inner.opts.as_ref() == Some(opts) {
                if let Some(view) = inner
                    .table
                    .lookup(state)
                    .and_then(|id| inner.views.get(&id))
                {
                    if let Some(content) = &view.content {
                        if content.epoch == inner.epoch && (content.complete || k <= content.k_max)
                        {
                            let rows = top_k_with_ties(&content.ranked, k);
                            let result = RankedResults::from_sorted(rows.to_vec());
                            view.last_used.store(self.now(), Ordering::Relaxed);
                            let hits = view.hits.fetch_add(1, Ordering::Relaxed) + 1;
                            if hits >= AUTOPIN_AFTER {
                                view.pinned.store(true, Ordering::Relaxed);
                            }
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Some(result);
                        }
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.note_miss(store, relation, opts, state, k)
    }

    /// Miss path: count the request and materialize (or re-materialize
    /// with a larger `k`) once the state is hot. Returns the freshly
    /// built answer when a build happened, so the triggering request
    /// is served from it.
    fn note_miss<P: PreferenceStore>(
        &self,
        store: &P,
        relation: &Relation,
        opts: &ViewOpts,
        state: &ContextState,
        k: usize,
    ) -> Option<RankedResults> {
        let tick = self.now();
        let mut inner = self.inner.write();
        if inner.opts.as_ref() != Some(opts) {
            // Options changed (or first use): every ranking built
            // under the old options is meaningless now.
            for v in inner.views.values_mut() {
                v.content = None;
            }
            inner.freq.clear();
            inner.opts = Some(*opts);
        }
        let id = inner.table.intern(state);
        if !inner.views.contains_key(&id) {
            let n = inner.freq.entry(id).or_insert(0);
            *n += 1;
            if *n < MATERIALIZE_AFTER {
                return None;
            }
            inner.freq.remove(&id);
            inner
                .views
                .insert(id, View::new(state.clone(), false, tick));
            self.evict_over_capacity(&mut inner, id);
        }
        let epoch = inner.epoch;
        let k_max = inner.views[&id]
            .content
            .as_ref()
            .map_or(k, |c| c.k_max.max(k));
        let content = build_content(store, relation, opts, state, k_max, epoch, &mut inner.table);
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        let rows = top_k_with_ties(&content.ranked, k).to_vec();
        let view = inner.views.get_mut(&id).expect("just ensured");
        view.content = Some(content);
        view.last_used.store(tick, Ordering::Relaxed);
        Some(RankedResults::from_sorted(rows))
    }

    /// Evict least-recently-used unpinned views beyond capacity,
    /// never the one just registered.
    fn evict_over_capacity(&self, inner: &mut Inner, keep: StateId) {
        loop {
            let unpinned = inner
                .views
                .iter()
                .filter(|(_, v)| !v.pinned.load(Ordering::Relaxed))
                .count();
            if unpinned <= self.capacity {
                return;
            }
            let victim = inner
                .views
                .iter()
                .filter(|(id, v)| **id != keep && !v.pinned.load(Ordering::Relaxed))
                .min_by_key(|(_, v)| v.last_used.load(Ordering::Relaxed))
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    inner.views.remove(&id);
                }
                None => return,
            }
        }
    }

    /// Maintain every materialized view across one preference
    /// mutation. Called with the store/relation *after* the mutation
    /// applied.
    pub fn on_mutation<P: PreferenceStore>(
        &self,
        store: &P,
        relation: &Relation,
        opts: &ViewOpts,
        change: Change<'_>,
    ) {
        let mut inner = self.inner.write();
        inner.epoch += 1;
        if inner.views.is_empty() {
            return;
        }
        if inner.opts.as_ref() != Some(opts) || !opts.supports_views() {
            for v in inner.views.values_mut() {
                v.content = None;
            }
            return;
        }
        let epoch = inner.epoch;
        let pref = match change {
            Change::Insert(p) | Change::Remove(p) | Change::Rescore { pref: p, .. } => p,
        };
        // The stored states the mutated preference touches. A view
        // whose (unchanged) selection avoids them all is untouched; a
        // *new* closer state can steal any selection, which is what
        // the per-view signature walk below detects.
        let touched: Option<Vec<ContextState>> = pref.descriptor().states(store.env()).ok();
        let ids: Vec<StateId> = inner
            .views
            .iter()
            .filter(|(_, v)| v.content.is_some())
            .map(|(id, _)| *id)
            .collect();
        // σ of the mutated clause, computed once and shared by views.
        let mut sigma_cache: Option<Vec<usize>> = None;
        for id in ids {
            let view_state = inner.views[&id].state.clone();
            let signature = selection_signature(store, opts, &view_state, &mut inner.table);
            let touched_ids: Option<Vec<Option<StateId>>> = touched
                .as_ref()
                .map(|states| states.iter().map(|s| inner.table.lookup(s)).collect());
            let Some(content) = inner.views.get_mut(&id).and_then(|v| v.content.as_mut()) else {
                continue;
            };
            if content.signature != signature {
                let k_max = content.k_max;
                let fresh = build_content(
                    store,
                    relation,
                    opts,
                    &view_state,
                    k_max,
                    epoch,
                    &mut inner.table,
                );
                self.rebuilds.fetch_add(1, Ordering::Relaxed);
                inner.views.get_mut(&id).expect("present").content = Some(fresh);
                continue;
            }
            // Signature unchanged: does the mutation's descriptor even
            // intersect the selected states?
            let intersects = match &touched_ids {
                Some(ids) => ids
                    .iter()
                    .any(|s| s.is_some_and(|sid| signature.contains(&sid))),
                None => true, // unparseable descriptor: treat as affected
            };
            if !intersects {
                content.epoch = epoch;
                continue;
            }
            let sigma = sigma_cache
                .get_or_insert_with(|| relation.select(&pref.clause().predicate()).collect());
            let outcome = match change {
                Change::Insert(p) => patch_raise(content, sigma, p.score()),
                Change::Rescore { pref: p, old_score } if p.score() > old_score => {
                    patch_raise(content, sigma, p.score())
                }
                Change::Rescore { old_score, .. } => {
                    if dominates(content, sigma, old_score) {
                        Patch::Underflow
                    } else {
                        Patch::Untouched
                    }
                }
                Change::Remove(p) => {
                    if dominates(content, sigma, p.score()) {
                        Patch::Underflow
                    } else {
                        Patch::Untouched
                    }
                }
            };
            match outcome {
                Patch::Patched => {
                    self.patches.fetch_add(1, Ordering::Relaxed);
                    content.epoch = epoch;
                    if content.ranked.len() > content.cap * GROWTH_FACTOR {
                        let k_max = content.k_max;
                        let fresh = build_content(
                            store,
                            relation,
                            opts,
                            &view_state,
                            k_max,
                            epoch,
                            &mut inner.table,
                        );
                        self.rebuilds.fetch_add(1, Ordering::Relaxed);
                        inner.views.get_mut(&id).expect("present").content = Some(fresh);
                    }
                }
                Patch::Untouched => {
                    content.epoch = epoch;
                }
                Patch::Underflow => {
                    // A retained tuple may have lost its dominating
                    // contributor: the heap cannot be refilled from
                    // local knowledge — targeted rebuild of this one
                    // view.
                    let k_max = content.k_max;
                    let fresh = build_content(
                        store,
                        relation,
                        opts,
                        &view_state,
                        k_max,
                        epoch,
                        &mut inner.table,
                    );
                    self.rebuilds.fetch_add(1, Ordering::Relaxed);
                    inner.views.get_mut(&id).expect("present").content = Some(fresh);
                }
            }
        }
    }

    /// Drop every materialized ranking (registrations and pins stay).
    /// Used when query defaults change and after snapshot restore.
    pub fn invalidate_contents(&self) {
        let mut inner = self.inner.write();
        inner.epoch += 1;
        for v in inner.views.values_mut() {
            v.content = None;
        }
        inner.freq.clear();
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> ViewStats {
        let inner = self.inner.read();
        ViewStats {
            view_hits: self.hits.load(Ordering::Relaxed),
            view_misses: self.misses.load(Ordering::Relaxed),
            view_patches: self.patches.load(Ordering::Relaxed),
            view_rebuilds: self.rebuilds.load(Ordering::Relaxed),
            materialized_views: inner.views.values().filter(|v| v.content.is_some()).count() as u64,
            pinned_views: inner
                .views
                .values()
                .filter(|v| v.pinned.load(Ordering::Relaxed))
                .count() as u64,
        }
    }

    /// Number of registered views (materialized or lazy).
    pub fn len(&self) -> usize {
        self.inner.read().views.len()
    }

    /// Whether no view is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().views.is_empty()
    }
}

/// What one mutation did to one view.
enum Patch {
    Patched,
    Untouched,
    Underflow,
}

/// Whether any retained tuple matched by `sigma` has `score` as its
/// recorded maximum — removing that contribution may drop the tuple's
/// true score, which the view cannot compute locally.
fn dominates(content: &Content, sigma: &[usize], score: f64) -> bool {
    // `sigma` is ascending (σ scans tuples in index order).
    content
        .ranked
        .iter()
        .any(|t| t.score == score && sigma.binary_search(&t.tuple_index).is_ok())
}

/// Merge a σ-selection at `score` into the view under the `Max`
/// combiner. Exact: a retained tuple's recorded score is its true
/// maximum, and an absent tuple's true score is strictly below the
/// floor, so `score >= floor` is the precise admission test.
fn patch_raise(content: &mut Content, sigma: &[usize], score: f64) -> Patch {
    let floor = content.floor();
    let mut changed = false;
    for &ix in sigma {
        match content.ranked.iter_mut().find(|t| t.tuple_index == ix) {
            Some(t) => {
                if score > t.score {
                    t.score = score;
                    changed = true;
                }
            }
            None => {
                if content.complete || score >= floor {
                    content.ranked.push(ScoredTuple {
                        tuple_index: ix,
                        score,
                    });
                    changed = true;
                }
            }
        }
    }
    if changed {
        sort_ranking(&mut content.ranked);
        Patch::Patched
    } else {
        Patch::Untouched
    }
}

/// The exact ordering `RankedResults::from_scores` produces: score
/// descending, tuple index ascending.
fn sort_ranking(ranked: &mut [ScoredTuple]) {
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.tuple_index.cmp(&b.tuple_index))
    });
}

/// `top_k_with_ties` over an already-sorted retained ranking.
fn top_k_with_ties(ranked: &[ScoredTuple], k: usize) -> &[ScoredTuple] {
    if k == 0 || ranked.is_empty() {
        return &[];
    }
    if ranked.len() <= k {
        return ranked;
    }
    let threshold = ranked[k - 1].score;
    let mut end = k;
    while end < ranked.len() && ranked[end].score == threshold {
        end += 1;
    }
    &ranked[..end]
}

/// The interned, sorted set of stored states `state`'s resolution
/// selects — a resolver walk only, no relation scan.
fn selection_signature<P: PreferenceStore>(
    store: &P,
    opts: &ViewOpts,
    state: &ContextState,
    table: &mut StateTable,
) -> Vec<StateId> {
    let resolver = ContextResolver::new(store, opts.distance, opts.tie);
    let res = resolver.resolve_state(state);
    let mut sig: Vec<StateId> = res
        .selected
        .iter()
        .map(|c| table.intern(&c.state))
        .collect();
    sig.sort_unstable();
    sig.dedup();
    sig
}

/// Materialize one view: resolve, score the selected leaves' clauses
/// (exactly as `Rank_CS` does for one state), and retain the top
/// `k_max + ledger` prefix with all ties at the cut.
fn build_content<P: PreferenceStore>(
    store: &P,
    relation: &Relation,
    opts: &ViewOpts,
    state: &ContextState,
    k_max: usize,
    epoch: u64,
    table: &mut StateTable,
) -> Content {
    let resolver = ContextResolver::new(store, opts.distance, opts.tie);
    let res = resolver.resolve_state(state);
    let mut sig: Vec<StateId> = res
        .selected
        .iter()
        .map(|c| table.intern(&c.state))
        .collect();
    sig.sort_unstable();
    sig.dedup();
    let mut raw = Vec::new();
    for cand in &res.selected {
        for entry in store.entries(cand.leaf) {
            let pred = entry.clause.predicate();
            for ix in relation.select(&pred) {
                raw.push(ScoredTuple {
                    tuple_index: ix,
                    score: entry.score,
                });
            }
        }
    }
    let full = RankedResults::from_scores(raw, opts.combiner);
    let cap = k_max + k_max.max(8);
    let retained = full.top_k_with_ties(cap);
    let complete = retained.len() == full.len();
    Content {
        signature: sig,
        ranked: retained.to_vec(),
        complete,
        k_max,
        cap,
        epoch,
    }
}
