//! The sharded multi-user serving core.
//!
//! [`MultiUserDb`] is the paper's deployment shape — one environment and
//! relation, many user profiles — but it is a plain single-threaded
//! value: a concurrent server must wrap the whole thing in one
//! `RwLock`, so a single user's profile edit (which rebuilds *their*
//! tree and invalidates *their* cache) blocks every other user's
//! queries, and a snapshot-save blocks all writes for the duration of
//! the I/O.
//!
//! [`ShardedMultiUserDb`] removes that global chokepoint. Users are
//! striped over a fixed array of shards by a hash of the user name;
//! each shard is its own `RwLock` over its users' [`UserSlot`]s. The
//! environment and relation are immutable after construction and shared
//! lock-free. Consequences:
//!
//! * a mutation (preference insert/remove/rescore, user add/remove)
//!   write-locks only the owning shard — queries for users on the other
//!   shards proceed untouched;
//! * queries take a shard *read* lock, so queries never block each
//!   other (the per-user query cache is internally synchronized and
//!   its hit path is read-lock-only, see `ctxpref-qcache`);
//! * a save works from [`ShardedMultiUserDb::snapshot`], which holds
//!   each shard's read lock only long enough to clone that shard's
//!   slots — never across I/O.
//!
//! Both cores share the same [`UserSlot`] implementation, so query and
//! mutation semantics are identical by construction; `from_db` /
//! `into_db` convert losslessly in both directions.

use std::collections::HashMap;

use ctxpref_context::{
    parse_descriptor, ContextEnvironment, ContextState, ExtendedContextDescriptor,
};
use ctxpref_profile::{
    AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree, TreeStats,
};
use ctxpref_relation::{CompareOp, Relation, Value};
use ctxpref_views::ViewStats;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::db::{QueryAnswer, QueryOptions};
use crate::error::CoreError;
use crate::multi::{MultiUserDb, UserSlot};

/// Default number of stripes. Collisions cost only read-vs-write
/// contention, so a modest constant far above the worker count is
/// plenty; a power of two keeps the modulo cheap.
pub const DEFAULT_SHARDS: usize = 16;

type Shard = RwLock<HashMap<String, UserSlot>>;

/// A multi-user contextual preference database sharded for concurrent
/// serving: user slots are striped over fixed per-shard `RwLock`s, so
/// one user's mutation never blocks another shard's queries. See the
/// module docs.
#[derive(Debug)]
pub struct ShardedMultiUserDb {
    env: ContextEnvironment,
    relation: Relation,
    order: ParamOrder,
    cache_capacity: usize,
    defaults: RwLock<QueryOptions>,
    shards: Box<[Shard]>,
}

impl ShardedMultiUserDb {
    /// An empty sharded database over `env` and `relation` with
    /// `cache_capacity` per user (0 disables caching) and `shards`
    /// stripes (clamped to ≥ 1).
    pub fn new(
        env: ContextEnvironment,
        relation: Relation,
        cache_capacity: usize,
        shards: usize,
    ) -> Self {
        let order = ParamOrder::by_ascending_domain(&env);
        let shards = (0..shards.max(1))
            .map(|_| RwLock::new(HashMap::new()))
            .collect();
        Self {
            env,
            relation,
            order,
            cache_capacity,
            defaults: RwLock::new(QueryOptions::default()),
            shards,
        }
    }

    /// Convert a plain [`MultiUserDb`] into a sharded one, moving every
    /// user slot (profiles, trees, and caches are reused, not rebuilt).
    pub fn from_db(db: MultiUserDb, shards: usize) -> Self {
        let (env, relation, order, cache_capacity, defaults, users) = db.into_parts();
        let shards = shards.max(1);
        let mut maps: Vec<HashMap<String, UserSlot>> =
            (0..shards).map(|_| HashMap::new()).collect();
        for (name, slot) in users {
            let ix = shard_index(&name, shards);
            maps[ix].insert(name, slot);
        }
        Self {
            env,
            relation,
            order,
            cache_capacity,
            defaults: RwLock::new(defaults),
            shards: maps.into_iter().map(RwLock::new).collect(),
        }
    }

    /// Convert back into a plain [`MultiUserDb`], consuming the shards.
    pub fn into_db(self) -> MultiUserDb {
        let mut users = HashMap::new();
        for shard in self.shards.into_vec() {
            users.extend(shard.into_inner());
        }
        MultiUserDb::from_parts(
            self.env,
            self.relation,
            self.order,
            self.cache_capacity,
            self.defaults.into_inner(),
            users,
        )
    }

    /// A point-in-time copy as a plain [`MultiUserDb`] (fresh, empty
    /// query caches — cached rankings are derived data). Each shard's
    /// read lock is held only while cloning that shard's slots, so a
    /// long save never blocks writers for the duration of the I/O.
    pub fn snapshot(&self) -> MultiUserDb {
        let mut snap = self.snapshot_begin();
        for ix in 0..self.shards.len() {
            self.snapshot_stripe(ix, &mut snap);
        }
        snap.finish()
    }

    /// Begin an incremental snapshot: captures the shared parts
    /// (environment, relation, order, defaults) and returns an empty
    /// accumulator. Feed it stripes via [`Self::snapshot_stripe`] —
    /// external coordinators (e.g. a write-ahead-log checkpointer) can
    /// interleave their own per-stripe bookkeeping between clones so
    /// that each stripe's copy is consistent with a per-stripe cut
    /// point, without ever quiescing the whole database.
    pub fn snapshot_begin(&self) -> PartialSnapshot {
        PartialSnapshot {
            env: self.env.clone(),
            relation: self.relation.clone(),
            order: self.order.clone(),
            cache_capacity: self.cache_capacity,
            defaults: *self.defaults.read(),
            users: HashMap::new(),
        }
    }

    /// Clone stripe `ix`'s user slots into `snap`, holding that
    /// stripe's read lock only for the duration of the clone.
    ///
    /// # Panics
    ///
    /// If `ix >= self.num_shards()`.
    pub fn snapshot_stripe(&self, ix: usize, snap: &mut PartialSnapshot) {
        let guard = self.shards[ix].read();
        for (name, slot) in guard.iter() {
            snap.users.insert(
                name.clone(),
                slot.clone_for_snapshot(&self.env, self.cache_capacity),
            );
        }
    }

    /// The shared context environment.
    pub fn env(&self) -> &ContextEnvironment {
        &self.env
    }

    /// The shared relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Number of stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The stripe serving `user` — exposed so tests and benchmarks can
    /// reason about collisions deterministically.
    pub fn shard_of(&self, user: &str) -> usize {
        shard_index(user, self.shards.len())
    }

    /// Per-user cache capacity (0 = caching disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// Number of registered users (consistent only if no concurrent
    /// user add/remove is in flight).
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// User names in sorted order.
    pub fn users_sorted(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort_unstable();
        names
    }

    /// The query options used for every query on this database.
    pub fn query_defaults(&self) -> QueryOptions {
        *self.defaults.read()
    }

    /// Replace the query options; every user's cache and materialized
    /// view contents are invalidated (both were computed under the old
    /// options).
    pub fn set_query_defaults(&self, options: QueryOptions) {
        *self.defaults.write() = options;
        for shard in self.shards.iter() {
            let guard = shard.read();
            for slot in guard.values() {
                if let Some(c) = &slot.cache {
                    c.invalidate_all();
                }
                slot.views.invalidate_contents();
            }
        }
    }

    fn shard(&self, user: &str) -> &Shard {
        &self.shards[shard_index(user, self.shards.len())]
    }

    /// Register a user with an empty profile.
    pub fn add_user(&self, name: &str) -> Result<(), CoreError> {
        self.add_user_with_profile(name, Profile::new(self.env.clone()))
    }

    /// Register a user with an initial profile.
    pub fn add_user_with_profile(&self, name: &str, profile: Profile) -> Result<(), CoreError> {
        let slot = UserSlot::new(profile, &self.order, &self.env, self.cache_capacity)?;
        let mut shard = self.shard(name).write();
        if shard.contains_key(name) {
            return Err(CoreError::DuplicateUser(name.to_string()));
        }
        shard.insert(name.to_string(), slot);
        Ok(())
    }

    /// Remove a user and return their profile.
    pub fn remove_user(&self, name: &str) -> Result<Profile, CoreError> {
        self.shard(name)
            .write()
            .remove(name)
            .map(|slot| slot.profile)
            .ok_or_else(|| CoreError::NoSuchUser(name.to_string()))
    }

    fn with_slot<R>(
        &self,
        user: &str,
        f: impl FnOnce(&UserSlot) -> Result<R, CoreError>,
    ) -> Result<R, CoreError> {
        let shard = self.shard(user).read();
        let slot = shard
            .get(user)
            .ok_or_else(|| CoreError::NoSuchUser(user.to_string()))?;
        f(slot)
    }

    fn with_slot_mut<R>(
        &self,
        user: &str,
        f: impl FnOnce(&mut UserSlot) -> Result<R, CoreError>,
    ) -> Result<R, CoreError> {
        let mut shard = self.shard(user).write();
        let slot = shard
            .get_mut(user)
            .ok_or_else(|| CoreError::NoSuchUser(user.to_string()))?;
        f(slot)
    }

    /// A user's profile (an owned clone — the slot lives behind the
    /// shard lock, so references cannot escape it).
    pub fn profile(&self, user: &str) -> Result<Profile, CoreError> {
        self.with_slot(user, |s| Ok(s.profile.clone()))
    }

    /// A user's profile tree (owned clone, for display and explanation).
    pub fn tree(&self, user: &str) -> Result<ProfileTree, CoreError> {
        self.with_slot(user, |s| Ok(s.tree.clone()))
    }

    /// A user's profile-tree statistics.
    pub fn tree_stats(&self, user: &str) -> Result<TreeStats, CoreError> {
        self.with_slot(user, |s| Ok(s.tree.stats()))
    }

    /// One user's query-cache statistics (`None` when caching is
    /// disabled).
    pub fn cache_stats(&self, user: &str) -> Result<Option<ctxpref_qcache::CacheStats>, CoreError> {
        self.with_slot(user, |s| Ok(s.cache.as_ref().map(|c| c.stats())))
    }

    /// Query-cache statistics summed over every user on every shard —
    /// the serving layer's `stats` verb surfaces these so operators can
    /// see invalidation and eviction pressure without enumerating
    /// users. Consistent per-slot; cross-slot skew is possible under
    /// concurrent traffic (like every aggregate counter here).
    pub fn cache_totals(&self) -> ctxpref_qcache::CacheStats {
        let mut total = ctxpref_qcache::CacheStats::default();
        for shard in self.shards.iter() {
            let guard = shard.read();
            for slot in guard.values() {
                if let Some(s) = slot.cache.as_ref().map(|c| c.stats()) {
                    total.hits += s.hits;
                    total.misses += s.misses;
                    total.insertions += s.insertions;
                    total.evictions += s.evictions;
                    total.invalidations += s.invalidations;
                    total.cells_accessed += s.cells_accessed;
                }
            }
        }
        total
    }

    /// View-serving statistics summed over every user on every shard.
    pub fn views_totals(&self) -> ViewStats {
        let mut total = ViewStats::default();
        for shard in self.shards.iter() {
            let guard = shard.read();
            for slot in guard.values() {
                total.absorb(&slot.views.stats());
            }
        }
        total
    }

    /// One user's view-serving counters.
    pub fn view_stats(&self, user: &str) -> Result<ViewStats, CoreError> {
        self.with_slot(user, |s| Ok(s.views.stats()))
    }

    /// Register and pin a materialized top-k view of `(user, state)`:
    /// it is materialized on first use and never evicted.
    pub fn pin_view(&self, user: &str, state: &ContextState) -> Result<(), CoreError> {
        self.with_slot(user, |s| {
            s.views.pin(state.clone());
            Ok(())
        })
    }

    /// Unpin a previously pinned view; returns whether it was pinned.
    pub fn unpin_view(&self, user: &str, state: &ContextState) -> Result<bool, CoreError> {
        self.with_slot(user, |s| Ok(s.views.unpin(state)))
    }

    /// One user's pinned view states (sorted).
    pub fn pinned_views(&self, user: &str) -> Result<Vec<ContextState>, CoreError> {
        self.with_slot(user, |s| Ok(s.views.pinned_states()))
    }

    /// Insert a preference for one user; only their shard is
    /// write-locked.
    pub fn insert_preference(
        &self,
        user: &str,
        pref: ContextualPreference,
    ) -> Result<(), CoreError> {
        let defaults = *self.defaults.read();
        self.with_slot_mut(user, |s| {
            s.insert_preference(pref, &self.relation, defaults)
        })
    }

    /// Insert an equality preference for one user from its textual
    /// parts.
    pub fn insert_preference_eq(
        &self,
        user: &str,
        descriptor: &str,
        attr: &str,
        value: Value,
        score: f64,
    ) -> Result<(), CoreError> {
        let cod = parse_descriptor(&self.env, descriptor)?;
        let clause = AttributeClause::new(
            self.relation.schema().require_attr(attr)?,
            CompareOp::Eq,
            value,
        );
        self.insert_preference(user, ContextualPreference::new(cod, clause, score)?)
    }

    /// Remove one user's preference at `index`.
    pub fn remove_preference(
        &self,
        user: &str,
        index: usize,
    ) -> Result<ContextualPreference, CoreError> {
        let defaults = *self.defaults.read();
        self.with_slot_mut(user, |s| {
            s.remove_preference(index, &self.order, &self.relation, defaults)
        })
    }

    /// Update the score of one user's preference at `index`.
    pub fn update_preference_score(
        &self,
        user: &str,
        index: usize,
        score: f64,
    ) -> Result<(), CoreError> {
        let defaults = *self.defaults.read();
        self.with_slot_mut(user, |s| {
            s.update_preference_score(
                index,
                score,
                &self.env,
                &self.order,
                &self.relation,
                defaults,
            )
        })
    }

    /// Query one user's profile under a single context state, through
    /// their cache when enabled. Takes the user's shard read lock.
    pub fn query_state(&self, user: &str, state: &ContextState) -> Result<QueryAnswer, CoreError> {
        let defaults = *self.defaults.read();
        self.with_slot(user, |s| {
            s.query_state(&self.env, &self.relation, defaults, state)
        })
    }

    /// Top-k query under a single context state: served from the
    /// user's materialized view when one is current, early-terminating
    /// `rank_cs_topk` otherwise. The boolean reports whether a view
    /// answered. Takes the user's shard read lock.
    pub fn query_state_topk(
        &self,
        user: &str,
        state: &ContextState,
        k: usize,
    ) -> Result<(QueryAnswer, bool), CoreError> {
        let defaults = *self.defaults.read();
        self.with_slot(user, |s| {
            s.query_state_topk(&self.env, &self.relation, defaults, state, k)
        })
    }

    /// Query one user's profile with an explicit extended descriptor;
    /// multi-state descriptors fan `Rank_CS` out across the states.
    pub fn query(
        &self,
        user: &str,
        ecod: &ExtendedContextDescriptor,
    ) -> Result<QueryAnswer, CoreError> {
        let defaults = *self.defaults.read();
        self.with_slot(user, |s| s.query(&self.relation, defaults, ecod))
    }

    /// Render the top-`k` answer (ties included) as `name (score)` lines
    /// using the given display attribute.
    pub fn render_top(
        &self,
        answer: &QueryAnswer,
        attr: &str,
        k: usize,
    ) -> Result<String, CoreError> {
        let a = self.relation.schema().require_attr(attr)?;
        let mut out = String::new();
        for e in answer.results.top_k_with_ties(k) {
            out.push_str(&format!(
                "{} ({:.2})\n",
                self.relation.tuple(e.tuple_index).value(a),
                e.score
            ));
        }
        Ok(out)
    }

    /// Acquire `user`'s shard for reading, once, and return a handle
    /// that can serve any number of queries for users on that shard
    /// without re-acquiring. This is the serving layer's hot path: the
    /// worker pays for the lock exactly once per request, can re-check
    /// its deadline *after* the (possibly contended) acquisition, and
    /// then walks its whole degradation ladder under the one guard.
    pub fn read_user_shard<'a>(&'a self, user: &str) -> UserShardRead<'a> {
        UserShardRead {
            db: self,
            defaults: *self.defaults.read(),
            guard: self.shard(user).read(),
        }
    }

    /// Stripe `ix`'s users and profiles, sorted by name. The stripe's
    /// read lock is held only for the clone. Replication uses this both
    /// to digest a stripe (the sort makes the digest canonical) and to
    /// ship a divergent stripe's contents for resync.
    ///
    /// # Panics
    ///
    /// If `ix >= self.num_shards()`.
    pub fn stripe_users(&self, ix: usize) -> Vec<(String, Profile)> {
        let guard = self.shards[ix].read();
        let mut users: Vec<(String, Profile)> = guard
            .iter()
            .map(|(name, slot)| (name.clone(), slot.profile.clone()))
            .collect();
        drop(guard);
        users.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        users
    }

    /// Replace stripe `ix`'s entire contents with `users`, rebuilding
    /// each slot (tree and cache) from its profile. Users that hash to
    /// a different stripe are rejected before anything is replaced, so
    /// the fold invariant (stripe == FNV(user) % shards) cannot be
    /// broken. This is the anti-entropy resync path: the stripe's write
    /// lock is held across the swap, so readers see either the old
    /// stripe or the new one, never a mix.
    ///
    /// # Panics
    ///
    /// If `ix >= self.num_shards()`.
    pub fn replace_stripe(
        &self,
        ix: usize,
        users: Vec<(String, Profile)>,
    ) -> Result<(), CoreError> {
        let mut slots = HashMap::with_capacity(users.len());
        for (name, profile) in users {
            if shard_index(&name, self.shards.len()) != ix {
                return Err(CoreError::NoSuchUser(format!(
                    "{name} does not belong to stripe {ix}"
                )));
            }
            let slot = UserSlot::new(profile, &self.order, &self.env, self.cache_capacity)?;
            slots.insert(name, slot);
        }
        *self.shards[ix].write() = slots;
        Ok(())
    }

    /// Hold `user`'s shard write lock until the returned guard drops,
    /// blocking that shard's queries and mutations. Only useful for
    /// tests and benchmarks that need deterministic contention (e.g.
    /// proving that *other* shards keep serving).
    pub fn quiesce_user<'a>(&'a self, user: &str) -> ShardQuiesceGuard<'a> {
        ShardQuiesceGuard {
            _guard: self.shard(user).write(),
        }
    }
}

/// A read guard over one shard, serving queries without re-locking. See
/// [`ShardedMultiUserDb::read_user_shard`].
pub struct UserShardRead<'a> {
    db: &'a ShardedMultiUserDb,
    defaults: QueryOptions,
    guard: RwLockReadGuard<'a, HashMap<String, UserSlot>>,
}

impl UserShardRead<'_> {
    /// The shared context environment.
    pub fn env(&self) -> &ContextEnvironment {
        &self.db.env
    }

    /// The shared relation.
    pub fn relation(&self) -> &Relation {
        &self.db.relation
    }

    /// True iff `user` is registered on this shard.
    pub fn has_user(&self, user: &str) -> bool {
        self.guard.contains_key(user)
    }

    /// Query `user` under a single context state through their cache,
    /// re-using the already-held shard read lock. Errors with
    /// [`CoreError::NoSuchUser`] for users absent from this shard.
    pub fn query_state(&self, user: &str, state: &ContextState) -> Result<QueryAnswer, CoreError> {
        let slot = self
            .guard
            .get(user)
            .ok_or_else(|| CoreError::NoSuchUser(user.to_string()))?;
        slot.query_state(&self.db.env, &self.db.relation, self.defaults, state)
    }

    /// Top-k query for `user` under a single context state, re-using
    /// the already-held shard read lock: materialized view when one is
    /// current (the view catalog's hit path is itself read-lock-only),
    /// early-terminating `rank_cs_topk` otherwise. The boolean reports
    /// whether a view answered.
    pub fn query_state_topk(
        &self,
        user: &str,
        state: &ContextState,
        k: usize,
    ) -> Result<(QueryAnswer, bool), CoreError> {
        let slot = self
            .guard
            .get(user)
            .ok_or_else(|| CoreError::NoSuchUser(user.to_string()))?;
        slot.query_state_topk(&self.db.env, &self.db.relation, self.defaults, state, k)
    }
}

/// Opaque guard returned by [`ShardedMultiUserDb::quiesce_user`].
pub struct ShardQuiesceGuard<'a> {
    _guard: RwLockWriteGuard<'a, HashMap<String, UserSlot>>,
}

/// An in-progress incremental snapshot: the shared parts of the
/// database plus the user slots of every stripe fed in so far. See
/// [`ShardedMultiUserDb::snapshot_begin`].
#[derive(Debug)]
pub struct PartialSnapshot {
    env: ContextEnvironment,
    relation: Relation,
    order: ParamOrder,
    cache_capacity: usize,
    defaults: QueryOptions,
    users: HashMap<String, UserSlot>,
}

impl PartialSnapshot {
    /// Users accumulated so far.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Assemble the accumulated stripes into a plain [`MultiUserDb`].
    pub fn finish(self) -> MultiUserDb {
        MultiUserDb::from_parts(
            self.env,
            self.relation,
            self.order,
            self.cache_capacity,
            self.defaults,
            self.users,
        )
    }
}

/// FNV-1a over the user name, folded onto the stripe count. Stable
/// across processes (used by on-disk-agnostic tests and benches).
fn shard_index(user: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in user.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_hierarchy::Hierarchy;
    use ctxpref_relation::{AttrType, Schema};

    fn setup() -> ShardedMultiUserDb {
        let env =
            ContextEnvironment::new(vec![Hierarchy::flat("weather", &["cold", "warm"]).unwrap()])
                .unwrap();
        let schema = Schema::new(&[("type", AttrType::Str)]).unwrap();
        let mut rel = Relation::new("poi", schema);
        for t in ["museum", "brewery", "zoo"] {
            rel.insert(vec![t.into()]).unwrap();
        }
        ShardedMultiUserDb::new(env, rel, 8, 4)
    }

    fn pref(db: &ShardedMultiUserDb, cod: &str, ty: &str, score: f64) -> ContextualPreference {
        ContextualPreference::new(
            parse_descriptor(db.env(), cod).unwrap(),
            AttributeClause::eq(db.relation().schema().attr("type").unwrap(), ty.into()),
            score,
        )
        .unwrap()
    }

    #[test]
    fn behaves_like_multi_user_db() {
        let db = setup();
        db.add_user("alice").unwrap();
        db.add_user("bob").unwrap();
        assert!(matches!(
            db.add_user("alice").unwrap_err(),
            CoreError::DuplicateUser(_)
        ));
        assert_eq!(db.user_count(), 2);
        assert_eq!(
            db.users_sorted(),
            vec!["alice".to_string(), "bob".to_string()]
        );

        let a = pref(&db, "weather = warm", "brewery", 0.9);
        let b = pref(&db, "weather = warm", "museum", 0.8);
        db.insert_preference("alice", a).unwrap();
        db.insert_preference("bob", b).unwrap();

        let warm = ContextState::parse(db.env(), &["warm"]).unwrap();
        let alice = db.query_state("alice", &warm).unwrap();
        let bob = db.query_state("bob", &warm).unwrap();
        assert_eq!(alice.results.entries()[0].tuple_index, 1); // brewery
        assert_eq!(bob.results.entries()[0].tuple_index, 0); // museum

        // Cached on re-query; the per-user cache lives in the slot.
        assert!(db.query_state("alice", &warm).unwrap().from_cache);
        assert!(db.cache_stats("alice").unwrap().unwrap().hits >= 1);

        // Mutations invalidate only that user's cache.
        db.insert_preference("alice", pref(&db, "weather = cold", "zoo", 0.5))
            .unwrap();
        assert!(!db.query_state("alice", &warm).unwrap().from_cache);
        assert!(db.query_state("bob", &warm).unwrap().from_cache);

        assert!(matches!(
            db.query_state("ghost", &warm).unwrap_err(),
            CoreError::NoSuchUser(_)
        ));
        let p = db.remove_user("bob").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(db.user_count(), 1);
    }

    #[test]
    fn round_trips_through_multi_user_db() {
        let db = setup();
        for u in ["u0", "u1", "u2", "u3", "u4"] {
            db.add_user(u).unwrap();
            db.insert_preference(u, pref(&db, "weather = warm", "zoo", 0.4))
                .unwrap();
        }
        let warm = ContextState::parse(db.env(), &["warm"]).unwrap();
        let before = db.query_state("u3", &warm).unwrap();

        let plain = db.snapshot();
        assert_eq!(plain.user_count(), 5);
        assert_eq!(plain.profile("u3").unwrap().len(), 1);
        let after = plain.query_state("u3", &warm).unwrap();
        assert_eq!(before.results.entries(), after.results.entries());

        // from_db ↔ into_db round trip preserves users and profiles.
        let resharded = ShardedMultiUserDb::from_db(plain, 3);
        assert_eq!(resharded.num_shards(), 3);
        assert_eq!(resharded.user_count(), 5);
        let back = resharded.into_db();
        assert_eq!(back.user_count(), 5);
        assert_eq!(back.profile("u0").unwrap().len(), 1);
    }

    #[test]
    fn shard_mapping_is_stable_and_total() {
        let db = setup();
        for i in 0..64 {
            let name = format!("user{i}");
            let s = db.shard_of(&name);
            assert!(s < db.num_shards());
            assert_eq!(s, db.shard_of(&name));
        }
        // With 64 users over 4 shards, every shard serves someone.
        let mut seen = vec![false; db.num_shards()];
        for i in 0..64 {
            seen[db.shard_of(&format!("user{i}"))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shard_read_guard_serves_queries() {
        let db = setup();
        db.add_user("alice").unwrap();
        db.insert_preference("alice", pref(&db, "weather = warm", "brewery", 0.9))
            .unwrap();
        let warm = ContextState::parse(db.env(), &["warm"]).unwrap();
        let shard = db.read_user_shard("alice");
        assert!(shard.has_user("alice"));
        assert!(!shard.has_user("ghost"));
        let answer = shard.query_state("alice", &warm).unwrap();
        assert_eq!(answer.results.entries()[0].tuple_index, 1);
        assert_eq!(shard.env().len(), 1);
        assert_eq!(shard.relation().len(), 3);
    }

    #[test]
    fn quiesced_shard_blocks_only_itself() {
        let db = std::sync::Arc::new(setup());
        // Find two users on different shards.
        let users: Vec<String> = (0..32).map(|i| format!("user{i}")).collect();
        let a = users[0].clone();
        let b = users
            .iter()
            .find(|u| db.shard_of(u) != db.shard_of(&a))
            .expect("32 users over 4 shards must span ≥ 2 shards")
            .clone();
        db.add_user(&a).unwrap();
        db.add_user(&b).unwrap();
        let warm = ContextState::parse(db.env(), &["warm"]).unwrap();

        let guard = db.quiesce_user(&a);
        // `b`'s shard is untouched: queries and even writes proceed.
        db.query_state(&b, &warm).unwrap();
        db.insert_preference(&b, pref(&db, "weather = warm", "zoo", 0.3))
            .unwrap();
        // `a`'s shard is locked: a try_read-equivalent must fail. We
        // probe via a thread with a timeout rather than blocking the
        // test forever.
        let (tx, rx) = std::sync::mpsc::channel();
        let db2 = std::sync::Arc::clone(&db);
        let a2 = a.clone();
        let warm2 = warm.clone();
        let h = std::thread::spawn(move || {
            let _ = db2.query_state(&a2, &warm2);
            tx.send(()).ok();
        });
        assert!(
            rx.recv_timeout(std::time::Duration::from_millis(100))
                .is_err(),
            "query on the quiesced shard should be blocked"
        );
        drop(guard);
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("query must complete once the shard is released");
        h.join().unwrap();
    }
}
