use std::error::Error;
use std::fmt;

use ctxpref_context::ContextError;
use ctxpref_profile::ProfileError;
use ctxpref_relation::RelationError;

/// Errors of the [`crate::ContextualDb`] façade.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The builder was not given a context environment.
    MissingEnvironment,
    /// The builder was not given a relation.
    MissingRelation,
    /// An error from the context model.
    Context(ContextError),
    /// An error from the preference / profile layer.
    Profile(ProfileError),
    /// An error from the relational layer.
    Relation(RelationError),
    /// A preference index out of bounds.
    NoSuchPreference(usize),
    /// A user name that is not registered (multi-user database).
    NoSuchUser(String),
    /// A user name that is already registered (multi-user database).
    DuplicateUser(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingEnvironment => write!(f, "ContextualDb needs a context environment"),
            Self::MissingRelation => write!(f, "ContextualDb needs a relation"),
            Self::Context(e) => write!(f, "{e}"),
            Self::Profile(e) => write!(f, "{e}"),
            Self::Relation(e) => write!(f, "{e}"),
            Self::NoSuchPreference(i) => write!(f, "no preference at index {i}"),
            Self::NoSuchUser(u) => write!(f, "no user named {u:?}"),
            Self::DuplicateUser(u) => write!(f, "user {u:?} already exists"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Context(e) => Some(e),
            Self::Profile(e) => Some(e),
            Self::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ContextError> for CoreError {
    fn from(e: ContextError) -> Self {
        Self::Context(e)
    }
}

impl From<ProfileError> for CoreError {
    fn from(e: ProfileError) -> Self {
        Self::Profile(e)
    }
}

impl From<RelationError> for CoreError {
    fn from(e: RelationError) -> Self {
        Self::Relation(e)
    }
}
