use std::sync::Arc;

use ctxpref_context::{
    parse_descriptor, parse_extended_descriptor, ContextDescriptor, ContextEnvironment,
    ContextState, DistanceKind, ExtendedContextDescriptor, ParameterDescriptor,
};
use ctxpref_profile::{
    AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree, TreeStats,
};
use ctxpref_qcache::{CacheStats, ContextQueryTree};
use ctxpref_relation::{CompareOp, RankedResults, Relation, ScoreCombiner, Value};
use ctxpref_resolve::{rank_cs, StateResolution, TieBreak};

use crate::error::CoreError;

/// Per-query knobs with the paper's defaults: hierarchy distance,
/// all tied candidates, max score combining.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// State distance used to pick among covering candidates.
    pub distance: DistanceKind,
    /// Tie handling among minimum-distance candidates.
    pub tie: TieBreak,
    /// Duplicate-tuple score combining policy.
    pub combiner: ScoreCombiner,
    /// Consult / fill the context query tree (single-state queries
    /// only). Defaults to `false`; the builder's `cache_capacity` must
    /// also be non-zero.
    pub use_cache: bool,
    /// When set (and the combiner is `Max`), rank with early
    /// termination: evaluate preference entries best-score-first and
    /// stop once the top `k` tuples (ties included) cannot change. The
    /// answer then contains only those tuples.
    pub top_k: Option<usize>,
}

impl QueryOptions {
    /// Options with the context query tree enabled.
    pub fn cached() -> Self {
        Self {
            use_cache: true,
            ..Self::default()
        }
    }

    /// Options using the Jaccard distance.
    pub fn jaccard() -> Self {
        Self {
            distance: DistanceKind::Jaccard,
            ..Self::default()
        }
    }
}

/// The answer of a contextual query.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// Ranked tuples, best first.
    pub results: Arc<RankedResults>,
    /// Per-state resolution trace (empty when served from the cache).
    pub resolutions: Vec<StateResolution>,
    /// Whether the answer came from the context query tree.
    pub from_cache: bool,
}

impl QueryAnswer {
    /// Cells accessed by context resolution for this answer (0 when the
    /// answer came from the cache).
    pub fn cells(&self) -> u64 {
        self.resolutions.iter().map(|r| r.cells).sum()
    }

    /// True iff no query state found any applicable preference — the
    /// query proceeds as a normal non-contextual query (Section 4.2).
    /// Cached answers report `false` (they were contextual when
    /// computed).
    pub fn is_non_contextual(&self) -> bool {
        !self.from_cache
            && self
                .resolutions
                .iter()
                .all(|r| r.outcome == ctxpref_resolve::MatchOutcome::NoMatch)
    }
}

/// Builder for [`ContextualDb`].
#[derive(Debug, Default)]
pub struct ContextualDbBuilder {
    env: Option<ContextEnvironment>,
    relation: Option<Relation>,
    order: Option<ParamOrder>,
    cache_capacity: usize,
    defaults: QueryOptions,
}

impl ContextualDbBuilder {
    #[must_use]
    /// The context environment (required).
    pub fn env(mut self, env: ContextEnvironment) -> Self {
        self.env = Some(env);
        self
    }

    #[must_use]
    /// The database relation (required).
    pub fn relation(mut self, relation: Relation) -> Self {
        self.relation = Some(relation);
        self
    }

    /// Parameter-to-level assignment of the profile tree. Defaults to
    /// the paper's space heuristic (ascending domain size).
    #[must_use]
    pub fn order(mut self, order: ParamOrder) -> Self {
        self.order = Some(order);
        self
    }

    /// Capacity of the context query tree; 0 (default) disables caching.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Default query options.
    #[must_use]
    pub fn defaults(mut self, defaults: QueryOptions) -> Self {
        self.defaults = defaults;
        self
    }

    /// Assemble the database.
    pub fn build(self) -> Result<ContextualDb, CoreError> {
        let env = self.env.ok_or(CoreError::MissingEnvironment)?;
        let relation = self.relation.ok_or(CoreError::MissingRelation)?;
        let order = self
            .order
            .unwrap_or_else(|| ParamOrder::by_ascending_domain(&env));
        let tree = ProfileTree::new(env.clone(), order)?;
        let cache = (self.cache_capacity > 0)
            .then(|| ContextQueryTree::new(env.clone(), self.cache_capacity));
        Ok(ContextualDb {
            profile: Profile::new(env.clone()),
            env,
            relation,
            tree,
            cache,
            defaults: self.defaults,
        })
    }
}

/// A context-aware preference database system (the paper's overall
/// system): relation + profile + profile tree + resolution + query
/// result cache.
#[derive(Debug)]
pub struct ContextualDb {
    env: ContextEnvironment,
    relation: Relation,
    profile: Profile,
    tree: ProfileTree,
    cache: Option<ContextQueryTree>,
    defaults: QueryOptions,
}

impl ContextualDb {
    /// Start building a database.
    pub fn builder() -> ContextualDbBuilder {
        ContextualDbBuilder::default()
    }

    /// The context environment.
    pub fn env(&self) -> &ContextEnvironment {
        &self.env
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Mutable access to the relation (invalidates cached rankings).
    pub fn relation_mut(&mut self) -> &mut Relation {
        // Database updates do not affect stored preferences, but they do
        // invalidate cached rankings.
        if let Some(c) = &self.cache {
            c.invalidate_all();
        }
        &mut self.relation
    }

    /// The logical profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The profile tree index.
    pub fn tree(&self) -> &ProfileTree {
        &self.tree
    }

    /// Size statistics of the profile tree.
    pub fn tree_stats(&self) -> TreeStats {
        self.tree.stats()
    }

    /// Hit/miss statistics of the context query tree, if enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Capacity of the context query tree; 0 when caching is disabled.
    pub fn cache_capacity(&self) -> usize {
        self.cache.as_ref().map(|c| c.capacity()).unwrap_or(0)
    }

    /// Insert a contextual preference. Conflicts (Definition 6) are
    /// detected by the profile tree on insertion and reported to the
    /// caller; the cache is invalidated on success.
    pub fn insert_preference(&mut self, pref: ContextualPreference) -> Result<(), CoreError> {
        self.tree.insert(&pref)?;
        self.profile.insert_unchecked(pref);
        if let Some(c) = &self.cache {
            c.invalidate_all();
        }
        Ok(())
    }

    /// Convenience: insert `descriptor ⇒ attr = value, score` with the
    /// descriptor in textual form, e.g.
    /// `insert_preference_eq("location = Plaka and temperature = warm",
    /// "name", "Acropolis".into(), 0.8)`.
    pub fn insert_preference_eq(
        &mut self,
        descriptor: &str,
        attr: &str,
        value: Value,
        score: f64,
    ) -> Result<(), CoreError> {
        self.insert_preference_cmp(descriptor, attr, CompareOp::Eq, value, score)
    }

    /// Like [`Self::insert_preference_eq`] with an arbitrary θ operator.
    pub fn insert_preference_cmp(
        &mut self,
        descriptor: &str,
        attr: &str,
        op: CompareOp,
        value: Value,
        score: f64,
    ) -> Result<(), CoreError> {
        let cod = parse_descriptor(&self.env, descriptor)?;
        let clause = AttributeClause::new(self.relation.schema().require_attr(attr)?, op, value);
        self.insert_preference(ContextualPreference::new(cod, clause, score)?)
    }

    /// Remove the preference at `index` (as listed by
    /// [`Profile::preferences`]). The profile tree is maintained
    /// incrementally: only the paths this preference alone contributed
    /// are pruned (entries shared with other preferences stay).
    pub fn remove_preference(&mut self, index: usize) -> Result<ContextualPreference, CoreError> {
        if index >= self.profile.len() {
            return Err(CoreError::NoSuchPreference(index));
        }
        let removed = self.profile.remove(index);
        self.detach_from_tree(&removed)?;
        if let Some(c) = &self.cache {
            c.invalidate_all();
        }
        Ok(removed)
    }

    /// Update the score of the preference at `index`, checking the new
    /// score against the rest of the profile (Definition 6) and
    /// maintaining the tree incrementally.
    pub fn update_preference_score(&mut self, index: usize, score: f64) -> Result<(), CoreError> {
        if index >= self.profile.len() {
            return Err(CoreError::NoSuchPreference(index));
        }
        let old = self.profile.preferences()[index].clone();
        if old.score() == score {
            return Ok(());
        }
        let updated = old.with_score(score)?;
        for (i, other) in self.profile.preferences().iter().enumerate() {
            if i != index && other.conflicts_with(&updated, &self.env)? {
                // Recover a witness state for the error.
                let state = other
                    .descriptor()
                    .states(&self.env)?
                    .into_iter()
                    .find(|s| {
                        updated
                            .descriptor()
                            .states(&self.env)
                            .map(|ss| ss.contains(s))
                            .unwrap_or(false)
                    })
                    .unwrap_or_else(|| ContextState::all(&self.env));
                return Err(ctxpref_profile::ProfileError::Conflict {
                    state,
                    existing_score: other.score(),
                    new_score: score,
                }
                .into());
            }
        }
        self.profile.update_score(index, score)?;
        // After the conflict check, no other preference shares a
        // (state, clause) pair with `old`, so detaching and re-inserting
        // is safe.
        self.detach_from_tree(&old)?;
        self.tree.insert(&updated)?;
        if let Some(c) = &self.cache {
            c.invalidate_all();
        }
        Ok(())
    }

    /// Remove the tree entries of `pref`, preserving any (state, clause,
    /// score) triple still contributed by a remaining preference.
    fn detach_from_tree(&mut self, pref: &ContextualPreference) -> Result<(), CoreError> {
        for state in pref.descriptor().states(&self.env)? {
            let still_contributed = self.profile.iter().any(|other| {
                other.clause() == pref.clause()
                    && other.score() == pref.score()
                    && other
                        .descriptor()
                        .states(&self.env)
                        .map(|ss| ss.contains(&state))
                        .unwrap_or(false)
            });
            if !still_contributed {
                self.tree
                    .remove_state_entry(&state, pref.clause(), pref.score());
            }
        }
        Ok(())
    }

    /// Query under the *implicit* current context — a single context
    /// state (Section 4.1) — with the default options.
    pub fn query_state(&self, state: &ContextState) -> Result<QueryAnswer, CoreError> {
        self.query_state_with(state, self.defaults)
    }

    /// Query under a single context state with explicit options. This
    /// is the only entry point the context query tree accelerates: the
    /// cache is keyed by exact context state.
    pub fn query_state_with(
        &self,
        state: &ContextState,
        opts: QueryOptions,
    ) -> Result<QueryAnswer, CoreError> {
        // The context query tree is keyed by context state only, so a
        // cached ranking is valid only for one (distance, tie, combiner)
        // configuration: the database's defaults. Other configurations
        // bypass the cache rather than risk serving results computed
        // under different semantics.
        let cacheable = opts.use_cache
            && opts.distance == self.defaults.distance
            && opts.tie == self.defaults.tie
            && opts.combiner == self.defaults.combiner
            && opts.top_k == self.defaults.top_k;
        if cacheable {
            if let Some(cache) = &self.cache {
                if let Some(hit) = cache.get(state) {
                    return Ok(QueryAnswer {
                        results: hit,
                        resolutions: Vec::new(),
                        from_cache: true,
                    });
                }
            }
        }
        let ecod: ExtendedContextDescriptor = descriptor_of_state(&self.env, state).into();
        let answer = self.run(&ecod, opts)?;
        if cacheable {
            if let Some(cache) = &self.cache {
                cache.insert(state, Arc::clone(&answer.results));
            }
        }
        Ok(answer)
    }

    /// Query with an explicit extended context descriptor (exploratory
    /// queries, Definition 9), default options.
    pub fn query(&self, ecod: &ExtendedContextDescriptor) -> Result<QueryAnswer, CoreError> {
        self.run(ecod, self.defaults)
    }

    /// Query with explicit options.
    pub fn query_with(
        &self,
        ecod: &ExtendedContextDescriptor,
        opts: QueryOptions,
    ) -> Result<QueryAnswer, CoreError> {
        self.run(ecod, opts)
    }

    /// Parse and run a textual extended descriptor, e.g.
    /// `db.query_str("(location = Athens and temperature = good) or
    /// (location = Ioannina)")`.
    pub fn query_str(&self, descriptor: &str) -> Result<QueryAnswer, CoreError> {
        let ecod = parse_extended_descriptor(&self.env, descriptor)?;
        self.run(&ecod, self.defaults)
    }

    fn run(
        &self,
        ecod: &ExtendedContextDescriptor,
        opts: QueryOptions,
    ) -> Result<QueryAnswer, CoreError> {
        let q = match opts.top_k {
            Some(k) => ctxpref_resolve::rank_cs_topk(
                &self.tree,
                &self.relation,
                ecod,
                opts.distance,
                opts.tie,
                opts.combiner,
                k,
            )?,
            None => rank_cs(
                &self.tree,
                &self.relation,
                ecod,
                opts.distance,
                opts.tie,
                opts.combiner,
            )?,
        };
        Ok(QueryAnswer {
            results: Arc::new(q.results),
            resolutions: q.resolutions,
            from_cache: false,
        })
    }

    /// Render the top-`k` answer (ties included) as `name (score)` lines
    /// using the given display attribute — handy for examples and CLIs.
    pub fn render_top(
        &self,
        answer: &QueryAnswer,
        attr: &str,
        k: usize,
    ) -> Result<String, CoreError> {
        let a = self.relation.schema().require_attr(attr)?;
        let mut out = String::new();
        for e in answer.results.top_k_with_ties(k) {
            out.push_str(&format!(
                "{} ({:.2})\n",
                self.relation.tuple(e.tuple_index).value(a),
                e.score
            ));
        }
        Ok(out)
    }
}

/// The descriptor pinning every non-`all` parameter of a state.
pub(crate) fn descriptor_of_state(env: &ContextEnvironment, s: &ContextState) -> ContextDescriptor {
    let mut cod = ContextDescriptor::empty();
    for (p, h) in env.iter() {
        let v = s.value(p);
        if v != h.all_value() {
            cod = cod.with(p, ParameterDescriptor::Eq(v));
        }
    }
    cod
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_hierarchy::{Hierarchy, HierarchyBuilder};
    use ctxpref_relation::{AttrType, Schema};

    fn env() -> ContextEnvironment {
        let mut w = HierarchyBuilder::new("weather", &["Conditions", "Char"]);
        w.add("Char", "bad", None).unwrap();
        w.add("Char", "good", None).unwrap();
        w.add_leaves("bad", &["cold"]).unwrap();
        w.add_leaves("good", &["warm", "hot"]).unwrap();
        ContextEnvironment::new(vec![
            w.build().unwrap(),
            Hierarchy::flat("company", &["friends", "family"]).unwrap(),
        ])
        .unwrap()
    }

    fn relation() -> Relation {
        let schema = Schema::new(&[("name", AttrType::Str), ("type", AttrType::Str)]).unwrap();
        let mut rel = Relation::new("poi", schema);
        for (n, t) in [
            ("Acropolis", "monument"),
            ("Benaki", "museum"),
            ("Mikro", "brewery"),
            ("Attica Zoo", "zoo"),
        ] {
            rel.insert(vec![n.into(), t.into()]).unwrap();
        }
        rel
    }

    fn db() -> ContextualDb {
        let mut db = ContextualDb::builder()
            .env(env())
            .relation(relation())
            .cache_capacity(16)
            .build()
            .unwrap();
        db.insert_preference_eq("weather = warm", "name", "Acropolis".into(), 0.8)
            .unwrap();
        db.insert_preference_eq("weather = bad", "type", "museum".into(), 0.7)
            .unwrap();
        db.insert_preference_eq("company = friends", "type", "brewery".into(), 0.9)
            .unwrap();
        db
    }

    #[test]
    fn builder_requires_env_and_relation() {
        assert!(matches!(
            ContextualDb::builder()
                .relation(relation())
                .build()
                .unwrap_err(),
            CoreError::MissingEnvironment
        ));
        assert!(matches!(
            ContextualDb::builder().env(env()).build().unwrap_err(),
            CoreError::MissingRelation
        ));
    }

    #[test]
    fn end_to_end_query() {
        let db = db();
        let s = ContextState::parse(db.env(), &["warm", "friends"]).unwrap();
        let a = db.query_state(&s).unwrap();
        assert!(!a.from_cache);
        assert!(a.cells() > 0);
        // The closest covering state is (warm, all) at distance 1 — the
        // friends preference sits at distance 2 and is not applied.
        let rendered = db.render_top(&a, "name", 5).unwrap();
        assert_eq!(rendered, "Acropolis (0.80)\n");
        // (cold, friends) ties (bad, all) and (all, friends) at
        // distance 2 → both applied: brewery 0.9 over museum 0.7.
        let s2 = ContextState::parse(db.env(), &["cold", "friends"]).unwrap();
        let a2 = db.query_state(&s2).unwrap();
        let rendered2 = db.render_top(&a2, "name", 5).unwrap();
        assert!(rendered2.starts_with("Mikro (0.90)"));
        assert!(rendered2.contains("Benaki (0.70)"));
    }

    #[test]
    fn cache_round_trip() {
        let mut db = db();
        let s = ContextState::parse(db.env(), &["warm", "friends"]).unwrap();
        let a1 = db.query_state_with(&s, QueryOptions::cached()).unwrap();
        assert!(!a1.from_cache);
        let a2 = db.query_state_with(&s, QueryOptions::cached()).unwrap();
        assert!(a2.from_cache);
        assert_eq!(a1.results.entries(), a2.results.entries());
        assert_eq!(a2.cells(), 0);
        // Profile change invalidates.
        db.insert_preference_eq("weather = hot", "type", "zoo".into(), 0.5)
            .unwrap();
        let a3 = db.query_state_with(&s, QueryOptions::cached()).unwrap();
        assert!(!a3.from_cache);
        let stats = db.cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert!(stats.invalidations >= 1);
    }

    #[test]
    fn conflicting_insert_is_rejected() {
        let mut db = db();
        let err = db
            .insert_preference_eq("weather = warm", "name", "Acropolis".into(), 0.1)
            .unwrap_err();
        assert!(matches!(err, CoreError::Profile(_)));
        // State unchanged: the old preference still wins.
        let s = ContextState::parse(db.env(), &["warm", "family"]).unwrap();
        let a = db.query_state(&s).unwrap();
        assert_eq!(a.results.entries()[0].score, 0.8);
    }

    #[test]
    fn remove_and_update_rebuild() {
        let mut db = db();
        assert!(matches!(
            db.remove_preference(99).unwrap_err(),
            CoreError::NoSuchPreference(99)
        ));
        db.update_preference_score(0, 0.55).unwrap();
        let s = ContextState::parse(db.env(), &["warm", "family"]).unwrap();
        let a = db.query_state(&s).unwrap();
        assert_eq!(a.results.entries()[0].score, 0.55);
        let removed = db.remove_preference(0).unwrap();
        assert_eq!(removed.score(), 0.55);
        let a2 = db.query_state(&s).unwrap();
        assert!(a2.results.is_empty() || a2.results.entries()[0].score != 0.55);
    }

    #[test]
    fn exploratory_query_str() {
        let db = db();
        let a = db
            .query_str("(weather = warm and company = friends) or (weather = cold)")
            .unwrap();
        assert_eq!(a.resolutions.len(), 2);
        assert!(!a.results.is_empty());
        // Cold resolves through (bad, all): museum at 0.7 included.
        let rendered = db.render_top(&a, "name", 10).unwrap();
        assert!(rendered.contains("Benaki"));
    }

    #[test]
    fn jaccard_options_work() {
        let db = db();
        let s = ContextState::parse(db.env(), &["hot", "family"]).unwrap();
        let a = db.query_state_with(&s, QueryOptions::jaccard()).unwrap();
        // Covered by (good→warm? no — warm ≠ hot) … (warm) does not
        // cover hot; only (bad, all) doesn't either. friends pref is
        // (all, friends), doesn't cover family. So: no match.
        assert!(a.results.is_empty());
        assert!(a.resolutions[0].outcome == ctxpref_resolve::MatchOutcome::NoMatch);
    }

    #[test]
    fn top_k_option_truncates_consistently() {
        let db = db();
        let s = ContextState::parse(db.env(), &["cold", "friends"]).unwrap();
        let full = db.query_state(&s).unwrap();
        let top1 = db
            .query_state_with(
                &s,
                QueryOptions {
                    top_k: Some(1),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert_eq!(
            full.results.top_k_with_ties(1),
            top1.results.entries(),
            "top-k answer equals the full ranking's prefix"
        );
        assert!(top1.results.len() <= full.results.len());
    }

    #[test]
    fn non_default_options_bypass_the_cache() {
        let db = db();
        let s = ContextState::parse(db.env(), &["warm", "friends"]).unwrap();
        // Warm the cache under default options.
        let _ = db.query_state_with(&s, QueryOptions::cached()).unwrap();
        // A Jaccard query must not be served from the Hierarchy-keyed
        // cache (and must not pollute it either).
        let j = db
            .query_state_with(
                &s,
                QueryOptions {
                    use_cache: true,
                    ..QueryOptions::jaccard()
                },
            )
            .unwrap();
        assert!(!j.from_cache);
        let again = db.query_state_with(&s, QueryOptions::cached()).unwrap();
        assert!(again.from_cache);
    }

    #[test]
    fn relation_mut_invalidates_cache() {
        let mut db = db();
        let s = ContextState::parse(db.env(), &["cold", "friends"]).unwrap();
        let _ = db.query_state_with(&s, QueryOptions::cached()).unwrap();
        db.relation_mut()
            .insert(vec!["New".into(), "brewery".into()])
            .unwrap();
        let a = db.query_state_with(&s, QueryOptions::cached()).unwrap();
        assert!(!a.from_cache);
        // And the new brewery is ranked.
        let rendered = db.render_top(&a, "name", 5).unwrap();
        assert!(rendered.contains("New"));
    }
}
