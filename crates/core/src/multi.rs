//! Multi-user operation: many profiles over one shared database.
//!
//! The paper's usability study (Section 5.1) serves ten users, each
//! with their own (initially default) profile, against one shared
//! points-of-interest database. [`MultiUserDb`] is that deployment
//! shape: a single context environment and relation, with per-user
//! profiles, profile trees, and query caches.

use std::collections::HashMap;
use std::sync::Arc;

use ctxpref_context::{parse_descriptor, ContextState, ExtendedContextDescriptor};
use ctxpref_profile::{
    AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree, TreeStats,
};
use ctxpref_qcache::ContextQueryTree;
use ctxpref_relation::{CompareOp, Relation, Value};
use ctxpref_resolve::{rank_cs, rank_cs_parallel, rank_cs_topk};
use ctxpref_views::{Change, ViewCatalog, ViewOpts, ViewStats};

use crate::db::{QueryAnswer, QueryOptions};
use crate::error::CoreError;
use ctxpref_context::ContextEnvironment;

/// Upper bound on worker threads for parallel multi-state `Rank_CS`.
/// States of one query are fanned out across at most this many threads;
/// results are stitched back in state order, so the merged ranking is
/// identical to the serial one.
pub(crate) fn rank_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Unpinned materialized views a user may hold before LRU eviction.
pub(crate) const VIEW_CAPACITY: usize = 64;

/// The view-maintenance options implied by the database's query
/// defaults.
pub(crate) fn view_opts(defaults: QueryOptions) -> ViewOpts {
    ViewOpts {
        distance: defaults.distance,
        tie: defaults.tie,
        combiner: defaults.combiner,
    }
}

/// Per-user state: the logical profile, its tree index, an optional
/// query cache, and the materialized top-k view catalog. Shared
/// between [`MultiUserDb`] (single-threaded core) and
/// [`crate::ShardedMultiUserDb`] (the concurrent serving core), so
/// mutation and query semantics cannot drift between the two.
#[derive(Debug)]
pub(crate) struct UserSlot {
    pub(crate) profile: Profile,
    pub(crate) tree: ProfileTree,
    pub(crate) cache: Option<ContextQueryTree>,
    pub(crate) views: ViewCatalog,
}

impl UserSlot {
    pub(crate) fn new(
        profile: Profile,
        order: &ParamOrder,
        env: &ContextEnvironment,
        cache_capacity: usize,
    ) -> Result<Self, CoreError> {
        let tree = ProfileTree::from_profile(&profile, order.clone())?;
        let cache =
            (cache_capacity > 0).then(|| ContextQueryTree::new(env.clone(), cache_capacity));
        Ok(Self {
            profile,
            tree,
            cache,
            views: ViewCatalog::new(VIEW_CAPACITY),
        })
    }

    /// A deep copy with a fresh (empty) cache — used by snapshots; cached
    /// rankings are derived data and need not survive a snapshot. View
    /// *pins* are carried (the registration is durable state), their
    /// rankings are not: a restored view is rebuilt lazily.
    pub(crate) fn clone_for_snapshot(
        &self,
        env: &ContextEnvironment,
        cache_capacity: usize,
    ) -> Self {
        let cache =
            (cache_capacity > 0).then(|| ContextQueryTree::new(env.clone(), cache_capacity));
        let views = ViewCatalog::new(VIEW_CAPACITY);
        for state in self.views.pinned_states() {
            views.pin(state);
        }
        Self {
            profile: self.profile.clone(),
            tree: self.tree.clone(),
            cache,
            views,
        }
    }

    pub(crate) fn insert_preference(
        &mut self,
        pref: ContextualPreference,
        relation: &Relation,
        defaults: QueryOptions,
    ) -> Result<(), CoreError> {
        self.tree.insert(&pref)?;
        self.profile.insert_unchecked(pref);
        if let Some(c) = &self.cache {
            c.invalidate_all();
        }
        let pref = self.profile.preferences().last().expect("just inserted");
        self.views.on_mutation(
            &self.tree,
            relation,
            &view_opts(defaults),
            Change::Insert(pref),
        );
        Ok(())
    }

    pub(crate) fn remove_preference(
        &mut self,
        index: usize,
        order: &ParamOrder,
        relation: &Relation,
        defaults: QueryOptions,
    ) -> Result<ContextualPreference, CoreError> {
        if index >= self.profile.len() {
            return Err(CoreError::NoSuchPreference(index));
        }
        let removed = self.profile.remove(index);
        self.tree = ProfileTree::from_profile(&self.profile, order.clone())?;
        if let Some(c) = &self.cache {
            c.invalidate_all();
        }
        self.views.on_mutation(
            &self.tree,
            relation,
            &view_opts(defaults),
            Change::Remove(&removed),
        );
        Ok(removed)
    }

    pub(crate) fn update_preference_score(
        &mut self,
        index: usize,
        score: f64,
        env: &ContextEnvironment,
        order: &ParamOrder,
        relation: &Relation,
        defaults: QueryOptions,
    ) -> Result<(), CoreError> {
        if index >= self.profile.len() {
            return Err(CoreError::NoSuchPreference(index));
        }
        let old = &self.profile.preferences()[index];
        let old_score = old.score();
        if old_score == score {
            return Ok(());
        }
        let updated = old.with_score(score)?;
        for (i, other) in self.profile.preferences().iter().enumerate() {
            if i != index && other.conflicts_with(&updated, env)? {
                return Err(ctxpref_profile::ProfileError::Conflict {
                    state: ContextState::all(env),
                    existing_score: other.score(),
                    new_score: score,
                }
                .into());
            }
        }
        self.profile.update_score(index, score)?;
        self.tree = ProfileTree::from_profile(&self.profile, order.clone())?;
        if let Some(c) = &self.cache {
            c.invalidate_all();
        }
        let pref = &self.profile.preferences()[index];
        self.views.on_mutation(
            &self.tree,
            relation,
            &view_opts(defaults),
            Change::Rescore { pref, old_score },
        );
        Ok(())
    }

    /// Single-state query through this user's cache (when enabled).
    pub(crate) fn query_state(
        &self,
        env: &ContextEnvironment,
        relation: &Relation,
        defaults: QueryOptions,
        state: &ContextState,
    ) -> Result<QueryAnswer, CoreError> {
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(state) {
                return Ok(QueryAnswer {
                    results: hit,
                    resolutions: Vec::new(),
                    from_cache: true,
                });
            }
        }
        let ecod: ExtendedContextDescriptor = crate::db::descriptor_of_state(env, state).into();
        let q = rank_cs(
            &self.tree,
            relation,
            &ecod,
            defaults.distance,
            defaults.tie,
            defaults.combiner,
        )?;
        let answer = QueryAnswer {
            results: Arc::new(q.results),
            resolutions: q.resolutions,
            from_cache: false,
        };
        if let Some(cache) = &self.cache {
            cache.insert(state, Arc::clone(&answer.results));
        }
        Ok(answer)
    }

    /// Single-state top-k query: served from a materialized view when
    /// one is current (the boolean is true then), falling back to
    /// early-terminating `rank_cs_topk` resolution. Rows are always
    /// `top_k_with_ties(k)` of the full ranking, bit-identical between
    /// the two paths.
    pub(crate) fn query_state_topk(
        &self,
        env: &ContextEnvironment,
        relation: &Relation,
        defaults: QueryOptions,
        state: &ContextState,
        k: usize,
    ) -> Result<(QueryAnswer, bool), CoreError> {
        let opts = view_opts(defaults);
        if let Some(results) = self.views.serve(&self.tree, relation, &opts, state, k) {
            return Ok((
                QueryAnswer {
                    results: Arc::new(results),
                    resolutions: Vec::new(),
                    from_cache: false,
                },
                true,
            ));
        }
        let ecod: ExtendedContextDescriptor = crate::db::descriptor_of_state(env, state).into();
        let q = rank_cs_topk(
            &self.tree,
            relation,
            &ecod,
            defaults.distance,
            defaults.tie,
            defaults.combiner,
            k,
        )?;
        Ok((
            QueryAnswer {
                results: Arc::new(q.results),
                resolutions: q.resolutions,
                from_cache: false,
            },
            false,
        ))
    }

    /// Explicit-descriptor query: multi-state (exploratory) descriptors
    /// fan `Rank_CS` out across the query's context states.
    pub(crate) fn query(
        &self,
        relation: &Relation,
        defaults: QueryOptions,
        ecod: &ExtendedContextDescriptor,
    ) -> Result<QueryAnswer, CoreError> {
        let q = rank_cs_parallel(
            &self.tree,
            relation,
            ecod,
            defaults.distance,
            defaults.tie,
            defaults.combiner,
            rank_threads(),
        )?;
        Ok(QueryAnswer {
            results: Arc::new(q.results),
            resolutions: q.resolutions,
            from_cache: false,
        })
    }
}

/// A multi-user contextual preference database: one environment and
/// relation, many user profiles.
#[derive(Debug)]
pub struct MultiUserDb {
    env: ContextEnvironment,
    relation: Relation,
    order: ParamOrder,
    cache_capacity: usize,
    defaults: QueryOptions,
    users: HashMap<String, UserSlot>,
}

impl MultiUserDb {
    /// A multi-user database over `env` and `relation`, using the
    /// paper's ascending-domain tree ordering and `cache_capacity` per
    /// user (0 disables caching).
    pub fn new(env: ContextEnvironment, relation: Relation, cache_capacity: usize) -> Self {
        let order = ParamOrder::by_ascending_domain(&env);
        Self {
            env,
            relation,
            order,
            cache_capacity,
            defaults: QueryOptions::default(),
            users: HashMap::new(),
        }
    }

    /// Decompose into raw parts (for conversion into the sharded core).
    pub(crate) fn into_parts(
        self,
    ) -> (
        ContextEnvironment,
        Relation,
        ParamOrder,
        usize,
        QueryOptions,
        HashMap<String, UserSlot>,
    ) {
        (
            self.env,
            self.relation,
            self.order,
            self.cache_capacity,
            self.defaults,
            self.users,
        )
    }

    /// Reassemble from raw parts (the sharded core converting back).
    pub(crate) fn from_parts(
        env: ContextEnvironment,
        relation: Relation,
        order: ParamOrder,
        cache_capacity: usize,
        defaults: QueryOptions,
        users: HashMap<String, UserSlot>,
    ) -> Self {
        Self {
            env,
            relation,
            order,
            cache_capacity,
            defaults,
            users,
        }
    }

    /// The shared context environment.
    pub fn env(&self) -> &ContextEnvironment {
        &self.env
    }

    /// The shared relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Registered user names, in arbitrary order.
    pub fn users(&self) -> impl Iterator<Item = &str> {
        self.users.keys().map(String::as_str)
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Per-user cache capacity (0 = caching disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// User names in sorted order (for deterministic serialization).
    pub fn users_sorted(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.users.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Register a user with an empty profile.
    pub fn add_user(&mut self, name: &str) -> Result<(), CoreError> {
        self.add_user_with_profile(name, Profile::new(self.env.clone()))
    }

    /// Register a user with an initial profile — e.g. one of the twelve
    /// demographic default profiles of the user study.
    pub fn add_user_with_profile(&mut self, name: &str, profile: Profile) -> Result<(), CoreError> {
        if self.users.contains_key(name) {
            return Err(CoreError::DuplicateUser(name.to_string()));
        }
        let slot = UserSlot::new(profile, &self.order, &self.env, self.cache_capacity)?;
        self.users.insert(name.to_string(), slot);
        Ok(())
    }

    /// Remove a user and return their profile.
    pub fn remove_user(&mut self, name: &str) -> Result<Profile, CoreError> {
        self.users
            .remove(name)
            .map(|slot| slot.profile)
            .ok_or_else(|| CoreError::NoSuchUser(name.to_string()))
    }

    fn slot(&self, name: &str) -> Result<&UserSlot, CoreError> {
        self.users
            .get(name)
            .ok_or_else(|| CoreError::NoSuchUser(name.to_string()))
    }

    /// A user's profile.
    pub fn profile(&self, user: &str) -> Result<&Profile, CoreError> {
        Ok(&self.slot(user)?.profile)
    }

    /// A user's profile-tree statistics.
    pub fn tree_stats(&self, user: &str) -> Result<TreeStats, CoreError> {
        Ok(self.slot(user)?.tree.stats())
    }

    /// A user's profile tree (for display, explanation, and reordering
    /// experiments).
    pub fn tree(&self, user: &str) -> Result<&ProfileTree, CoreError> {
        Ok(&self.slot(user)?.tree)
    }

    /// Insert a preference for one user (conflicts detected by their
    /// tree; their cache is invalidated).
    pub fn insert_preference(
        &mut self,
        user: &str,
        pref: ContextualPreference,
    ) -> Result<(), CoreError> {
        let defaults = self.defaults;
        let slot = self
            .users
            .get_mut(user)
            .ok_or_else(|| CoreError::NoSuchUser(user.to_string()))?;
        slot.insert_preference(pref, &self.relation, defaults)
    }

    /// Insert an equality preference for one user from its textual
    /// parts, mirroring [`crate::ContextualDb::insert_preference_eq`].
    pub fn insert_preference_eq(
        &mut self,
        user: &str,
        descriptor: &str,
        attr: &str,
        value: Value,
        score: f64,
    ) -> Result<(), CoreError> {
        let cod = parse_descriptor(&self.env, descriptor)?;
        let clause = AttributeClause::new(
            self.relation.schema().require_attr(attr)?,
            CompareOp::Eq,
            value,
        );
        self.insert_preference(user, ContextualPreference::new(cod, clause, score)?)
    }

    /// Remove one user's preference at `index` (as listed by their
    /// [`Profile::preferences`]); their tree is rebuilt and their cache
    /// invalidated.
    pub fn remove_preference(
        &mut self,
        user: &str,
        index: usize,
    ) -> Result<ContextualPreference, CoreError> {
        let order = self.order.clone();
        let defaults = self.defaults;
        let slot = self
            .users
            .get_mut(user)
            .ok_or_else(|| CoreError::NoSuchUser(user.to_string()))?;
        slot.remove_preference(index, &order, &self.relation, defaults)
    }

    /// Update the score of one user's preference at `index`, checking
    /// the new score against the rest of their profile (Definition 6).
    pub fn update_preference_score(
        &mut self,
        user: &str,
        index: usize,
        score: f64,
    ) -> Result<(), CoreError> {
        let env = self.env.clone();
        let order = self.order.clone();
        let defaults = self.defaults;
        let slot = self
            .users
            .get_mut(user)
            .ok_or_else(|| CoreError::NoSuchUser(user.to_string()))?;
        slot.update_preference_score(index, score, &env, &order, &self.relation, defaults)
    }

    /// The query options used for every query on this database.
    pub fn query_defaults(&self) -> QueryOptions {
        self.defaults
    }

    /// Replace the query options used for every query on this database.
    /// Caches are invalidated: cached answers were computed under the
    /// old options.
    pub fn set_query_defaults(&mut self, options: QueryOptions) {
        self.defaults = options;
        for slot in self.users.values_mut() {
            if let Some(c) = &slot.cache {
                c.invalidate_all();
            }
            slot.views.invalidate_contents();
        }
    }

    /// One user's query-cache statistics (`None` when caching is
    /// disabled).
    pub fn cache_stats(&self, user: &str) -> Result<Option<ctxpref_qcache::CacheStats>, CoreError> {
        Ok(self.slot(user)?.cache.as_ref().map(|c| c.stats()))
    }

    /// Query one user's profile under a single context state, through
    /// their cache when enabled.
    pub fn query_state(&self, user: &str, state: &ContextState) -> Result<QueryAnswer, CoreError> {
        self.slot(user)?
            .query_state(&self.env, &self.relation, self.defaults, state)
    }

    /// Top-k query under a single context state: materialized view
    /// when current, `rank_cs_topk` otherwise. The boolean reports
    /// whether a view answered.
    pub fn query_state_topk(
        &self,
        user: &str,
        state: &ContextState,
        k: usize,
    ) -> Result<(QueryAnswer, bool), CoreError> {
        self.slot(user)?
            .query_state_topk(&self.env, &self.relation, self.defaults, state, k)
    }

    /// Register and pin a materialized top-k view of `(user, state)`.
    pub fn pin_view(&mut self, user: &str, state: &ContextState) -> Result<(), CoreError> {
        self.slot(user)?.views.pin(state.clone());
        Ok(())
    }

    /// Unpin a previously pinned view; returns whether it was pinned.
    pub fn unpin_view(&mut self, user: &str, state: &ContextState) -> Result<bool, CoreError> {
        Ok(self.slot(user)?.views.unpin(state))
    }

    /// One user's pinned view states (sorted).
    pub fn pinned_views(&self, user: &str) -> Result<Vec<ContextState>, CoreError> {
        Ok(self.slot(user)?.views.pinned_states())
    }

    /// One user's view-serving counters.
    pub fn view_stats(&self, user: &str) -> Result<ViewStats, CoreError> {
        Ok(self.slot(user)?.views.stats())
    }

    /// Render the top-`k` answer (ties included) as `name (score)` lines
    /// using the given display attribute — handy for examples and CLIs.
    pub fn render_top(
        &self,
        answer: &QueryAnswer,
        attr: &str,
        k: usize,
    ) -> Result<String, CoreError> {
        let a = self.relation.schema().require_attr(attr)?;
        let mut out = String::new();
        for e in answer.results.top_k_with_ties(k) {
            out.push_str(&format!(
                "{} ({:.2})\n",
                self.relation.tuple(e.tuple_index).value(a),
                e.score
            ));
        }
        Ok(out)
    }

    /// Query one user's profile with an explicit extended descriptor.
    pub fn query(
        &self,
        user: &str,
        ecod: &ExtendedContextDescriptor,
    ) -> Result<QueryAnswer, CoreError> {
        self.slot(user)?.query(&self.relation, self.defaults, ecod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_context::parse_descriptor;
    use ctxpref_hierarchy::Hierarchy;
    use ctxpref_profile::AttributeClause;
    use ctxpref_relation::{AttrType, Schema};

    fn setup() -> MultiUserDb {
        let env =
            ContextEnvironment::new(vec![Hierarchy::flat("weather", &["cold", "warm"]).unwrap()])
                .unwrap();
        let schema = Schema::new(&[("type", AttrType::Str)]).unwrap();
        let mut rel = Relation::new("poi", schema);
        for t in ["museum", "brewery", "zoo"] {
            rel.insert(vec![t.into()]).unwrap();
        }
        MultiUserDb::new(env, rel, 8)
    }

    fn pref(db: &MultiUserDb, cod: &str, ty: &str, score: f64) -> ContextualPreference {
        ContextualPreference::new(
            parse_descriptor(db.env(), cod).unwrap(),
            AttributeClause::eq(db.relation().schema().attr("type").unwrap(), ty.into()),
            score,
        )
        .unwrap()
    }

    #[test]
    fn users_are_isolated() {
        let mut db = setup();
        db.add_user("alice").unwrap();
        db.add_user("bob").unwrap();
        assert_eq!(db.user_count(), 2);
        let a = pref(&db, "weather = warm", "brewery", 0.9);
        let b = pref(&db, "weather = warm", "museum", 0.8);
        db.insert_preference("alice", a).unwrap();
        db.insert_preference("bob", b).unwrap();

        let warm = ContextState::parse(db.env(), &["warm"]).unwrap();
        let alice = db.query_state("alice", &warm).unwrap();
        let bob = db.query_state("bob", &warm).unwrap();
        assert_eq!(alice.results.entries()[0].tuple_index, 1); // brewery
        assert_eq!(bob.results.entries()[0].tuple_index, 0); // museum

        // Conflicts are per-user: bob can score the same state/clause
        // differently from alice, but not from himself.
        db.insert_preference("bob", pref(&db, "weather = warm", "brewery", 0.2))
            .unwrap();
        assert!(db
            .insert_preference("bob", pref(&db, "weather = warm", "brewery", 0.7))
            .is_err());
    }

    #[test]
    fn user_management_errors() {
        let mut db = setup();
        db.add_user("alice").unwrap();
        assert!(matches!(
            db.add_user("alice").unwrap_err(),
            CoreError::DuplicateUser(_)
        ));
        assert!(matches!(
            db.query_state("ghost", &ContextState::all(db.env()))
                .unwrap_err(),
            CoreError::NoSuchUser(_)
        ));
        let profile = db.remove_user("alice").unwrap();
        assert!(profile.is_empty());
        assert!(matches!(
            db.remove_user("alice").unwrap_err(),
            CoreError::NoSuchUser(_)
        ));
    }

    #[test]
    fn caches_are_per_user() {
        let mut db = setup();
        db.add_user("alice").unwrap();
        db.add_user("bob").unwrap();
        db.insert_preference("alice", pref(&db, "weather = warm", "zoo", 0.5))
            .unwrap();
        db.insert_preference("bob", pref(&db, "weather = warm", "zoo", 0.6))
            .unwrap();
        let warm = ContextState::parse(db.env(), &["warm"]).unwrap();
        let _ = db.query_state("alice", &warm).unwrap();
        let again = db.query_state("alice", &warm).unwrap();
        assert!(again.from_cache);
        // Bob's first query is not served from Alice's cache.
        let bob = db.query_state("bob", &warm).unwrap();
        assert!(!bob.from_cache);
        assert_eq!(bob.results.entries()[0].score, 0.6);
    }

    #[test]
    fn initial_profiles_and_stats() {
        let mut db = setup();
        let mut profile = Profile::new(db.env().clone());
        profile
            .insert(pref(&db, "weather = cold", "museum", 0.8))
            .unwrap();
        db.add_user_with_profile("carol", profile).unwrap();
        assert_eq!(db.profile("carol").unwrap().len(), 1);
        assert!(db.tree_stats("carol").unwrap().leaf_entries == 1);
        let names: Vec<&str> = db.users().collect();
        assert_eq!(names, vec!["carol"]);
    }
}
