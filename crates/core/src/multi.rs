//! Multi-user operation: many profiles over one shared database.
//!
//! The paper's usability study (Section 5.1) serves ten users, each
//! with their own (initially default) profile, against one shared
//! points-of-interest database. [`MultiUserDb`] is that deployment
//! shape: a single context environment and relation, with per-user
//! profiles, profile trees, and query caches.

use std::collections::HashMap;
use std::sync::Arc;

use ctxpref_context::{parse_descriptor, ContextState, ExtendedContextDescriptor};
use ctxpref_profile::{
    AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree, TreeStats,
};
use ctxpref_qcache::ContextQueryTree;
use ctxpref_relation::{CompareOp, Relation, Value};
use ctxpref_resolve::rank_cs;

use crate::db::{QueryAnswer, QueryOptions};
use crate::error::CoreError;
use ctxpref_context::ContextEnvironment;

/// Per-user state: the logical profile, its tree index, and an optional
/// query cache.
#[derive(Debug)]
struct UserSlot {
    profile: Profile,
    tree: ProfileTree,
    cache: Option<ContextQueryTree>,
}

/// A multi-user contextual preference database: one environment and
/// relation, many user profiles.
#[derive(Debug)]
pub struct MultiUserDb {
    env: ContextEnvironment,
    relation: Relation,
    order: ParamOrder,
    cache_capacity: usize,
    defaults: QueryOptions,
    users: HashMap<String, UserSlot>,
}

impl MultiUserDb {
    /// A multi-user database over `env` and `relation`, using the
    /// paper's ascending-domain tree ordering and `cache_capacity` per
    /// user (0 disables caching).
    pub fn new(env: ContextEnvironment, relation: Relation, cache_capacity: usize) -> Self {
        let order = ParamOrder::by_ascending_domain(&env);
        Self {
            env,
            relation,
            order,
            cache_capacity,
            defaults: QueryOptions::default(),
            users: HashMap::new(),
        }
    }

    /// The shared context environment.
    pub fn env(&self) -> &ContextEnvironment {
        &self.env
    }

    /// The shared relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Registered user names, in arbitrary order.
    pub fn users(&self) -> impl Iterator<Item = &str> {
        self.users.keys().map(String::as_str)
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Per-user cache capacity (0 = caching disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// User names in sorted order (for deterministic serialization).
    pub fn users_sorted(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.users.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Register a user with an empty profile.
    pub fn add_user(&mut self, name: &str) -> Result<(), CoreError> {
        self.add_user_with_profile(name, Profile::new(self.env.clone()))
    }

    /// Register a user with an initial profile — e.g. one of the twelve
    /// demographic default profiles of the user study.
    pub fn add_user_with_profile(
        &mut self,
        name: &str,
        profile: Profile,
    ) -> Result<(), CoreError> {
        if self.users.contains_key(name) {
            return Err(CoreError::DuplicateUser(name.to_string()));
        }
        let tree = ProfileTree::from_profile(&profile, self.order.clone())?;
        let cache = (self.cache_capacity > 0)
            .then(|| ContextQueryTree::new(self.env.clone(), self.cache_capacity));
        self.users.insert(name.to_string(), UserSlot { profile, tree, cache });
        Ok(())
    }

    /// Remove a user and return their profile.
    pub fn remove_user(&mut self, name: &str) -> Result<Profile, CoreError> {
        self.users
            .remove(name)
            .map(|slot| slot.profile)
            .ok_or_else(|| CoreError::NoSuchUser(name.to_string()))
    }

    fn slot(&self, name: &str) -> Result<&UserSlot, CoreError> {
        self.users.get(name).ok_or_else(|| CoreError::NoSuchUser(name.to_string()))
    }

    fn slot_mut(&mut self, name: &str) -> Result<&mut UserSlot, CoreError> {
        self.users.get_mut(name).ok_or_else(|| CoreError::NoSuchUser(name.to_string()))
    }

    /// A user's profile.
    pub fn profile(&self, user: &str) -> Result<&Profile, CoreError> {
        Ok(&self.slot(user)?.profile)
    }

    /// A user's profile-tree statistics.
    pub fn tree_stats(&self, user: &str) -> Result<TreeStats, CoreError> {
        Ok(self.slot(user)?.tree.stats())
    }

    /// A user's profile tree (for display, explanation, and reordering
    /// experiments).
    pub fn tree(&self, user: &str) -> Result<&ProfileTree, CoreError> {
        Ok(&self.slot(user)?.tree)
    }

    /// Insert a preference for one user (conflicts detected by their
    /// tree; their cache is invalidated).
    pub fn insert_preference(
        &mut self,
        user: &str,
        pref: ContextualPreference,
    ) -> Result<(), CoreError> {
        let slot = self.slot_mut(user)?;
        slot.tree.insert(&pref)?;
        slot.profile.insert_unchecked(pref);
        if let Some(c) = &slot.cache {
            c.invalidate_all();
        }
        Ok(())
    }

    /// Insert an equality preference for one user from its textual
    /// parts, mirroring [`crate::ContextualDb::insert_preference_eq`].
    pub fn insert_preference_eq(
        &mut self,
        user: &str,
        descriptor: &str,
        attr: &str,
        value: Value,
        score: f64,
    ) -> Result<(), CoreError> {
        let cod = parse_descriptor(&self.env, descriptor)?;
        let clause =
            AttributeClause::new(self.relation.schema().require_attr(attr)?, CompareOp::Eq, value);
        self.insert_preference(user, ContextualPreference::new(cod, clause, score)?)
    }

    /// Remove one user's preference at `index` (as listed by their
    /// [`Profile::preferences`]); their tree is rebuilt and their cache
    /// invalidated.
    pub fn remove_preference(
        &mut self,
        user: &str,
        index: usize,
    ) -> Result<ContextualPreference, CoreError> {
        let order = self.order.clone();
        let slot = self.slot_mut(user)?;
        if index >= slot.profile.len() {
            return Err(CoreError::NoSuchPreference(index));
        }
        let removed = slot.profile.remove(index);
        slot.tree = ProfileTree::from_profile(&slot.profile, order)?;
        if let Some(c) = &slot.cache {
            c.invalidate_all();
        }
        Ok(removed)
    }

    /// Update the score of one user's preference at `index`, checking
    /// the new score against the rest of their profile (Definition 6).
    pub fn update_preference_score(
        &mut self,
        user: &str,
        index: usize,
        score: f64,
    ) -> Result<(), CoreError> {
        let env = self.env.clone();
        let order = self.order.clone();
        let slot = self.slot_mut(user)?;
        if index >= slot.profile.len() {
            return Err(CoreError::NoSuchPreference(index));
        }
        let old = &slot.profile.preferences()[index];
        if old.score() == score {
            return Ok(());
        }
        let updated = old.with_score(score)?;
        for (i, other) in slot.profile.preferences().iter().enumerate() {
            if i != index && other.conflicts_with(&updated, &env)? {
                return Err(ctxpref_profile::ProfileError::Conflict {
                    state: ContextState::all(&env),
                    existing_score: other.score(),
                    new_score: score,
                }
                .into());
            }
        }
        slot.profile.update_score(index, score)?;
        slot.tree = ProfileTree::from_profile(&slot.profile, order)?;
        if let Some(c) = &slot.cache {
            c.invalidate_all();
        }
        Ok(())
    }

    /// The query options used for every query on this database.
    pub fn query_defaults(&self) -> QueryOptions {
        self.defaults
    }

    /// Replace the query options used for every query on this database.
    /// Caches are invalidated: cached answers were computed under the
    /// old options.
    pub fn set_query_defaults(&mut self, options: QueryOptions) {
        self.defaults = options;
        for slot in self.users.values_mut() {
            if let Some(c) = &slot.cache {
                c.invalidate_all();
            }
        }
    }

    /// One user's query-cache statistics (`None` when caching is
    /// disabled).
    pub fn cache_stats(&self, user: &str) -> Result<Option<ctxpref_qcache::CacheStats>, CoreError> {
        Ok(self.slot(user)?.cache.as_ref().map(|c| c.stats()))
    }

    /// Query one user's profile under a single context state, through
    /// their cache when enabled.
    pub fn query_state(&self, user: &str, state: &ContextState) -> Result<QueryAnswer, CoreError> {
        let slot = self.slot(user)?;
        if let Some(cache) = &slot.cache {
            if let Some(hit) = cache.get(state) {
                return Ok(QueryAnswer { results: hit, resolutions: Vec::new(), from_cache: true });
            }
        }
        let ecod: ExtendedContextDescriptor =
            crate::db::descriptor_of_state(&self.env, state).into();
        let q = rank_cs(
            &slot.tree,
            &self.relation,
            &ecod,
            self.defaults.distance,
            self.defaults.tie,
            self.defaults.combiner,
        )?;
        let answer = QueryAnswer {
            results: Arc::new(q.results),
            resolutions: q.resolutions,
            from_cache: false,
        };
        if let Some(cache) = &slot.cache {
            cache.insert(state, Arc::clone(&answer.results));
        }
        Ok(answer)
    }

    /// Render the top-`k` answer (ties included) as `name (score)` lines
    /// using the given display attribute — handy for examples and CLIs.
    pub fn render_top(
        &self,
        answer: &QueryAnswer,
        attr: &str,
        k: usize,
    ) -> Result<String, CoreError> {
        let a = self.relation.schema().require_attr(attr)?;
        let mut out = String::new();
        for e in answer.results.top_k_with_ties(k) {
            out.push_str(&format!(
                "{} ({:.2})\n",
                self.relation.tuple(e.tuple_index).value(a),
                e.score
            ));
        }
        Ok(out)
    }

    /// Query one user's profile with an explicit extended descriptor.
    pub fn query(
        &self,
        user: &str,
        ecod: &ExtendedContextDescriptor,
    ) -> Result<QueryAnswer, CoreError> {
        let slot = self.slot(user)?;
        let q = rank_cs(
            &slot.tree,
            &self.relation,
            ecod,
            self.defaults.distance,
            self.defaults.tie,
            self.defaults.combiner,
        )?;
        Ok(QueryAnswer {
            results: Arc::new(q.results),
            resolutions: q.resolutions,
            from_cache: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_context::parse_descriptor;
    use ctxpref_hierarchy::Hierarchy;
    use ctxpref_profile::AttributeClause;
    use ctxpref_relation::{AttrType, Schema};

    fn setup() -> MultiUserDb {
        let env = ContextEnvironment::new(vec![
            Hierarchy::flat("weather", &["cold", "warm"]).unwrap(),
        ])
        .unwrap();
        let schema = Schema::new(&[("type", AttrType::Str)]).unwrap();
        let mut rel = Relation::new("poi", schema);
        for t in ["museum", "brewery", "zoo"] {
            rel.insert(vec![t.into()]).unwrap();
        }
        MultiUserDb::new(env, rel, 8)
    }

    fn pref(db: &MultiUserDb, cod: &str, ty: &str, score: f64) -> ContextualPreference {
        ContextualPreference::new(
            parse_descriptor(db.env(), cod).unwrap(),
            AttributeClause::eq(db.relation().schema().attr("type").unwrap(), ty.into()),
            score,
        )
        .unwrap()
    }

    #[test]
    fn users_are_isolated() {
        let mut db = setup();
        db.add_user("alice").unwrap();
        db.add_user("bob").unwrap();
        assert_eq!(db.user_count(), 2);
        let a = pref(&db, "weather = warm", "brewery", 0.9);
        let b = pref(&db, "weather = warm", "museum", 0.8);
        db.insert_preference("alice", a).unwrap();
        db.insert_preference("bob", b).unwrap();

        let warm = ContextState::parse(db.env(), &["warm"]).unwrap();
        let alice = db.query_state("alice", &warm).unwrap();
        let bob = db.query_state("bob", &warm).unwrap();
        assert_eq!(alice.results.entries()[0].tuple_index, 1); // brewery
        assert_eq!(bob.results.entries()[0].tuple_index, 0); // museum

        // Conflicts are per-user: bob can score the same state/clause
        // differently from alice, but not from himself.
        db.insert_preference("bob", pref(&db, "weather = warm", "brewery", 0.2)).unwrap();
        assert!(db.insert_preference("bob", pref(&db, "weather = warm", "brewery", 0.7)).is_err());
    }

    #[test]
    fn user_management_errors() {
        let mut db = setup();
        db.add_user("alice").unwrap();
        assert!(matches!(db.add_user("alice").unwrap_err(), CoreError::DuplicateUser(_)));
        assert!(matches!(
            db.query_state("ghost", &ContextState::all(db.env())).unwrap_err(),
            CoreError::NoSuchUser(_)
        ));
        let profile = db.remove_user("alice").unwrap();
        assert!(profile.is_empty());
        assert!(matches!(db.remove_user("alice").unwrap_err(), CoreError::NoSuchUser(_)));
    }

    #[test]
    fn caches_are_per_user() {
        let mut db = setup();
        db.add_user("alice").unwrap();
        db.add_user("bob").unwrap();
        db.insert_preference("alice", pref(&db, "weather = warm", "zoo", 0.5)).unwrap();
        db.insert_preference("bob", pref(&db, "weather = warm", "zoo", 0.6)).unwrap();
        let warm = ContextState::parse(db.env(), &["warm"]).unwrap();
        let _ = db.query_state("alice", &warm).unwrap();
        let again = db.query_state("alice", &warm).unwrap();
        assert!(again.from_cache);
        // Bob's first query is not served from Alice's cache.
        let bob = db.query_state("bob", &warm).unwrap();
        assert!(!bob.from_cache);
        assert_eq!(bob.results.entries()[0].score, 0.6);
    }

    #[test]
    fn initial_profiles_and_stats() {
        let mut db = setup();
        let mut profile = Profile::new(db.env().clone());
        profile.insert(pref(&db, "weather = cold", "museum", 0.8)).unwrap();
        db.add_user_with_profile("carol", profile).unwrap();
        assert_eq!(db.profile("carol").unwrap().len(), 1);
        assert!(db.tree_stats("carol").unwrap().leaf_entries == 1);
        let names: Vec<&str> = db.users().collect();
        assert_eq!(names, vec!["carol"]);
    }
}
