#![warn(missing_docs)]
//! High-level façade: a context-aware preference database.
//!
//! [`ContextualDb`] ties the whole system of *"Adding Context to
//! Preferences"* (ICDE 2007) together:
//!
//! * a [`ctxpref_context::ContextEnvironment`] of hierarchical context
//!   parameters,
//! * a database [`ctxpref_relation::Relation`],
//! * a [`ctxpref_profile::Profile`] of contextual preferences indexed by
//!   a [`ctxpref_profile::ProfileTree`],
//! * context resolution + ranking (`Search_CS` / `Rank_CS`) from
//!   [`ctxpref_resolve`],
//! * and an optional [`ctxpref_qcache::ContextQueryTree`] caching the
//!   ranked results of repeated context states.
//!
//! ```
//! use ctxpref_core::ContextualDb;
//! use ctxpref_hierarchy::Hierarchy;
//! use ctxpref_context::{ContextEnvironment, ContextState};
//! use ctxpref_relation::{AttrType, Relation, Schema};
//!
//! let env = ContextEnvironment::new(vec![
//!     Hierarchy::flat("weather", &["cold", "warm"]).unwrap(),
//! ]).unwrap();
//! let schema = Schema::new(&[("name", AttrType::Str), ("type", AttrType::Str)]).unwrap();
//! let mut rel = Relation::new("poi", schema);
//! rel.insert(vec!["Acropolis".into(), "monument".into()]).unwrap();
//! rel.insert(vec!["Benaki".into(), "museum".into()]).unwrap();
//!
//! let mut db = ContextualDb::builder().env(env.clone()).relation(rel).build().unwrap();
//! db.insert_preference_eq("weather = warm", "name", "Acropolis".into(), 0.8).unwrap();
//! db.insert_preference_eq("weather = cold", "type", "museum".into(), 0.7).unwrap();
//!
//! let state = ContextState::parse(&env, &["warm"]).unwrap();
//! let answer = db.query_state(&state).unwrap();
//! assert_eq!(answer.results.entries()[0].score, 0.8);
//! ```

mod db;
mod error;
mod multi;
mod sharded;

pub use db::{ContextualDb, ContextualDbBuilder, QueryAnswer, QueryOptions};
pub use error::CoreError;
pub use multi::MultiUserDb;
pub use sharded::{
    PartialSnapshot, ShardQuiesceGuard, ShardedMultiUserDb, UserShardRead, DEFAULT_SHARDS,
};
