//! The per-shard segmented write-ahead log proper.
//!
//! A [`Wal`] owns one log per shard (the shard count matches the
//! serving core's stripe count, using the same user-to-shard fold), so
//! shards never contend on each other's appends. Each shard is a
//! `Mutex<ShardState>`; the durable layer holds that mutex across
//! *log + apply*, which is what makes the log a true write-AHEAD log:
//! an operation is on disk (or at least in the current segment's
//! buffer) before the database sees it, and replay order per shard is
//! exactly apply order.
//!
//! Two durability policies:
//!
//! * [`SyncPolicy::PerRecord`] — every append is fsynced before it
//!   returns; acks are durable.
//! * [`SyncPolicy::GroupCommit`] — appends buffer in the OS page cache
//!   and return immediately (ack `durable: false`); an explicit
//!   [`ShardGuard::flush`] (driven by the service's flusher thread at
//!   the policy's `flush_interval`) makes everything since the last
//!   flush durable in one fsync. This module never reads the clock —
//!   timing lives in the caller, so tests stay deterministic.
//!
//! Fault sites: `wal.append.write` (error/panic, then a separate
//! truncation decision — a torn write leaves real torn bytes on disk),
//! `wal.append.sync`, `wal.rotate`.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ctxpref_faults::sites;
use parking_lot::{Mutex, MutexGuard};

use crate::error::WalError;
use crate::record::frame;
use crate::segment::{segment_header, segment_path, shard_dir, SEGMENT_HEADER};

/// When appended records become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync every record before acking it. Durable acks, one fsync
    /// per mutation.
    PerRecord,
    /// Buffer records and fsync in batches. The WAL itself never
    /// sleeps or reads the clock; `flush_interval` is advice to the
    /// caller's flusher thread.
    GroupCommit {
        /// How often the owning service should call `flush`.
        flush_interval: Duration,
    },
}

impl SyncPolicy {
    /// Whether appends fsync inline.
    pub fn is_per_record(&self) -> bool {
        matches!(self, Self::PerRecord)
    }
}

/// Tuning knobs of a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// The durability policy.
    pub sync: SyncPolicy,
    /// Rotate a shard's segment once it grows past this many bytes.
    pub segment_max_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::PerRecord,
            segment_max_bytes: 1 << 20,
        }
    }
}

/// Where recovery left one shard: the append position handed to
/// [`Wal::open`].
#[derive(Debug, Clone, Copy)]
pub struct ShardPosition {
    /// The shard's last (append-target) segment.
    pub seg_no: u64,
    /// Byte length of that segment's valid prefix.
    pub pos: u64,
    /// The next LSN to assign on this shard.
    pub next_lsn: u64,
}

#[derive(Debug)]
struct ShardState {
    file: File,
    seg_no: u64,
    /// End of the valid log: where the next record goes.
    pos: u64,
    /// Prefix of the segment known to be on disk.
    synced_pos: u64,
    next_lsn: u64,
    /// Highest LSN known durable (0 = none).
    synced_lsn: u64,
    /// Records appended since the last fsync.
    pending: u64,
    /// The file may hold garbage past `pos` (a torn injected write);
    /// the next append must `set_len(pos)` before writing.
    tail_dirty: bool,
    /// A rollback failed; the on-disk state is unknown and appends are
    /// refused until recovery.
    poisoned: bool,
}

/// The result of one append.
#[derive(Debug, Clone, Copy)]
pub struct AppendAck {
    /// The LSN assigned to the record.
    pub lsn: u64,
    /// Whether the record is already on disk (`true` under
    /// [`SyncPolicy::PerRecord`]; under group commit it becomes durable
    /// at the next flush).
    pub durable: bool,
}

/// Point-in-time status of one WAL shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardWalStatus {
    /// Current segment number.
    pub seg_no: u64,
    /// Bytes in the current segment's valid prefix.
    pub seg_bytes: u64,
    /// Highest LSN assigned (0 = none).
    pub last_lsn: u64,
    /// Highest LSN known durable (0 = none).
    pub synced_lsn: u64,
    /// Records awaiting the next group-commit flush.
    pub pending: u64,
    /// Whether the shard refuses appends after a failed rollback.
    pub poisoned: bool,
}

/// Aggregate counters shared by [`WalStatus`] and the service stats
/// overlay.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalHealth {
    /// Size-triggered rotations that failed and left a full segment as
    /// the append target (the append itself succeeded).
    pub rotate_failures: u64,
    /// Appends shed with [`WalError::DiskFull`] while the volume was
    /// out of space.
    pub disk_full_sheds: u64,
}

/// Point-in-time status of the whole log.
#[derive(Debug, Clone)]
pub struct WalStatus {
    /// Per-shard status, indexed by shard.
    pub shards: Vec<ShardWalStatus>,
    /// Total records appended since open.
    pub appends: u64,
    /// Total group-commit flushes that synced at least one record.
    pub batches: u64,
    /// Total segment rotations since open.
    pub rotations: u64,
    /// Size-triggered rotations that failed (the full segment stayed
    /// the append target; a later rotation retries).
    pub rotate_failures: u64,
    /// Appends shed with a typed retryable [`WalError::DiskFull`].
    pub disk_full_sheds: u64,
}

/// A per-shard segmented write-ahead log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    shards: Vec<Mutex<ShardState>>,
    appends: AtomicU64,
    batches: AtomicU64,
    rotations: AtomicU64,
    rotate_failures: AtomicU64,
    disk_full_sheds: AtomicU64,
}

impl Wal {
    /// Create a fresh log under `dir`: one shard directory each with an
    /// empty first segment.
    pub fn create(dir: &Path, num_shards: usize, opts: WalOptions) -> Result<Self, WalError> {
        let mut shards = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            std::fs::create_dir_all(shard_dir(dir, shard))?;
            let file = new_segment(dir, shard, 1)?;
            shards.push(Mutex::new(ShardState {
                file,
                seg_no: 1,
                pos: SEGMENT_HEADER as u64,
                synced_pos: SEGMENT_HEADER as u64,
                next_lsn: 1,
                synced_lsn: 0,
                pending: 0,
                tail_dirty: false,
                poisoned: false,
            }));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            opts,
            shards,
            appends: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            rotate_failures: AtomicU64::new(0),
            disk_full_sheds: AtomicU64::new(0),
        })
    }

    /// Open an existing log at the positions recovery computed (tails
    /// already repaired by the recovery scan).
    pub fn open(
        dir: &Path,
        opts: WalOptions,
        positions: &[ShardPosition],
    ) -> Result<Self, WalError> {
        let mut shards = Vec::with_capacity(positions.len());
        for (shard, p) in positions.iter().enumerate() {
            let path = segment_path(dir, shard, p.seg_no);
            let file = OpenOptions::new().read(true).write(true).open(&path)?;
            shards.push(Mutex::new(ShardState {
                file,
                seg_no: p.seg_no,
                pos: p.pos,
                synced_pos: p.pos,
                next_lsn: p.next_lsn,
                synced_lsn: p.next_lsn.saturating_sub(1),
                pending: 0,
                tail_dirty: false,
                poisoned: false,
            }));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            opts,
            shards,
            appends: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            rotate_failures: AtomicU64::new(0),
            disk_full_sheds: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configured options.
    pub fn options(&self) -> &WalOptions {
        &self.opts
    }

    /// Lock shard `ix` for appending. The durable layer holds this
    /// guard across log-then-apply so replay order matches apply order.
    pub fn shard(&self, ix: usize) -> ShardGuard<'_> {
        ShardGuard {
            wal: self,
            shard: ix,
            state: self.shards[ix].lock(),
        }
    }

    /// Flush every shard (a no-op per shard when nothing is pending).
    /// Returns the number of records made durable.
    pub fn flush_all(&self) -> Result<u64, WalError> {
        let mut synced = 0;
        for ix in 0..self.shards.len() {
            synced += self.shard(ix).flush()?;
        }
        Ok(synced)
    }

    /// Snapshot the log's status.
    pub fn status(&self) -> WalStatus {
        WalStatus {
            shards: (0..self.shards.len())
                .map(|ix| {
                    let s = self.shards[ix].lock();
                    ShardWalStatus {
                        seg_no: s.seg_no,
                        seg_bytes: s.pos,
                        last_lsn: s.next_lsn - 1,
                        synced_lsn: s.synced_lsn,
                        pending: s.pending,
                        poisoned: s.poisoned,
                    }
                })
                .collect(),
            appends: self.appends.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            rotations: self.rotations.load(Ordering::Relaxed),
            rotate_failures: self.rotate_failures.load(Ordering::Relaxed),
            disk_full_sheds: self.disk_full_sheds.load(Ordering::Relaxed),
        }
    }

    /// The log's health counters (rotate failures, disk-full sheds),
    /// cheap enough for a stats overlay to poll.
    pub fn health(&self) -> WalHealth {
        WalHealth {
            rotate_failures: self.rotate_failures.load(Ordering::Relaxed),
            disk_full_sheds: self.disk_full_sheds.load(Ordering::Relaxed),
        }
    }

    /// Total records appended since open.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Total group-commit batches synced since open.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }
}

/// Exclusive access to one WAL shard.
pub struct ShardGuard<'a> {
    wal: &'a Wal,
    shard: usize,
    state: MutexGuard<'a, ShardState>,
}

impl ShardGuard<'_> {
    /// The next LSN this shard will assign.
    pub fn next_lsn(&self) -> u64 {
        self.state.next_lsn
    }

    /// The current segment number.
    pub fn seg_no(&self) -> u64 {
        self.state.seg_no
    }

    /// Append one record and, under [`SyncPolicy::PerRecord`], fsync
    /// it. On any error the log's logical state is unchanged: either
    /// the bytes are rolled back, or (for an injected torn write) they
    /// are left as a dirty tail that the next append truncates and a
    /// crash-recovery scan recognizes as torn.
    pub fn append(&mut self, payload: &[u8]) -> Result<AppendAck, WalError> {
        let shard = self.shard;
        if ctxpref_faults::hit(sites::DISK_FULL).is_err() {
            // The volume is (injected-)full. Shed before touching the
            // file: nothing to roll back, the caller retries later, and
            // reads keep serving off the existing log and checkpoints.
            self.wal.disk_full_sheds.fetch_add(1, Ordering::Relaxed);
            return Err(WalError::DiskFull { shard });
        }
        let s = &mut *self.state;
        if s.poisoned {
            return Err(WalError::Poisoned { shard });
        }
        if s.tail_dirty {
            // Drop garbage a previous torn write left past `pos`.
            // Overwriting it would mostly work, but a crash could then
            // leave old garbage *after* the new record, which the
            // recovery scan would have to treat as mid-log corruption.
            s.file.set_len(s.pos)?;
            s.tail_dirty = false;
        }
        let lsn = s.next_lsn;
        let bytes = frame(lsn, payload);

        ctxpref_faults::hit_io(sites::WAL_APPEND_WRITE)?;
        let keep = ctxpref_faults::truncated_len(sites::WAL_APPEND_WRITE, bytes.len());
        s.file.seek(SeekFrom::Start(s.pos))?;
        let write = s.file.write_all(&bytes[..keep]);
        if keep < bytes.len() {
            // Injected torn write: the prefix stays on disk (that is
            // the point — recovery must cope with it), the logical log
            // does not advance, and the op is never applied.
            let _ = s.file.sync_data();
            s.tail_dirty = true;
            return Err(WalError::Io(std::io::Error::other(format!(
                "injected torn append: {keep} of {} bytes persisted",
                bytes.len()
            ))));
        }
        if let Err(e) = write {
            // A real write error may have persisted a prefix.
            s.tail_dirty = s.file.set_len(s.pos).is_err();
            if is_enospc(&e) && !s.tail_dirty {
                // A real ENOSPC whose prefix rolled back cleanly is the
                // same retryable shed as the injected window above.
                self.wal.disk_full_sheds.fetch_add(1, Ordering::Relaxed);
                return Err(WalError::DiskFull { shard });
            }
            return Err(WalError::Io(e));
        }

        let durable = match self.wal.opts.sync {
            SyncPolicy::PerRecord => {
                let synced = ctxpref_faults::hit_io(sites::WAL_APPEND_SYNC)
                    .and_then(|()| s.file.sync_data());
                if let Err(e) = synced {
                    // The record reached the file but not the disk. It
                    // MUST come back off: the caller will not apply the
                    // op, and if the bytes later reached disk anyway a
                    // replay would apply an op the live path never did.
                    if s.file.set_len(s.pos).is_err() {
                        s.poisoned = true;
                        return Err(WalError::Poisoned { shard });
                    }
                    return Err(WalError::Io(e));
                }
                s.pos += bytes.len() as u64;
                s.synced_pos = s.pos;
                s.next_lsn = lsn + 1;
                s.synced_lsn = lsn;
                true
            }
            SyncPolicy::GroupCommit { .. } => {
                s.pos += bytes.len() as u64;
                s.next_lsn = lsn + 1;
                s.pending += 1;
                false
            }
        };
        self.wal.appends.fetch_add(1, Ordering::Relaxed);

        if self.state.pos >= self.wal.opts.segment_max_bytes {
            // Rotation failure never fails the append — the record is
            // already in the log; a full segment just stays the append
            // target until a later rotation succeeds. But it is not
            // silent: an ever-growing segment means GC cannot reclaim
            // it, so the failure is counted and surfaced in status.
            if self.rotate().is_err() {
                self.wal.rotate_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(AppendAck { lsn, durable })
    }

    /// Fsync everything appended since the last flush. Returns the
    /// number of records made durable. Failure leaves the unsynced
    /// records in place: they were acked non-durable, the database
    /// already applied them, and a later flush (or a crash plus
    /// replay of whatever made it to disk) resolves them.
    pub fn flush(&mut self) -> Result<u64, WalError> {
        let shard = self.shard;
        let s = &mut *self.state;
        if s.poisoned {
            return Err(WalError::Poisoned { shard });
        }
        if s.pending == 0 && s.synced_pos == s.pos {
            return Ok(0);
        }
        ctxpref_faults::hit_io(sites::WAL_APPEND_SYNC)?;
        s.file.sync_data()?;
        let synced = s.pending;
        s.pending = 0;
        s.synced_pos = s.pos;
        s.synced_lsn = s.next_lsn - 1;
        if synced > 0 {
            self.wal.batches.fetch_add(1, Ordering::Relaxed);
        }
        Ok(synced)
    }

    /// Close the current segment and start the next one. Pending
    /// records are flushed first, so a finished segment is always fully
    /// durable. Fault site `wal.rotate` fires before the new segment
    /// exists.
    pub fn rotate(&mut self) -> Result<u64, WalError> {
        self.flush()?;
        let shard = self.shard;
        ctxpref_faults::hit_io(sites::WAL_ROTATE)?;
        let seg_no = self.state.seg_no + 1;
        let file = new_segment(&self.wal.dir, shard, seg_no)?;
        let s = &mut *self.state;
        s.file = file;
        s.seg_no = seg_no;
        s.pos = SEGMENT_HEADER as u64;
        s.synced_pos = s.pos;
        s.tail_dirty = false;
        self.wal.rotations.fetch_add(1, Ordering::Relaxed);
        Ok(seg_no)
    }

    /// Force the shard's LSN sequence to continue at `next_lsn`. Only
    /// meaningful immediately after a [`Self::rotate`], when the
    /// current segment is empty: replication uses it to re-seat a shard
    /// at a shipped snapshot's watermark (forward for a lagging
    /// replica, backward to discard a deposed primary's divergent
    /// suffix). The caller must follow up with a checkpoint so the
    /// manifest's replay bounds match the forced sequence.
    pub fn set_next_lsn(&mut self, next_lsn: u64) {
        let s = &mut *self.state;
        s.next_lsn = next_lsn;
        s.synced_lsn = next_lsn.saturating_sub(1);
        s.pending = 0;
    }

    /// Simulate losing everything the OS had not fsynced: truncate the
    /// on-disk segment to the synced prefix. Only meaningful under
    /// group commit; the crash-recovery fuzz uses it to model a power
    /// cut rather than a process kill.
    #[doc(hidden)]
    pub fn drop_unsynced_tail(&mut self) -> Result<(), WalError> {
        let s = &mut *self.state;
        s.file.set_len(s.synced_pos)?;
        s.file.sync_data()?;
        Ok(())
    }
}

/// Create segment `seg_no` of `shard`, write and fsync its header, and
/// fsync the shard directory so the file itself survives a crash.
fn new_segment(dir: &Path, shard: usize, seg_no: u64) -> Result<File, WalError> {
    let path = segment_path(dir, shard, seg_no);
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)?;
    file.write_all(&segment_header(shard, seg_no))?;
    file.sync_all()?;
    // The directory entry must be durable too: without this fsync a
    // crash can orphan the just-rotated segment (file contents synced,
    // name lost), which replay would see as an LSN gap. A failure here
    // is a real durability hole, so it propagates instead of being
    // dropped.
    let d = File::open(shard_dir(dir, shard))?;
    d.sync_all()?;
    Ok(file)
}

/// Whether an I/O error is the volume running out of space.
fn is_enospc(e: &std::io::Error) -> bool {
    // ENOSPC (28 on Linux) — matched by raw OS code so the mapping
    // works on toolchains without `ErrorKind::StorageFull` coverage.
    e.raw_os_error() == Some(28)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FRAME_HEADER;
    use crate::segment::{list_segments, scan_segment};
    use ctxpref_faults::FaultPlan;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// Fault-plan tests share a process-global plan slot; serialize them.
    fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn per_record_appends_are_durable_and_replayable() {
        let dir = tempdir("per-record");
        let wal = Wal::create(&dir, 2, WalOptions::default()).unwrap();
        let a1 = wal.shard(0).append(b"add u1").unwrap();
        let a2 = wal.shard(0).append(b"ins u1 x").unwrap();
        let b1 = wal.shard(1).append(b"add u2").unwrap();
        assert!(a1.durable && a2.durable && b1.durable);
        assert_eq!((a1.lsn, a2.lsn, b1.lsn), (1, 2, 1));
        assert_eq!(wal.appends(), 3);

        let scan = scan_segment(&segment_path(&dir, 0, 1), 0, 1, true).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].payload, b"ins u1 x");
    }

    #[test]
    fn group_commit_buffers_until_flush() {
        let dir = tempdir("group-commit");
        let opts = WalOptions {
            sync: SyncPolicy::GroupCommit {
                flush_interval: Duration::from_millis(5),
            },
            ..WalOptions::default()
        };
        let wal = Wal::create(&dir, 1, opts).unwrap();
        for i in 0..4 {
            let ack = wal.shard(0).append(format!("op {i}").as_bytes()).unwrap();
            assert!(!ack.durable);
        }
        assert_eq!(wal.status().shards[0].pending, 4);
        assert_eq!(wal.status().shards[0].synced_lsn, 0);
        assert_eq!(wal.shard(0).flush().unwrap(), 4);
        assert_eq!(wal.batches(), 1);
        assert_eq!(wal.status().shards[0].synced_lsn, 4);
        // A second flush with nothing pending is a free no-op.
        assert_eq!(wal.shard(0).flush().unwrap(), 0);
        assert_eq!(wal.batches(), 1);
    }

    #[test]
    fn segments_rotate_at_the_size_cap() {
        let dir = tempdir("rotate");
        let opts = WalOptions {
            segment_max_bytes: 128,
            ..WalOptions::default()
        };
        let wal = Wal::create(&dir, 1, opts).unwrap();
        for i in 0..12 {
            wal.shard(0)
                .append(format!("record number {i}").as_bytes())
                .unwrap();
        }
        let segs = list_segments(&dir, 0).unwrap();
        assert!(segs.len() > 1, "expected rotations, got {segs:?}");
        assert_eq!(wal.status().rotations, segs.len() as u64 - 1);
        // Every record is still there, in LSN order across segments.
        let mut lsns = Vec::new();
        for (i, &seg) in segs.iter().enumerate() {
            let scan =
                scan_segment(&segment_path(&dir, 0, seg), 0, seg, i == segs.len() - 1).unwrap();
            lsns.extend(scan.records.iter().map(|r| r.lsn));
        }
        assert_eq!(lsns, (1..=12).collect::<Vec<_>>());
    }

    #[test]
    fn injected_sync_failure_rolls_the_record_back() {
        let _serial = fault_lock();
        let dir = tempdir("sync-fail");
        let wal = Wal::create(&dir, 1, WalOptions::default()).unwrap();
        wal.shard(0).append(b"keep me").unwrap();
        let len_before = std::fs::metadata(segment_path(&dir, 0, 1)).unwrap().len();

        let plan = FaultPlan::builder(1)
            .fail_at(sites::WAL_APPEND_SYNC, &[1])
            .build();
        let err = plan.run(|| wal.shard(0).append(b"lose me")).unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "{err}");

        // Rolled back on disk and in memory: same length, same next LSN.
        assert_eq!(
            std::fs::metadata(segment_path(&dir, 0, 1)).unwrap().len(),
            len_before
        );
        let ack = wal.shard(0).append(b"second").unwrap();
        assert_eq!(ack.lsn, 2);
        let scan = scan_segment(&segment_path(&dir, 0, 1), 0, 1, true).unwrap();
        assert_eq!(
            scan.records
                .iter()
                .map(|r| r.payload.as_slice())
                .collect::<Vec<_>>(),
            vec![b"keep me".as_slice(), b"second".as_slice()]
        );
    }

    #[test]
    fn injected_torn_write_leaves_a_recoverable_tail() {
        let _serial = fault_lock();
        let dir = tempdir("torn");
        let wal = Wal::create(&dir, 1, WalOptions::default()).unwrap();
        wal.shard(0).append(b"keep me").unwrap();

        // Hit #2 of the site is the append's truncation decision (hit
        // #1 is its error/panic check).
        let plan = FaultPlan::builder(1)
            .truncate_at(sites::WAL_APPEND_WRITE, &[2], 0.5)
            .build();
        let err = plan
            .run(|| wal.shard(0).append(b"torn record payload"))
            .unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "{err}");

        // The torn bytes are really on disk…
        let path = segment_path(&dir, 0, 1);
        let scan = scan_segment(&path, 0, 1, true).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1);

        // …and the next append reclaims the tail with the same LSN.
        let ack = wal.shard(0).append(b"after the tear").unwrap();
        assert_eq!(ack.lsn, 2);
        let scan = scan_segment(&path, 0, 1, true).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].payload, b"after the tear");
    }

    #[test]
    fn drop_unsynced_tail_loses_only_unflushed_records() {
        let dir = tempdir("power-cut");
        let opts = WalOptions {
            sync: SyncPolicy::GroupCommit {
                flush_interval: Duration::from_millis(5),
            },
            ..WalOptions::default()
        };
        let wal = Wal::create(&dir, 1, opts).unwrap();
        wal.shard(0).append(b"flushed").unwrap();
        wal.shard(0).flush().unwrap();
        wal.shard(0).append(b"in the page cache").unwrap();
        wal.shard(0).drop_unsynced_tail().unwrap();
        let scan = scan_segment(&segment_path(&dir, 0, 1), 0, 1, true).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].payload, b"flushed");
    }

    #[test]
    fn reopen_continues_the_lsn_sequence() {
        let dir = tempdir("reopen");
        let opts = WalOptions::default();
        let wal = Wal::create(&dir, 1, opts).unwrap();
        wal.shard(0).append(b"one").unwrap();
        wal.shard(0).append(b"two").unwrap();
        let pos = wal.status().shards[0].seg_bytes;
        drop(wal);

        let positions = [ShardPosition {
            seg_no: 1,
            pos,
            next_lsn: 3,
        }];
        let wal = Wal::open(&dir, opts, &positions).unwrap();
        let ack = wal.shard(0).append(b"three").unwrap();
        assert_eq!(ack.lsn, 3);
        let scan = scan_segment(&segment_path(&dir, 0, 1), 0, 1, true).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].lsn, 3);
    }

    #[test]
    fn frame_header_matches_layout() {
        // Guards against someone "simplifying" the constants apart.
        assert_eq!(FRAME_HEADER, 20);
        assert_eq!(SEGMENT_HEADER, 24);
    }
}
