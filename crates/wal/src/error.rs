//! Typed errors of the log, manifest, and durable mutation paths.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use ctxpref_core::CoreError;
use ctxpref_storage::StorageError;

/// Typed errors of the write-ahead log and its recovery path.
#[derive(Debug)]
pub enum WalError {
    /// An I/O error from the log or manifest files.
    Io(std::io::Error),
    /// A storage-layer error from the checkpoint snapshot (save or load).
    Storage(StorageError),
    /// Mid-log corruption: a record failed its checksum (or was
    /// otherwise malformed) *with valid data following it*, so this is
    /// bitrot or tampering, not a torn tail, and recovery refuses to
    /// guess.
    Corrupt {
        /// The corrupt segment file.
        path: PathBuf,
        /// Byte offset of the bad record within the segment.
        offset: u64,
        /// What exactly was wrong.
        reason: String,
    },
    /// The manifest file is missing, unparsable, or fails its checksum.
    Manifest {
        /// What exactly was wrong.
        reason: String,
    },
    /// Replay found a hole in a shard's LSN sequence: segments are
    /// missing or were truncated out from under the manifest.
    LsnGap {
        /// The WAL shard whose sequence broke.
        shard: usize,
        /// The LSN replay expected next.
        expected: u64,
        /// The LSN it found instead.
        found: u64,
    },
    /// A record payload failed to decode against the recovered
    /// environment and relation.
    Payload {
        /// What exactly was wrong.
        reason: String,
    },
    /// `DurableDb::create` was pointed at a directory that already
    /// holds a manifest (use `recover` instead).
    AlreadyExists {
        /// The offending directory.
        dir: PathBuf,
    },
    /// A shard's log file is in an unknown state after a failed
    /// rollback; appends to it are refused.
    Poisoned {
        /// The poisoned WAL shard.
        shard: usize,
    },
    /// The volume is out of space. The append was shed before any
    /// byte was written, so the log is unchanged and the write is
    /// safe to retry — reads keep serving, and appends resume on
    /// their own once space returns.
    DiskFull {
        /// The WAL shard that shed the write.
        shard: usize,
    },
    /// Another live `DurableDb` already owns the directory's exclusive
    /// lock. Checkpoint GC deletes files a concurrent recovery would
    /// still be reading, so a durable directory admits one owner at a
    /// time; the second opener fails fast here instead of racing.
    Locked {
        /// The already-owned directory.
        dir: PathBuf,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal i/o error: {e}"),
            Self::Storage(e) => write!(f, "checkpoint storage error: {e}"),
            Self::Corrupt {
                path,
                offset,
                reason,
            } => {
                write!(
                    f,
                    "corrupt wal record in {} at offset {offset}: {reason}",
                    path.display()
                )
            }
            Self::Manifest { reason } => write!(f, "bad wal manifest: {reason}"),
            Self::LsnGap {
                shard,
                expected,
                found,
            } => {
                write!(
                    f,
                    "lsn gap in wal shard {shard}: expected {expected}, found {found}"
                )
            }
            Self::Payload { reason } => write!(f, "bad wal record payload: {reason}"),
            Self::AlreadyExists { dir } => {
                write!(f, "{} already holds a wal (use recover)", dir.display())
            }
            Self::Poisoned { shard } => {
                write!(f, "wal shard {shard} is poisoned after a failed rollback")
            }
            Self::DiskFull { shard } => {
                write!(
                    f,
                    "disk full: wal shard {shard} shed the write (retryable; nothing was logged)"
                )
            }
            Self::Locked { dir } => {
                write!(
                    f,
                    "{} is locked by another live DurableDb (checkpoint GC would race recovery)",
                    dir.display()
                )
            }
        }
    }
}

impl WalError {
    /// Whether this error is a transient disk-full shed: nothing was
    /// logged or applied, and the same write is safe to retry once
    /// space returns.
    pub fn is_disk_full(&self) -> bool {
        matches!(self, Self::DiskFull { .. })
    }
}

impl Error for WalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<StorageError> for WalError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

/// Errors of a durable mutation: either the log refused the append, or
/// the database rejected the operation (the op is then on the log, and
/// replay will reject it identically — rejection is deterministic).
#[derive(Debug)]
pub enum DurableError {
    /// The append (or sync) failed; the operation was rolled back and
    /// **not** applied.
    Wal(WalError),
    /// The database rejected the logged operation (unknown user,
    /// conflicting preference, …); the database is unchanged.
    Core(CoreError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Wal(e) => write!(f, "{e}"),
            Self::Core(e) => write!(f, "{e}"),
        }
    }
}

impl Error for DurableError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Wal(e) => Some(e),
            Self::Core(e) => Some(e),
        }
    }
}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        Self::Wal(e)
    }
}

impl From<CoreError> for DurableError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}
