//! The checkpoint manifest: the single source of truth for recovery.
//!
//! `MANIFEST` is a small checksummed text file naming the current
//! checkpoint generation, its snapshot file, and — per WAL shard — the
//! last LSN the checkpoint covers and the first segment that must
//! still be replayed. It is replaced by an atomic write-temp +
//! fsync + rename, so a crash at any point of a checkpoint leaves
//! either the old manifest or the new one governing recovery, never a
//! half-written mix. Checkpoint files and segments are only deleted
//! *after* the manifest that stops referencing them is durable.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ctxpref_faults::sites;
use ctxpref_storage::fnv1a64;

use crate::error::WalError;

/// The manifest's file name inside a durable directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

const MANIFEST_HEADER: &str = "ctxwal manifest v1";

/// The checkpoint snapshot file for generation `gen`.
pub fn checkpoint_file_name(generation: u64) -> String {
    format!("checkpoint-{generation}.db")
}

/// Per-shard recovery bounds recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest {
    /// Highest LSN captured by the checkpoint snapshot; replay skips
    /// records at or below it.
    pub last_lsn: u64,
    /// First segment that may hold records above [`Self::last_lsn`];
    /// earlier segments are garbage.
    pub first_live_segment: u64,
}

/// The durable recovery root: checkpoint generation plus per-shard
/// replay bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic checkpoint generation, bumped on every swap.
    pub generation: u64,
    /// File name (relative to the durable directory) of the checkpoint
    /// snapshot.
    pub checkpoint: String,
    /// Replay bounds, indexed by WAL shard.
    pub shards: Vec<ShardManifest>,
}

impl Manifest {
    /// The manifest for a freshly bootstrapped directory: generation 0,
    /// empty-ish checkpoint, nothing replayed yet.
    pub fn bootstrap(num_shards: usize) -> Self {
        Self {
            generation: 0,
            checkpoint: checkpoint_file_name(0),
            shards: vec![
                ShardManifest {
                    last_lsn: 0,
                    first_live_segment: 1
                };
                num_shards
            ],
        }
    }

    /// Full path of the checkpoint snapshot under `dir`.
    pub fn checkpoint_path(&self, dir: &Path) -> PathBuf {
        dir.join(&self.checkpoint)
    }

    fn body(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let _ = writeln!(body, "generation {}", self.generation);
        let _ = writeln!(body, "checkpoint {}", self.checkpoint);
        let _ = writeln!(body, "shards {}", self.shards.len());
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(body, "shard {i} {} {}", s.last_lsn, s.first_live_segment);
        }
        body
    }

    /// Atomically replace `dir/MANIFEST` with this manifest. Fault
    /// site `manifest.swap` fires just before the rename — the moment a
    /// crash is most interesting, with both old and new files on disk.
    pub fn save(&self, dir: &Path) -> Result<(), WalError> {
        let body = self.body();
        let mut payload = Vec::with_capacity(body.len() + 64);
        let _ = writeln!(payload, "{MANIFEST_HEADER}");
        let _ = writeln!(payload, "checksum {:016x}", fnv1a64(&body));
        payload.extend_from_slice(&body);

        let path = dir.join(MANIFEST_FILE);
        let tmp = temp_sibling(&path);
        let mut f = File::create(&tmp)?;
        f.write_all(&payload)?;
        f.sync_all()?;
        drop(f);
        ctxpref_faults::hit_io(sites::MANIFEST_SWAP)?;
        std::fs::rename(&tmp, &path)?;
        // Make the rename itself durable (directory entry update).
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Load and verify `dir/MANIFEST`.
    pub fn load(dir: &Path) -> Result<Self, WalError> {
        let bad = |reason: String| WalError::Manifest { reason };
        let bytes = std::fs::read(dir.join(MANIFEST_FILE))
            .map_err(|e| bad(format!("cannot read {MANIFEST_FILE}: {e}")))?;
        let text =
            std::str::from_utf8(&bytes).map_err(|_| bad("manifest is not utf-8".to_string()))?;
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(bad("missing manifest header".to_string()));
        }
        let sum_line = lines.next().unwrap_or_default();
        let expected = sum_line
            .strip_prefix("checksum ")
            .ok_or_else(|| bad("missing checksum line".to_string()))?;
        let body_start = text
            .match_indices('\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .ok_or_else(|| bad("truncated manifest".to_string()))?;
        let actual = format!("{:016x}", fnv1a64(&bytes[body_start..]));
        if expected.trim() != actual {
            return Err(bad(format!(
                "checksum mismatch: recorded {expected}, actual {actual}"
            )));
        }

        let mut field = |prefix: &str| -> Result<String, WalError> {
            let line = lines
                .next()
                .ok_or_else(|| bad(format!("missing {prefix} line")))?;
            line.strip_prefix(prefix)
                .and_then(|r| r.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| bad(format!("expected {prefix} line, got {line:?}")))
        };
        let generation = field("generation")?
            .parse()
            .map_err(|e| bad(format!("bad generation: {e}")))?;
        let checkpoint = field("checkpoint")?;
        let n: usize = field("shards")?
            .parse()
            .map_err(|e| bad(format!("bad shards: {e}")))?;
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let line = field("shard")?;
            let toks: Vec<&str> = line.split_whitespace().collect();
            let parsed = match toks.as_slice() {
                [ix, lsn, seg] => ix
                    .parse::<usize>()
                    .ok()
                    .filter(|ix| *ix == i)
                    .and_then(|_| Some((lsn.parse().ok()?, seg.parse().ok()?))),
                _ => None,
            };
            let (last_lsn, first_live_segment) =
                parsed.ok_or_else(|| bad(format!("bad shard line {line:?}")))?;
            shards.push(ShardManifest {
                last_lsn,
                first_live_segment,
            });
        }
        Ok(Self {
            generation,
            checkpoint,
            shards,
        })
    }
}

/// A unique temp path next to `path` (rename must not cross
/// filesystems).
fn temp_sibling(path: &Path) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(|f| f.to_os_string())
        .unwrap_or_default();
    name.push(format!(".tmp.{}.{n}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            generation: 4,
            checkpoint: checkpoint_file_name(4),
            shards: vec![
                ShardManifest {
                    last_lsn: 17,
                    first_live_segment: 3,
                },
                ShardManifest {
                    last_lsn: 0,
                    first_live_segment: 1,
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let dir = tempdir();
        let m = sample();
        m.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
    }

    #[test]
    fn save_replaces_atomically() {
        let dir = tempdir();
        Manifest::bootstrap(2).save(&dir).unwrap();
        sample().save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap().generation, 4);
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = tempdir();
        sample().save(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = Manifest::load(&dir).unwrap_err();
        assert!(matches!(err, WalError::Manifest { .. }), "{err}");
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = tempdir();
        assert!(matches!(
            Manifest::load(&dir),
            Err(WalError::Manifest { .. })
        ));
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-wal-manifest-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
