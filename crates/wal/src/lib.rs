#![warn(missing_docs)]
//! Write-ahead logging, checkpoint manifests, and crash recovery for
//! the sharded serving core.
//!
//! The durability story, bottom to top:
//!
//! * [`record`] — framed log records: `[len | lsn | checksum | payload]`
//!   with an FNV-1a 64 checksum over the whole frame, and [`WalOp`],
//!   the logged mutation vocabulary (text payloads in the `ctxpref v1`
//!   token dialect).
//! * [`segment`] — per-shard segment files (`shard-<i>/seg-<n>.wal`)
//!   and the recovery scan with its torn-tail rule: damage at the very
//!   end of a shard's last segment is a crash signature and is
//!   truncated away; damage anywhere else is corruption and recovery
//!   refuses to guess.
//! * [`wal`] — the [`Wal`] itself: one mutex-guarded log per shard
//!   (shards match the serving core's stripes), with
//!   [`SyncPolicy::PerRecord`] fsync-per-append or
//!   [`SyncPolicy::GroupCommit`] batched flushes, plus size-triggered
//!   segment rotation.
//! * [`manifest`] — the atomically-swapped [`Manifest`] naming the
//!   current checkpoint generation and each shard's replay bounds.
//! * [`durable`] — [`DurableDb`]: log-first mutations over the sharded
//!   core, background-checkpointable ([`DurableDb::checkpoint`]
//!   snapshots stripe-by-stripe under the matching WAL shard mutex,
//!   rotates segments, swaps the manifest, and garbage-collects), and
//!   [`DurableDb::recover`] = checkpoint + replay.
//! * [`harness`] — the deterministic crash-recovery fuzz: seeded
//!   workloads crashed at every registered fault site, recovered, and
//!   checked against the acked-durability invariant.
//!
//! Fault sites (`wal.append.write`, `wal.append.sync`, `wal.rotate`,
//! `manifest.swap`, plus the storage crate's `storage.save.*`) are
//! threaded through [`ctxpref_faults`]; with no plan installed they
//! cost one atomic load.

pub mod durable;
pub mod error;
pub mod harness;
pub mod manifest;
pub mod record;
pub mod scrub;
pub mod segment;
pub mod wal;

pub use durable::{
    Ack, CheckpointReport, DurableDb, RecoveryReport, ReplApply, UserCut, LOCK_FILE,
};
pub use error::{DurableError, WalError};
pub use harness::{run_seed, tiny_env, tiny_relation, FuzzConfig, FuzzReport, Workload};
pub use manifest::{Manifest, ShardManifest};
pub use record::WalOp;
pub use scrub::{QuarantinedFile, ScrubReport, QUARANTINE_DIR};
pub use segment::ScannedRecord;
pub use wal::{AppendAck, ShardWalStatus, SyncPolicy, Wal, WalHealth, WalOptions, WalStatus};
