//! [`DurableDb`]: the sharded serving core wired to a write-ahead log
//! and checkpoint manifests.
//!
//! Every mutation is **logged first, applied second**, both under the
//! target shard's WAL mutex, so per-shard replay order is exactly apply
//! order. The on-disk layout under the durable directory:
//!
//! ```text
//! MANIFEST              — checksummed recovery root (atomic swap)
//! checkpoint-<gen>.db   — snapshot in the `ctxpref v1` save format
//! shard-<i>/seg-*.wal   — that shard's segmented log
//! ```
//!
//! Recovery = load the manifest's checkpoint, then per shard replay the
//! live segments in LSN order, tolerating exactly one torn tail per
//! shard (repaired in place) and refusing anything that looks like
//! mid-log corruption.
//!
//! There is deliberately **no flush-on-drop**: dropping a `DurableDb`
//! models a crash, which is precisely what the recovery fuzz harness
//! needs. Orderly shutdown calls [`DurableDb::flush`] explicitly.

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_faults::sites;
use ctxpref_profile::Profile;
use ctxpref_storage::{load_multi_user, save_multi_user};
use parking_lot::Mutex;

use crate::error::{DurableError, WalError};
use crate::manifest::{checkpoint_file_name, Manifest, ShardManifest};
use crate::record::WalOp;
use crate::scrub::{
    quarantine_has_shard, quarantine_root, quarantine_segment, QuarantinedFile, ScrubReport,
};
use crate::segment::{
    list_segments, scan_segment, segment_header, segment_path, shard_dir, ScannedRecord,
    SEGMENT_HEADER,
};
use crate::wal::{ShardPosition, Wal, WalHealth, WalOptions, WalStatus};

/// The exclusive-ownership lock file inside a durable directory.
///
/// Checkpoint GC deletes snapshots and segments that a *concurrent*
/// `recover()` of the same directory may still be reading, so a durable
/// directory admits exactly one live [`DurableDb`] at a time. The lock
/// is an OS advisory file lock (released automatically when the owner
/// drops or its process dies), so a crash never leaves a stale lock
/// behind.
pub const LOCK_FILE: &str = "LOCK";

/// Take the directory's exclusive lock, failing fast with
/// [`WalError::Locked`] if another live `DurableDb` holds it.
fn acquire_dir_lock(dir: &Path) -> Result<File, WalError> {
    let f = std::fs::OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(dir.join(LOCK_FILE))?;
    match f.try_lock() {
        Ok(()) => Ok(f),
        Err(std::fs::TryLockError::WouldBlock) => Err(WalError::Locked {
            dir: dir.to_path_buf(),
        }),
        Err(std::fs::TryLockError::Error(e)) => Err(WalError::Io(e)),
    }
}

/// The acknowledgement of one durable mutation.
#[derive(Debug, Clone, Copy)]
pub struct Ack {
    /// The WAL shard (== core stripe) that logged the op.
    pub shard: usize,
    /// The LSN the op received on that shard.
    pub lsn: u64,
    /// Whether the op is already on disk (always `true` under
    /// per-record sync; under group commit only after the next flush).
    pub durable: bool,
}

/// What recovery found and did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Generation of the checkpoint recovery started from.
    pub generation: u64,
    /// Highest recovered LSN per shard (0 = nothing past bootstrap).
    pub shard_lsns: Vec<u64>,
    /// Log records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Replayed records the database rejected (it rejected them
    /// identically when they were first applied — rejection is
    /// deterministic, so this is not an error).
    pub rejected: u64,
    /// Torn segment tails truncated during the scan.
    pub truncated_tails: u64,
    /// Segments recovery itself moved to quarantine: the shard's live
    /// log broke (missing segment, LSN gap, mid-log corruption) at a
    /// point quarantine already explained — a scrub quarantined files
    /// and crashed before its healing checkpoint landed.
    pub quarantined: u64,
    /// Shards re-seated on a fresh empty segment after such a break.
    /// The node restarts clean but behind; replication repair (or the
    /// checkpoint `recover` cuts right after) reconciles it.
    pub rescued_shards: u64,
}

impl RecoveryReport {
    /// Sum of the per-shard recovered LSNs — a single monotone
    /// "how much log survived" figure for stats and the CLI.
    pub fn recovered_lsn(&self) -> u64 {
        self.shard_lsns.iter().sum()
    }
}

/// What one checkpoint pass did.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// The new checkpoint generation.
    pub generation: u64,
    /// Users captured in the snapshot.
    pub users: usize,
}

/// A [`ShardedMultiUserDb`] whose mutations are write-ahead logged and
/// periodically checkpointed.
#[derive(Debug)]
pub struct DurableDb {
    dir: PathBuf,
    db: Arc<ShardedMultiUserDb>,
    wal: Wal,
    manifest: Mutex<Manifest>,
    /// Serializes checkpoints (the shard loop must not interleave with
    /// another checkpoint's rotations).
    checkpoint_lock: Mutex<()>,
    /// Replicated records whose apply the database rejected. The
    /// primary rejected them identically (rejection is deterministic
    /// in the log prefix), so a nonzero count with a *diverging*
    /// digest is the observable signature of replay divergence.
    repl_apply_rejects: AtomicU64,
    /// Held for the db's lifetime; dropping it releases the directory.
    _dir_lock: File,
}

/// A consistent per-user cut: the user's profile and the last LSN of
/// their WAL shard, both read under the shard's WAL mutex (see
/// [`DurableDb::user_cut`]). The shard's records with LSN >
/// `last_lsn` are exactly the mutations the profile clone misses.
#[derive(Debug, Clone)]
pub struct UserCut {
    /// The WAL shard (== core stripe) the user folds to.
    pub shard: usize,
    /// The shard's last applied LSN at the instant of the cut.
    pub last_lsn: u64,
    /// The user's profile, `None` if the user is unknown.
    pub profile: Option<Profile>,
}

/// What [`DurableDb::apply_replicated`] did with a shipped record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplApply {
    /// The record was the shard's next LSN: logged and applied.
    Applied {
        /// Whether the record is already on disk locally.
        durable: bool,
    },
    /// The shard already has this LSN — a network duplicate, dropped.
    Duplicate,
    /// The record skips ahead of the shard's sequence; the sender must
    /// rewind its cursor to `expected` (or fall back to a snapshot).
    Gap {
        /// The LSN this shard needs next.
        expected: u64,
    },
}

impl DurableDb {
    /// Bootstrap a fresh durable directory around `db`'s current
    /// contents: write checkpoint generation 0, create the per-shard
    /// logs, then publish the manifest. Fails with
    /// [`WalError::AlreadyExists`] if `dir` already has a manifest.
    pub fn create(
        dir: &Path,
        db: Arc<ShardedMultiUserDb>,
        opts: WalOptions,
    ) -> Result<Self, WalError> {
        if dir.join(crate::manifest::MANIFEST_FILE).exists() {
            return Err(WalError::AlreadyExists {
                dir: dir.to_path_buf(),
            });
        }
        std::fs::create_dir_all(dir)?;
        let dir_lock = acquire_dir_lock(dir)?;
        let snapshot = db.snapshot();
        save_multi_user(dir.join(checkpoint_file_name(0)), &snapshot)?;
        let wal = Wal::create(dir, db.num_shards(), opts)?;
        let manifest = Manifest::bootstrap(db.num_shards());
        manifest.save(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            db,
            wal,
            manifest: Mutex::new(manifest),
            checkpoint_lock: Mutex::new(()),
            repl_apply_rejects: AtomicU64::new(0),
            _dir_lock: dir_lock,
        })
    }

    /// Recover a durable directory: load the manifest's checkpoint,
    /// replay each shard's live segments, repair torn tails, and open
    /// the log for appending where replay ended. Fails with
    /// [`WalError::Locked`] while another live `DurableDb` owns the
    /// directory — its checkpoint GC would delete the very generation
    /// this recovery is reading.
    pub fn recover(dir: &Path, opts: WalOptions) -> Result<(Self, RecoveryReport), WalError> {
        let dir_lock = acquire_dir_lock(dir)?;
        let manifest = Manifest::load(dir)?;
        let mut db = load_multi_user(manifest.checkpoint_path(dir))?;
        let num_shards = manifest.shards.len();

        let mut report = RecoveryReport {
            generation: manifest.generation,
            shard_lsns: vec![0; num_shards],
            replayed: 0,
            rejected: 0,
            truncated_tails: 0,
            quarantined: 0,
            rescued_shards: 0,
        };
        let mut positions = Vec::with_capacity(num_shards);
        for (shard, bounds) in manifest.shards.iter().enumerate() {
            let pos = replay_shard(dir, shard, *bounds, &mut db, &mut report)?;
            report.shard_lsns[shard] = pos.next_lsn - 1;
            positions.push(pos);
        }

        let wal = Wal::open(dir, opts, &positions)?;
        let db = Arc::new(ShardedMultiUserDb::from_db(db, num_shards));
        let me = Self {
            dir: dir.to_path_buf(),
            db,
            wal,
            manifest: Mutex::new(manifest),
            checkpoint_lock: Mutex::new(()),
            repl_apply_rejects: AtomicU64::new(0),
            _dir_lock: dir_lock,
        };
        if report.rescued_shards > 0 {
            // A rescue replayed records whose only disk copy is now in
            // quarantine; cut a checkpoint so the recovered state is
            // durable without them. Best-effort — if it fails (disk
            // full, say) the node still serves, just repeats the
            // rescue after another crash.
            let _ = me.checkpoint();
        }
        Ok((me, report))
    }

    /// The live serving core (shared with whoever serves queries).
    pub fn db(&self) -> &Arc<ShardedMultiUserDb> {
        &self.db
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current manifest (checkpoint generation and replay bounds).
    pub fn manifest(&self) -> Manifest {
        self.manifest.lock().clone()
    }

    /// Point-in-time WAL status.
    pub fn wal_status(&self) -> WalStatus {
        self.wal.status()
    }

    /// Total records appended since open.
    pub fn wal_appends(&self) -> u64 {
        self.wal.appends()
    }

    /// Total group-commit batches synced since open.
    pub fn group_commit_batches(&self) -> u64 {
        self.wal.batches()
    }

    /// Log one operation, then apply it. The shard's WAL mutex is held
    /// across both, so replay order equals apply order. If the database
    /// rejects the op it stays on the log — replay rejects it
    /// identically, because rejection is deterministic in the db state,
    /// which is itself determined by the log prefix.
    pub fn apply(&self, op: &WalOp) -> Result<Ack, DurableError> {
        let shard = self.db.shard_of(op.user());
        let payload = op.encode(self.db.env(), self.db.relation());
        let mut guard = self.wal.shard(shard);
        let ack = guard.append(&payload)?;
        op.apply_sharded(&self.db)?;
        Ok(Ack {
            shard,
            lsn: ack.lsn,
            durable: ack.durable,
        })
    }

    /// Durably register a user with an empty profile.
    pub fn add_user(&self, user: &str) -> Result<Ack, DurableError> {
        self.apply(&WalOp::AddUser {
            user: user.to_string(),
        })
    }

    /// Durably register a user and insert each preference of `profile`.
    /// Logged as one `AddUser` plus one `InsertPreference` per
    /// preference; a rejected preference aborts the remainder (the user
    /// stays registered with the prefix that was accepted, exactly as
    /// replay will reconstruct).
    pub fn add_user_with_profile(&self, user: &str, profile: Profile) -> Result<Ack, DurableError> {
        let mut ack = self.add_user(user)?;
        for pref in profile.preferences() {
            ack = self.insert_preference(user, pref.clone())?;
        }
        Ok(ack)
    }

    /// Durably remove a user, returning their profile.
    pub fn remove_user(&self, user: &str) -> Result<(Ack, Profile), DurableError> {
        let op = WalOp::RemoveUser {
            user: user.to_string(),
        };
        let shard = self.db.shard_of(user);
        let payload = op.encode(self.db.env(), self.db.relation());
        let mut guard = self.wal.shard(shard);
        let ack = guard.append(&payload)?;
        let profile = self.db.remove_user(user)?;
        Ok((
            Ack {
                shard,
                lsn: ack.lsn,
                durable: ack.durable,
            },
            profile,
        ))
    }

    /// Durably insert a preference.
    pub fn insert_preference(
        &self,
        user: &str,
        pref: ctxpref_profile::ContextualPreference,
    ) -> Result<Ack, DurableError> {
        self.apply(&WalOp::InsertPreference {
            user: user.to_string(),
            pref,
        })
    }

    /// Durably remove the preference at `index`, returning it.
    pub fn remove_preference(
        &self,
        user: &str,
        index: usize,
    ) -> Result<(Ack, ctxpref_profile::ContextualPreference), DurableError> {
        let op = WalOp::RemovePreference {
            user: user.to_string(),
            index,
        };
        let shard = self.db.shard_of(user);
        let payload = op.encode(self.db.env(), self.db.relation());
        let mut guard = self.wal.shard(shard);
        let ack = guard.append(&payload)?;
        let pref = self.db.remove_preference(user, index)?;
        Ok((
            Ack {
                shard,
                lsn: ack.lsn,
                durable: ack.durable,
            },
            pref,
        ))
    }

    /// Durably re-score the preference at `index`.
    pub fn update_preference_score(
        &self,
        user: &str,
        index: usize,
        score: f64,
    ) -> Result<Ack, DurableError> {
        self.apply(&WalOp::UpdateScore {
            user: user.to_string(),
            index,
            score,
        })
    }

    /// Number of WAL shards (== core stripes).
    pub fn num_shards(&self) -> usize {
        self.wal.num_shards()
    }

    /// Apply one record shipped from a replication primary. `lsn` is
    /// the LSN the primary assigned; the replica mirrors the primary's
    /// per-shard sequence exactly (both sides use the same user→shard
    /// fold), so the record is appended to this db's own WAL *at that
    /// same LSN* and all of the recovery machinery applies unchanged.
    /// A duplicate delivery is detected by the LSN cursor and dropped;
    /// a skip-ahead is reported as a gap without touching anything.
    /// A rejected op (unknown user, …) stays on the log — the primary
    /// rejected it identically, rejection being deterministic in the
    /// state, which is itself determined by the log prefix.
    pub fn apply_replicated(
        &self,
        shard: usize,
        lsn: u64,
        payload: &[u8],
    ) -> Result<ReplApply, DurableError> {
        let op =
            WalOp::decode(payload, self.db.env(), self.db.relation()).map_err(DurableError::Wal)?;
        let mut guard = self.wal.shard(shard);
        let expected = guard.next_lsn();
        if lsn < expected {
            return Ok(ReplApply::Duplicate);
        }
        if lsn > expected {
            return Ok(ReplApply::Gap { expected });
        }
        let ack = guard.append(payload).map_err(DurableError::Wal)?;
        debug_assert_eq!(ack.lsn, lsn);
        if op.apply_sharded(&self.db).is_err() {
            // The primary rejected this op identically when it logged
            // it (rejection is deterministic in the log prefix), so a
            // reject here is expected — but it must be *countable*: a
            // climbing count alongside a diverging anti-entropy digest
            // is how replay divergence becomes observable.
            self.repl_apply_rejects.fetch_add(1, Ordering::Relaxed);
        }
        Ok(ReplApply::Applied {
            durable: ack.durable,
        })
    }

    /// Replicated records whose apply the database rejected since open.
    pub fn repl_apply_rejects(&self) -> u64 {
        self.repl_apply_rejects.load(Ordering::Relaxed)
    }

    /// The WAL's health counters (rotate failures, disk-full sheds).
    pub fn wal_health(&self) -> WalHealth {
        self.wal.health()
    }

    /// A consistent per-shard cut for replica bootstrap: each stripe's
    /// users plus the last LSN that stripe had applied at the moment it
    /// was cloned. Holding a shard's WAL mutex stalls mutations to the
    /// matching stripe (the durable layer logs and applies under that
    /// mutex), so each `(stripe contents, last LSN)` pair is exact.
    pub fn snapshot_with_lsns(&self) -> (Vec<Vec<(String, Profile)>>, Vec<u64>) {
        let mut stripes = Vec::with_capacity(self.wal.num_shards());
        let mut lsns = Vec::with_capacity(self.wal.num_shards());
        for ix in 0..self.wal.num_shards() {
            let guard = self.wal.shard(ix);
            lsns.push(guard.next_lsn() - 1);
            stripes.push(self.db.stripe_users(ix));
        }
        (stripes, lsns)
    }

    /// A consistent per-user cut for live migration: the user's profile
    /// (`None` if unknown) plus the last LSN their WAL shard had
    /// applied at the instant the profile was cloned. Taken under the
    /// shard's WAL mutex — the durable layer logs and applies under
    /// that same mutex — so no mutation to the user can fall between
    /// the profile clone and the LSN read: the shard's WAL suffix
    /// strictly after `last_lsn` is exactly what the snapshot misses.
    pub fn user_cut(&self, user: &str) -> UserCut {
        let shard = self.db.shard_of(user);
        let guard = self.wal.shard(shard);
        let last_lsn = guard.next_lsn() - 1;
        let profile = self.db.profile(user).ok();
        drop(guard);
        UserCut {
            shard,
            last_lsn,
            profile,
        }
    }

    /// Read up to `max` records of `shard` with LSN ≥ `from_lsn` from
    /// the live segments, in LSN order. `Ok(None)` means the tail below
    /// `from_lsn`'s continuation has been garbage-collected into a
    /// checkpoint — the caller must fall back to snapshot catch-up.
    /// Holds the checkpoint lock so GC cannot delete segments mid-scan;
    /// a record currently being appended is seen either fully or as a
    /// torn tail that is simply not shipped yet.
    pub fn read_shard_from(
        &self,
        shard: usize,
        from_lsn: u64,
        max: usize,
    ) -> Result<Option<Vec<ScannedRecord>>, WalError> {
        let _no_gc = self.checkpoint_lock.lock();
        let first_live = self.manifest.lock().shards[shard].first_live_segment;
        let segs: Vec<u64> = list_segments(&self.dir, shard)?
            .into_iter()
            .filter(|&s| s >= first_live)
            .collect();
        let mut out: Vec<ScannedRecord> = Vec::new();
        for &seg_no in &segs {
            // Tolerate a torn tail on *any* segment here: the shard may
            // rotate between `list_segments` and this scan, and a
            // record mid-append is visible as a torn tail until its
            // write completes. Un-shipped is the correct treatment.
            let scan = scan_segment(&segment_path(&self.dir, shard, seg_no), shard, seg_no, true)?;
            for rec in scan.records {
                if rec.lsn < from_lsn {
                    continue;
                }
                if rec.lsn != from_lsn + out.len() as u64 {
                    // The continuation is missing from the live log:
                    // everything below it was checkpointed away.
                    return Ok(None);
                }
                if out.len() == max {
                    return Ok(Some(out));
                }
                out.push(rec);
            }
        }
        if out.is_empty() && from_lsn <= self.manifest.lock().shards[shard].last_lsn {
            return Ok(None);
        }
        Ok(Some(out))
    }

    /// Anti-entropy repair: replace one stripe's contents and re-seat
    /// its WAL shard so the sequence continues at `last_lsn + 1`
    /// (forward for a lagging shard, backward to discard a deposed
    /// primary's divergent suffix). The change only becomes durable at
    /// the closing checkpoint; a crash before it recovers the
    /// pre-resync state, which replication then repairs again.
    pub fn resync_shard(
        &self,
        shard: usize,
        users: Vec<(String, Profile)>,
        last_lsn: u64,
    ) -> Result<(), DurableError> {
        {
            let mut guard = self.wal.shard(shard);
            self.db.replace_stripe(shard, users)?;
            guard.rotate().map_err(DurableError::Wal)?;
            guard.set_next_lsn(last_lsn + 1);
        }
        self.checkpoint().map_err(DurableError::Wal)?;
        Ok(())
    }

    /// Bootstrap catch-up: install a full snapshot shipped by a primary
    /// (per-stripe users plus the LSN watermark each stripe was cut
    /// at), replacing everything this db held. Durable only once the
    /// closing checkpoint's manifest swap lands; a crash before that
    /// recovers the pre-install state.
    pub fn install_stripes(
        &self,
        stripes: Vec<Vec<(String, Profile)>>,
        lsns: &[u64],
    ) -> Result<(), DurableError> {
        assert_eq!(stripes.len(), self.wal.num_shards());
        assert_eq!(lsns.len(), self.wal.num_shards());
        for (ix, users) in stripes.into_iter().enumerate() {
            let mut guard = self.wal.shard(ix);
            self.db.replace_stripe(ix, users)?;
            guard.rotate().map_err(DurableError::Wal)?;
            guard.set_next_lsn(lsns[ix] + 1);
        }
        self.checkpoint().map_err(DurableError::Wal)?;
        Ok(())
    }

    /// Fsync all pending group-commit records. Returns how many became
    /// durable.
    pub fn flush(&self) -> Result<u64, WalError> {
        self.wal.flush_all()
    }

    /// Take a checkpoint: per shard — under its WAL mutex — flush,
    /// rotate, record the boundary LSN, and snapshot the matching core
    /// stripe (WAL shards and core stripes use the same user fold, so
    /// the pairing is exact). Then write the snapshot, atomically swap
    /// the manifest, and garbage-collect everything the new manifest no
    /// longer references. A crash anywhere before the swap leaves the
    /// old manifest governing recovery; the stale files it still
    /// references are untouched by construction.
    pub fn checkpoint(&self) -> Result<CheckpointReport, WalError> {
        let _one_at_a_time = self.checkpoint_lock.lock();
        let generation = self.manifest.lock().generation + 1;

        let mut snap = self.db.snapshot_begin();
        let mut shards = Vec::with_capacity(self.wal.num_shards());
        for ix in 0..self.wal.num_shards() {
            let mut guard = self.wal.shard(ix);
            guard.flush()?;
            let last_lsn = guard.next_lsn() - 1;
            let first_live_segment = guard.rotate()?;
            self.db.snapshot_stripe(ix, &mut snap);
            shards.push(ShardManifest {
                last_lsn,
                first_live_segment,
            });
        }
        let snapshot = snap.finish();
        let users = snapshot.user_count();

        let checkpoint = checkpoint_file_name(generation);
        save_multi_user(self.dir.join(&checkpoint), &snapshot)?;
        let manifest = Manifest {
            generation,
            checkpoint,
            shards,
        };
        manifest.save(&self.dir)?;
        *self.manifest.lock() = manifest.clone();

        self.collect_garbage(&manifest);
        Ok(CheckpointReport { generation, users })
    }

    /// One scrub pass: verify every **sealed** live segment's frame
    /// checksums and the current checkpoint snapshot, quarantining
    /// whatever fails and healing the directory with a fresh
    /// checkpoint afterwards. Never panics and never blocks the append
    /// path — the scan takes the checkpoint lock (stalling GC, which
    /// would otherwise delete files mid-scan) but no shard mutex, and
    /// every per-file failure is contained in the report: a transient
    /// read error skips the file, corruption quarantines it.
    ///
    /// Healing works because the live in-memory state is intact — the
    /// damage is at rest, below state that was applied long ago — so a
    /// fresh checkpoint generation makes the quarantined files
    /// unnecessary for recovery. A corrupt *checkpoint* is copied (not
    /// moved) into quarantine first: until the new generation's
    /// manifest swap lands, the old manifest must keep naming a file
    /// that exists.
    pub fn scrub(&self) -> Result<ScrubReport, WalError> {
        let mut report = ScrubReport::default();
        {
            let _no_gc = self.checkpoint_lock.lock();
            let manifest = self.manifest.lock().clone();
            let status = self.wal.status();
            for (shard, st) in status.shards.iter().enumerate() {
                let first_live = manifest.shards[shard].first_live_segment;
                let segs: Vec<u64> = match list_segments(&self.dir, shard) {
                    Ok(s) => s
                        .into_iter()
                        // Sealed only: the append target (st.seg_no) is
                        // legitimately mid-write and is recovery's job.
                        .filter(|&s| s >= first_live && s < st.seg_no)
                        .collect(),
                    Err(_) => {
                        report.read_errors += 1;
                        continue;
                    }
                };
                // LSNs are consecutive across a shard's segments, so a
                // sealed segment truncated *exactly* at a frame
                // boundary — invisible to the per-file checksum scan —
                // shows up as a gap at the next segment's first record.
                // `prev` = (seg_no, last lsn) of the last segment whose
                // scan verified; `None` whenever continuity is unknown
                // (a skipped or quarantined file).
                let mut prev: Option<(u64, u64)> = None;
                for seg_no in segs {
                    if ctxpref_faults::hit(sites::WAL_SCRUB).is_err() {
                        report.read_errors += 1;
                        prev = None;
                        continue;
                    }
                    let path = segment_path(&self.dir, shard, seg_no);
                    match scan_segment(&path, shard, seg_no, false) {
                        Ok(scan) => {
                            let (Some(first), Some(last)) = (
                                scan.records.first().map(|r| r.lsn),
                                scan.records.last().map(|r| r.lsn),
                            ) else {
                                // A sealed segment always carries at
                                // least one record (rotation happens
                                // after an append): an empty one was
                                // truncated down to its header.
                                report.quarantine_segment_into(
                                    &self.dir,
                                    shard,
                                    seg_no,
                                    "sealed segment holds no records (truncated?)".to_string(),
                                );
                                prev = None;
                                continue;
                            };
                            if let Some((prev_seg, prev_last)) = prev {
                                if first != prev_last + 1 {
                                    // The previous segment checksummed
                                    // clean but lost its tail.
                                    report.segments_verified -= 1;
                                    report.quarantine_segment_into(
                                        &self.dir,
                                        shard,
                                        prev_seg,
                                        format!(
                                            "lsn gap after segment: expected {}, next segment starts at {first}",
                                            prev_last + 1
                                        ),
                                    );
                                }
                            }
                            report.segments_verified += 1;
                            prev = Some((seg_no, last));
                        }
                        Err(WalError::Corrupt { reason, .. }) => {
                            match quarantine_segment(&self.dir, shard, seg_no, reason) {
                                Ok(q) => report.quarantined.push(q),
                                Err(_) => report.read_errors += 1,
                            }
                            prev = None;
                        }
                        // An I/O failure is not corruption: skip, count,
                        // let the next pass retry.
                        Err(_) => {
                            report.read_errors += 1;
                            prev = None;
                        }
                    }
                }
                // Best-effort tail check: the append target's first
                // record, when one is readable (the tolerant scan
                // shrugs off a frame being written this instant),
                // pins down the last sealed segment's expected end.
                if let Some((prev_seg, prev_last)) = prev {
                    let cur = segment_path(&self.dir, shard, st.seg_no);
                    if let Ok(scan) = scan_segment(&cur, shard, st.seg_no, true) {
                        if let Some(first) = scan.records.first().map(|r| r.lsn) {
                            if first != prev_last + 1 {
                                report.segments_verified -= 1;
                                report.quarantine_segment_into(
                                    &self.dir,
                                    shard,
                                    prev_seg,
                                    format!(
                                        "lsn gap after segment: expected {}, append segment starts at {first}",
                                        prev_last + 1
                                    ),
                                );
                            }
                        }
                    }
                }
            }

            if ctxpref_faults::hit(sites::CHECKPOINT_READ).is_err() {
                report.read_errors += 1;
            } else {
                let path = manifest.checkpoint_path(&self.dir);
                match load_multi_user(&path) {
                    Ok(_) => report.checkpoints_verified += 1,
                    Err(e) => {
                        // Copy the evidence out; the original stays put
                        // until the healing checkpoint's GC removes it.
                        let dest = quarantine_root(&self.dir).join(
                            path.file_name()
                                .map(|n| n.to_string_lossy().into_owned())
                                .unwrap_or_else(|| "checkpoint".to_string()),
                        );
                        let copied = std::fs::create_dir_all(quarantine_root(&self.dir))
                            .and_then(|()| std::fs::copy(&path, &dest));
                        if copied.is_ok() {
                            report.quarantined.push(QuarantinedFile {
                                shard: None,
                                original: path,
                                quarantined: dest,
                                reason: e.to_string(),
                            });
                        } else {
                            report.read_errors += 1;
                        }
                    }
                }
            }
        }
        if report.found_damage() {
            // The in-memory state is whole; a fresh generation makes
            // every quarantined file unnecessary for recovery. If this
            // fails (disk full, say) the quarantine stays authoritative
            // and recovery's rescue path covers a crash in the window.
            report.healed = self.checkpoint().is_ok();
        }
        Ok(report)
    }

    /// Delete checkpoints of older generations and segments below each
    /// shard's `first_live_segment`. Best-effort: a file that refuses
    /// to die is retried by the next checkpoint's GC.
    fn collect_garbage(&self, manifest: &Manifest) {
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let stale = name
                    .strip_prefix("checkpoint-")
                    .and_then(|r| r.strip_suffix(".db"))
                    .and_then(|g| g.parse::<u64>().ok())
                    .is_some_and(|g| g < manifest.generation);
                if stale {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        for (shard, bounds) in manifest.shards.iter().enumerate() {
            let Ok(segs) = list_segments(&self.dir, shard) else {
                continue;
            };
            for seg in segs.into_iter().filter(|&s| s < bounds.first_live_segment) {
                let _ = std::fs::remove_file(segment_path(&self.dir, shard, seg));
            }
        }
    }

    /// Testing hook: simulate a power cut by truncating every shard's
    /// segment to its fsynced prefix (what a real crash could lose).
    #[doc(hidden)]
    pub fn drop_unsynced_tails(&self) -> Result<(), WalError> {
        for ix in 0..self.wal.num_shards() {
            self.wal.shard(ix).drop_unsynced_tail()?;
        }
        Ok(())
    }
}

/// Replay one shard's live segments into `db`, repairing a torn tail
/// (or a headerless final segment) in place, and return where the WAL
/// should continue appending.
///
/// Recovery **consults quarantine**: when the shard's live log breaks
/// — a missing segment, an LSN gap, mid-log corruption — and the
/// quarantine directory holds segments for this shard, the break is
/// the known signature of a scrub that crashed before its healing
/// checkpoint landed. The broken suffix is moved to quarantine too,
/// the shard is re-seated on a fresh empty segment at the last good
/// LSN, and the rescue is reported instead of refusing to start; the
/// node comes up clean but behind, and replication repair re-fetches
/// the suffix from a healthy peer. Without quarantined files the same
/// break is unexplained corruption and still hard-errors.
fn replay_shard(
    dir: &Path,
    shard: usize,
    bounds: ShardManifest,
    db: &mut MultiUserDb,
    report: &mut RecoveryReport,
) -> Result<ShardPosition, WalError> {
    let rescue_allowed = quarantine_has_shard(dir, shard);
    let segs: Vec<u64> = list_segments(dir, shard)?
        .into_iter()
        .filter(|&s| s >= bounds.first_live_segment)
        .collect();
    if segs.is_empty() {
        if rescue_allowed {
            report.rescued_shards += 1;
            return reseat_shard(dir, shard, bounds.first_live_segment, bounds.last_lsn + 1);
        }
        return Err(WalError::Manifest {
            reason: format!(
                "shard {shard}: live segment {} named by the manifest is missing",
                bounds.first_live_segment
            ),
        });
    }

    let mut next_lsn = bounds.last_lsn + 1;
    let mut tail = ShardPosition {
        seg_no: 0,
        pos: 0,
        next_lsn,
    };
    for (i, &seg_no) in segs.iter().enumerate() {
        let is_last = i == segs.len() - 1;
        let path = segment_path(dir, shard, seg_no);
        let scan = match scan_segment(&path, shard, seg_no, is_last) {
            Ok(scan) => scan,
            Err(e @ WalError::Corrupt { .. }) if rescue_allowed => {
                return rescue_shard(dir, shard, &segs[i..], next_lsn, report, &e.to_string());
            }
            Err(e) => return Err(e),
        };
        for rec in &scan.records {
            if rec.lsn <= bounds.last_lsn {
                continue; // Covered by the checkpoint snapshot.
            }
            if rec.lsn != next_lsn {
                if rescue_allowed {
                    return rescue_shard(
                        dir,
                        shard,
                        &segs[i..],
                        next_lsn,
                        report,
                        &format!("lsn gap: expected {next_lsn}, found {}", rec.lsn),
                    );
                }
                return Err(WalError::LsnGap {
                    shard,
                    expected: next_lsn,
                    found: rec.lsn,
                });
            }
            let op = WalOp::decode(&rec.payload, db.env(), db.relation())?;
            if op.apply_multi(db).is_err() {
                // The live path rejected this op identically when it
                // was logged; rejection is deterministic in the state,
                // which is itself determined by the log prefix.
                report.rejected += 1;
            }
            report.replayed += 1;
            next_lsn = rec.lsn + 1;
        }
        if is_last {
            if scan.torn {
                report.truncated_tails += 1;
            }
            let pos = if scan.header_ok {
                if scan.torn {
                    let f = std::fs::OpenOptions::new().write(true).open(&path)?;
                    f.set_len(scan.valid_len)?;
                    f.sync_all()?;
                }
                scan.valid_len
            } else {
                // Crash between creating the segment and syncing its
                // header: rebuild it empty.
                let mut f = std::fs::OpenOptions::new()
                    .write(true)
                    .truncate(true)
                    .open(&path)?;
                std::io::Write::write_all(&mut f, &segment_header(shard, seg_no))?;
                f.sync_all()?;
                SEGMENT_HEADER as u64
            };
            tail = ShardPosition {
                seg_no,
                pos,
                next_lsn,
            };
        }
    }
    tail.next_lsn = next_lsn;
    Ok(tail)
}

/// Quarantine-rescue one shard mid-replay: move the broken suffix
/// (`remaining` segments, the offender first) into quarantine next to
/// the files the scrub already put there, then re-seat the shard on a
/// fresh segment at the last good LSN. Records replayed from the
/// offender before the break are applied in memory; `recover` cuts a
/// checkpoint right after so they stay durable.
fn rescue_shard(
    dir: &Path,
    shard: usize,
    remaining: &[u64],
    next_lsn: u64,
    report: &mut RecoveryReport,
    reason: &str,
) -> Result<ShardPosition, WalError> {
    for &seg_no in remaining {
        if quarantine_segment(dir, shard, seg_no, reason.to_string()).is_ok() {
            report.quarantined += 1;
        }
    }
    report.rescued_shards += 1;
    let seg_no = remaining.iter().copied().max().unwrap_or(0) + 1;
    reseat_shard(dir, shard, seg_no, next_lsn)
}

/// Create a fresh empty segment for `shard` so `Wal::open` has an
/// append target, and hand back the position it should open at.
fn reseat_shard(
    dir: &Path,
    shard: usize,
    seg_no: u64,
    next_lsn: u64,
) -> Result<ShardPosition, WalError> {
    std::fs::create_dir_all(shard_dir(dir, shard))?;
    let path = segment_path(dir, shard, seg_no);
    let mut f = std::fs::OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)?;
    std::io::Write::write_all(&mut f, &segment_header(shard, seg_no))?;
    f.sync_all()?;
    let d = File::open(shard_dir(dir, shard))?;
    d.sync_all()?;
    Ok(ShardPosition {
        seg_no,
        pos: SEGMENT_HEADER as u64,
        next_lsn,
    })
}
