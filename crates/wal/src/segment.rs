//! Segment files: naming, headers, and the recovery scan.
//!
//! Each WAL shard owns a directory `shard-<i>/` of segment files
//! `seg-<NNNNNN>.wal`. A segment starts with a 24-byte header
//! (`CTXWAL01` magic, shard index, segment number) followed by framed
//! records in LSN order. Appends only ever touch the last segment of a
//! shard, so any damage in an *earlier* segment is bitrot, while damage
//! at the tail of the *last* segment is the expected signature of a
//! crash mid-append.
//!
//! The torn-tail rule, applied by [`scan_segment`]:
//!
//! * a frame whose declared length runs past EOF, or whose checksum
//!   fails **with nothing but the bad bytes after it**, is a torn tail:
//!   the scan reports the valid prefix and the caller truncates;
//! * a failed checksum **with more bytes following** is mid-log
//!   corruption and surfaces as [`WalError::Corrupt`];
//! * a short or wrong header is only legal on a shard's final segment
//!   (a crash during rotation), where the caller deletes and recreates
//!   the file.

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

use crate::error::WalError;
use crate::record::{frame_checksum, parse_frame_header, FRAME_HEADER, MAX_PAYLOAD};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"CTXWAL01";

/// Bytes of the segment header: magic, `u32` shard, `u64` segment
/// number, `u32` reserved.
pub const SEGMENT_HEADER: usize = 8 + 4 + 8 + 4;

/// The directory holding one shard's segments.
pub fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

/// The file name of segment `seg_no` (zero-padded so lexicographic
/// order is numeric order).
pub fn segment_file_name(seg_no: u64) -> String {
    format!("seg-{seg_no:06}.wal")
}

/// Full path of segment `seg_no` of `shard`.
pub fn segment_path(dir: &Path, shard: usize, seg_no: u64) -> PathBuf {
    shard_dir(dir, shard).join(segment_file_name(seg_no))
}

/// Encode the header for segment `seg_no` of `shard`.
pub fn segment_header(shard: usize, seg_no: u64) -> [u8; SEGMENT_HEADER] {
    let mut h = [0u8; SEGMENT_HEADER];
    h[..8].copy_from_slice(SEGMENT_MAGIC);
    h[8..12].copy_from_slice(&(shard as u32).to_le_bytes());
    h[12..20].copy_from_slice(&seg_no.to_le_bytes());
    h
}

/// Parse the segment number out of a `seg-NNNNNN.wal` file name.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".wal")?
        .parse()
        .ok()
}

/// List a shard's segment numbers, ascending. Files that don't match
/// the segment naming scheme are ignored.
pub fn list_segments(dir: &Path, shard: usize) -> Result<Vec<u64>, WalError> {
    let sd = shard_dir(dir, shard);
    let mut segs = Vec::new();
    for entry in fs::read_dir(&sd)? {
        let entry = entry?;
        if let Some(seg_no) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            segs.push(seg_no);
        }
    }
    segs.sort_unstable();
    Ok(segs)
}

/// One decoded record from a segment scan.
#[derive(Debug)]
pub struct ScannedRecord {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The raw payload (checksum already verified).
    pub payload: Vec<u8>,
}

/// The result of scanning one segment.
#[derive(Debug)]
pub struct SegmentScan {
    /// All records with verified checksums, in file order.
    pub records: Vec<ScannedRecord>,
    /// Byte length of the valid prefix (header + intact records). When
    /// [`Self::torn`] is set the file should be truncated to this.
    pub valid_len: u64,
    /// Whether the segment ended in a torn record (crash mid-append).
    pub torn: bool,
    /// Whether the 24-byte header was present and correct. `false` is
    /// only legal on a shard's final segment.
    pub header_ok: bool,
}

/// Scan one segment, verifying frame checksums and applying the
/// torn-tail rule described in the module docs. `is_last` says whether
/// this is the shard's final (append-target) segment; tail damage in
/// any earlier segment is promoted to [`WalError::Corrupt`].
pub fn scan_segment(
    path: &Path,
    shard: usize,
    seg_no: u64,
    is_last: bool,
) -> Result<SegmentScan, WalError> {
    // Fault site `wal.read`: an injected error models a read I/O
    // failure (the sectors exist but the disk won't serve them) and
    // surfaces through the ordinary Io path, exactly like a real one.
    ctxpref_faults::hit_io(ctxpref_faults::sites::WAL_READ)?;
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;

    let corrupt = |offset: u64, reason: String| -> WalError {
        WalError::Corrupt {
            path: path.to_path_buf(),
            offset,
            reason,
        }
    };

    if bytes.len() < SEGMENT_HEADER || bytes[..SEGMENT_HEADER] != segment_header(shard, seg_no) {
        if is_last {
            // A crash between `File::create` and writing (or syncing)
            // the header. No record in this file can have been acked.
            return Ok(SegmentScan {
                records: Vec::new(),
                valid_len: 0,
                torn: true,
                header_ok: false,
            });
        }
        return Err(corrupt(
            0,
            "bad segment header on a non-final segment".to_string(),
        ));
    }

    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        // Decide torn-vs-corrupt for damage at `pos`: torn only if this
        // is the shard's last segment AND the damage reaches EOF.
        let tail = |reason: String, records: Vec<ScannedRecord>| -> Result<SegmentScan, WalError> {
            if is_last {
                Ok(SegmentScan {
                    records,
                    valid_len: pos as u64,
                    torn: true,
                    header_ok: true,
                })
            } else {
                Err(corrupt(pos as u64, reason))
            }
        };
        // Checked parse: a short read here must surface as torn-tail /
        // Corrupt through the normal damage path, never as a panic —
        // recovery runs on whatever bytes a crash left behind.
        let Some(header) = parse_frame_header(rest) else {
            return tail("partial frame header at end of file".to_string(), records);
        };
        let (len, lsn, sum) = (header.len, header.lsn, header.checksum);
        if len > MAX_PAYLOAD {
            // An absurd length field cannot tell us where the next
            // record starts, so it is indistinguishable from a torn
            // tail when nothing readable follows — and it never is
            // readable, since we can't skip past it.
            return tail(format!("record length {len} exceeds cap"), records);
        }
        let end = pos + FRAME_HEADER + len as usize;
        if end > bytes.len() {
            return tail(
                format!("record of {len} bytes runs past end of file"),
                records,
            );
        }
        let payload = &bytes[pos + FRAME_HEADER..end];
        if frame_checksum(lsn, payload) != sum {
            if end == bytes.len() {
                // Bad checksum with nothing after it: torn tail (the
                // payload bytes never finished hitting the disk).
                return tail("checksum mismatch on final record".to_string(), records);
            }
            // Bad checksum with intact data following: mid-log bitrot.
            return Err(corrupt(pos as u64, "checksum mismatch mid-log".to_string()));
        }
        records.push(ScannedRecord {
            lsn,
            payload: payload.to_vec(),
        });
        pos = end;
    }
    Ok(SegmentScan {
        records,
        valid_len: pos as u64,
        torn: false,
        header_ok: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::frame;
    use std::io::Write;

    fn write_segment(path: &Path, shard: usize, seg_no: u64, records: &[(u64, &[u8])]) {
        let mut f = fs::File::create(path).unwrap();
        f.write_all(&segment_header(shard, seg_no)).unwrap();
        for (lsn, payload) in records {
            f.write_all(&frame(*lsn, payload)).unwrap();
        }
    }

    #[test]
    fn clean_segment_scans_fully() {
        let dir = tempdir();
        let path = dir.join("seg-000001.wal");
        write_segment(&path, 3, 1, &[(1, b"add u1"), (2, b"ins u1 x")]);
        let scan = scan_segment(&path, 3, 1, true).unwrap();
        assert!(!scan.torn);
        assert!(scan.header_ok);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].lsn, 1);
        assert_eq!(scan.records[1].payload, b"ins u1 x");
        assert_eq!(scan.valid_len, fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_truncates_on_last_segment() {
        let dir = tempdir();
        let path = dir.join("seg-000001.wal");
        write_segment(&path, 0, 1, &[(1, b"add u1")]);
        let good_len = fs::metadata(&path).unwrap().len();
        // Append half a record.
        let torn = frame(2, b"ins u1 something");
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(&torn[..torn.len() / 2])
            .unwrap();
        let scan = scan_segment(&path, 0, 1, true).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, good_len);
        // The same damage on a non-final segment is corruption.
        let err = scan_segment(&path, 0, 1, false).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn truncated_mid_header_frame_is_torn_not_a_panic() {
        // A crash can stop the disk mid-way through the 20-byte frame
        // header itself. The scan must treat every truncation point
        // inside the header as a torn tail on the last segment (and as
        // Corrupt on earlier ones) — never panic on the short slice.
        for keep in 1..FRAME_HEADER {
            let dir = tempdir();
            let path = dir.join("seg-000001.wal");
            write_segment(&path, 0, 1, &[(1, b"add u1")]);
            let good_len = fs::metadata(&path).unwrap().len();
            let partial = frame(2, b"ins u1 poi");
            fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap()
                .write_all(&partial[..keep])
                .unwrap();
            let scan = scan_segment(&path, 0, 1, true).unwrap();
            assert!(scan.torn, "keep={keep}");
            assert_eq!(scan.records.len(), 1, "keep={keep}");
            assert_eq!(scan.valid_len, good_len, "keep={keep}");
            let err = scan_segment(&path, 0, 1, false).unwrap_err();
            assert!(
                matches!(err, WalError::Corrupt { .. }),
                "keep={keep}: {err}"
            );
        }
    }

    #[test]
    fn mid_log_corruption_is_an_error_even_on_last_segment() {
        let dir = tempdir();
        let path = dir.join("seg-000001.wal");
        write_segment(&path, 0, 1, &[(1, b"add u1"), (2, b"add u2")]);
        // Flip a payload byte of the FIRST record.
        let mut bytes = fs::read(&path).unwrap();
        bytes[SEGMENT_HEADER + FRAME_HEADER] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let err = scan_segment(&path, 0, 1, true).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn corrupt_final_record_is_a_torn_tail() {
        let dir = tempdir();
        let path = dir.join("seg-000001.wal");
        write_segment(&path, 0, 1, &[(1, b"add u1"), (2, b"add u2")]);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path, 0, 1, true).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn bad_header_is_legal_only_on_last_segment() {
        let dir = tempdir();
        let path = dir.join("seg-000002.wal");
        fs::write(&path, b"CTXW").unwrap();
        let scan = scan_segment(&path, 0, 2, true).unwrap();
        assert!(!scan.header_ok);
        assert_eq!(scan.valid_len, 0);
        let err = scan_segment(&path, 0, 2, false).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_file_name(7), "seg-000007.wal");
        assert_eq!(parse_segment_file_name("seg-000007.wal"), Some(7));
        assert_eq!(parse_segment_file_name("seg-1000007.wal"), Some(1_000_007));
        assert_eq!(parse_segment_file_name("MANIFEST"), None);
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-wal-seg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }
}
