//! Background scrub: proactive verification of at-rest durability
//! files, with quarantine instead of guessing.
//!
//! Recovery only discovers bitrot the moment replay trips over it —
//! possibly months after the damage landed, when the healthy replicas
//! that could have repaired it are gone. The scrubber walks **sealed**
//! WAL segments (never the append target, so it never contends with
//! the append path) and the current checkpoint snapshot, re-verifying
//! the same FNV-1a frame checksums recovery would check. A file that
//! fails verification is moved — not deleted — into `quarantine/`,
//! preserving the evidence, and the damage is reported as a typed
//! [`ScrubReport`]. A transient read error is *not* corruption: the
//! file is skipped, counted, and retried on the next pass.
//!
//! Layout mirrors the live directory so a quarantined file's origin is
//! obvious:
//!
//! ```text
//! quarantine/shard-<i>/seg-NNNNNN.wal   — a corrupt sealed segment
//! quarantine/checkpoint-<gen>.db        — a corrupt snapshot
//! ```
//!
//! Recovery consults this directory: a missing or gapped live segment
//! whose shard has quarantined files is the signature of a scrub (or a
//! crash mid-heal), and the node restarts clean-but-behind instead of
//! refusing to start — replication then re-fetches the lost suffix
//! from a healthy peer.

use std::path::{Path, PathBuf};

use crate::error::WalError;
use crate::segment::shard_dir;

/// Directory (inside the durable dir) holding files the scrubber
/// pulled out of service.
pub const QUARANTINE_DIR: &str = "quarantine";

/// The quarantine root of a durable directory.
pub fn quarantine_root(dir: &Path) -> PathBuf {
    dir.join(QUARANTINE_DIR)
}

/// The quarantine directory for one shard's segments.
pub fn quarantine_shard_dir(dir: &Path, shard: usize) -> PathBuf {
    quarantine_root(dir).join(format!("shard-{shard}"))
}

/// One file the scrubber (or quarantine-aware recovery) pulled out of
/// service.
#[derive(Debug, Clone)]
pub struct QuarantinedFile {
    /// The WAL shard the file belonged to; `None` for a checkpoint
    /// snapshot.
    pub shard: Option<usize>,
    /// Where the file lived.
    pub original: PathBuf,
    /// Where it was moved to.
    pub quarantined: PathBuf,
    /// Why it failed verification.
    pub reason: String,
}

/// What one scrub pass found and did. Typed, never a panic: every
/// per-file failure is contained in a counter or a quarantine entry.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Sealed segments whose every frame checksum verified.
    pub segments_verified: u64,
    /// Checkpoint snapshots that verified (0 or 1 per pass).
    pub checkpoints_verified: u64,
    /// Files skipped on a transient read error — not corruption, not
    /// quarantined; the next pass retries them.
    pub read_errors: u64,
    /// Files that failed verification and were moved to quarantine.
    pub quarantined: Vec<QuarantinedFile>,
    /// Whether a fresh checkpoint was cut to heal the directory after
    /// quarantining (the live in-memory state is intact, so a new
    /// generation makes the quarantined files unnecessary for
    /// recovery).
    pub healed: bool,
}

impl ScrubReport {
    /// Whether the pass found any damage.
    pub fn found_damage(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Quarantine segment `seg_no` of `shard` and record the outcome:
    /// a successful move becomes a quarantine entry, a failed one a
    /// read error (the next pass retries).
    pub(crate) fn quarantine_segment_into(
        &mut self,
        dir: &Path,
        shard: usize,
        seg_no: u64,
        reason: String,
    ) {
        match quarantine_segment(dir, shard, seg_no, reason) {
            Ok(q) => self.quarantined.push(q),
            Err(_) => self.read_errors += 1,
        }
    }
}

/// Move `src` into `dest_dir`, creating it as needed and never
/// overwriting an earlier quarantined file of the same name (a `.N`
/// suffix disambiguates repeat offenders).
pub(crate) fn quarantine_file(src: &Path, dest_dir: &Path) -> Result<PathBuf, WalError> {
    std::fs::create_dir_all(dest_dir)?;
    let name = src
        .file_name()
        .ok_or_else(|| WalError::Io(std::io::Error::other("quarantine source has no file name")))?
        .to_string_lossy()
        .into_owned();
    let mut dest = dest_dir.join(&name);
    let mut n = 1;
    while dest.exists() {
        dest = dest_dir.join(format!("{name}.{n}"));
        n += 1;
    }
    std::fs::rename(src, &dest)?;
    Ok(dest)
}

/// Whether `shard` has quarantined segments — the signal recovery uses
/// to tell "scrubbed damage" apart from unexplained corruption.
pub(crate) fn quarantine_has_shard(dir: &Path, shard: usize) -> bool {
    std::fs::read_dir(quarantine_shard_dir(dir, shard))
        .map(|mut entries| entries.next().is_some())
        .unwrap_or(false)
}

/// Quarantine segment `seg_no` of `shard`, returning the entry for the
/// report.
pub(crate) fn quarantine_segment(
    dir: &Path,
    shard: usize,
    seg_no: u64,
    reason: String,
) -> Result<QuarantinedFile, WalError> {
    let original = crate::segment::segment_path(dir, shard, seg_no);
    let quarantined = quarantine_file(&original, &quarantine_shard_dir(dir, shard))?;
    let _ = std::fs::File::open(shard_dir(dir, shard)).and_then(|d| d.sync_all());
    Ok(QuarantinedFile {
        shard: Some(shard),
        original,
        quarantined,
        reason,
    })
}
