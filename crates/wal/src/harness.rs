//! Deterministic crash-recovery fuzzing.
//!
//! One fuzz case = one `(seed, fault site)` pair. The harness first
//! runs a seeded workload with an empty fault plan installed, which
//! both (a) checks the clean round trip — drop without flushing,
//! recover, compare — and (b) counts how often every fault site fires.
//! It then re-runs the same workload once per site with a single
//! injected crash (a panic, or a torn write) at a seeded hit index,
//! simulates the process dying (drop without flush; optionally also
//! truncate the unsynced page-cache tail, modelling a power cut),
//! recovers from disk with **no plan installed**, and asserts the
//! acked-durability invariant:
//!
//! 1. every durably-acked mutation survives recovery, and
//! 2. the recovered database equals **exactly** the per-shard prefix of
//!    attempted mutations up to the recovered LSN — the one in-flight
//!    mutation may appear iff its LSN is exactly the next one, and
//!    nothing else may surface.
//!
//! Everything is derived from the seed: the workload, the crash site
//! choice, and the torn-write fraction. A violation message carries the
//! seed and site, so any failure is replayable with
//! `run_seed(dir, &FuzzConfig::for_seed(seed))`.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use ctxpref_context::{ContextDescriptor, ContextEnvironment};
use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_faults::sites::{self, DURABILITY_SITES};
use ctxpref_faults::FaultPlan;
use ctxpref_hierarchy::Hierarchy;
use ctxpref_profile::{AttributeClause, ContextualPreference};
use ctxpref_relation::{AttrType, Relation, Schema};
use ctxpref_storage::write_multi_user;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::durable::DurableDb;
use crate::record::WalOp;
use crate::wal::{SyncPolicy, WalOptions};

/// Parameters of one fuzz case family (one seed, every site).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Drives the workload, the crash hit choice, and torn fractions.
    pub seed: u64,
    /// The durability policy under test.
    pub sync: SyncPolicy,
    /// Mutations per run.
    pub ops: usize,
    /// Take a checkpoint every this many mutations.
    pub checkpoint_every: usize,
    /// Flush the WAL every this many mutations (group commit).
    pub flush_every: usize,
    /// Small so rotations happen constantly.
    pub segment_max_bytes: u64,
    /// WAL shards == core stripes.
    pub shards: usize,
    /// After the simulated kill, also truncate unsynced bytes (a power
    /// cut rather than a process crash). Only meaningful under group
    /// commit, where unsynced acks are allowed to be lost.
    pub lose_unsynced: bool,
}

impl FuzzConfig {
    /// The canonical per-seed configuration the CI matrix uses: even
    /// seeds exercise per-record sync, odd seeds group commit, and
    /// every other group-commit seed also loses the unsynced tail.
    pub fn for_seed(seed: u64) -> Self {
        let group_commit = seed % 2 == 1;
        Self {
            seed,
            sync: if group_commit {
                SyncPolicy::GroupCommit {
                    flush_interval: Duration::from_millis(5),
                }
            } else {
                SyncPolicy::PerRecord
            },
            ops: 80,
            checkpoint_every: 12,
            flush_every: 5,
            segment_max_bytes: 512,
            shards: 4,
            lose_unsynced: group_commit && seed % 4 == 1,
        }
    }

    fn wal_options(&self) -> WalOptions {
        WalOptions {
            sync: self.sync,
            segment_max_bytes: self.segment_max_bytes,
        }
    }
}

/// What one `run_seed` call covered.
#[derive(Debug)]
pub struct FuzzReport {
    /// Fault sites that actually fired during the clean run (and were
    /// therefore crash-tested).
    pub sites_tested: Vec<String>,
    /// Registered sites the workload never reached (should be empty —
    /// the workload is sized to hit everything).
    pub sites_missed: Vec<String>,
    /// Total log records replayed across all recoveries.
    pub total_replayed: u64,
}

/// The tiny fixed universe every fuzz run lives in. Small on purpose:
/// state comparisons serialize the whole database per run. Public so
/// the replication chaos suite runs its clusters in the same universe.
pub fn tiny_env() -> ContextEnvironment {
    ContextEnvironment::new(vec![
        Hierarchy::flat("mood", &["low", "high"]).expect("static hierarchy")
    ])
    .expect("static environment")
}

/// The two-tuple relation paired with [`tiny_env`].
pub fn tiny_relation() -> Relation {
    let schema = Schema::new(&[("name", AttrType::Str)]).expect("static schema");
    let mut rel = Relation::new("items", schema);
    rel.insert(vec!["alpha".into()]).expect("static tuple");
    rel.insert(vec!["beta".into()]).expect("static tuple");
    rel
}

/// Generates only-valid operations: clause values are globally unique
/// (so no preference ever conflicts), indices always in range, users
/// always known. That keeps the acked model exact — every logged op
/// applies cleanly both live and on replay. Shared with the
/// replication chaos suite, whose invariants need the same property.
pub struct Workload {
    rng: StdRng,
    rel: Relation,
    alive: Vec<(String, usize)>, // (user, preference count)
    next_user: u64,
    next_value: u64,
}

impl Workload {
    /// A seeded workload; equal seeds generate equal op sequences.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_f00d),
            rel: tiny_relation(),
            alive: Vec::new(),
            next_user: 0,
            next_value: 0,
        }
    }

    fn fresh_pref(&mut self) -> ContextualPreference {
        let attr = self.rel.schema().require_attr("name").expect("attr exists");
        let value = format!("v{}", self.next_value);
        self.next_value += 1;
        let score = self.rng.random_range(0..=1000) as f64 / 1000.0;
        ContextualPreference::new(
            ContextDescriptor::empty(),
            AttributeClause::eq(attr, value.into()),
            score,
        )
        .expect("score is in range")
    }

    /// The next operation; always valid against the state produced by
    /// applying every previous op in order.
    pub fn next_op(&mut self) -> WalOp {
        let roll = self.rng.random_range(0..100u32);
        let with_prefs: Vec<usize> = (0..self.alive.len())
            .filter(|&i| self.alive[i].1 > 0)
            .collect();
        if self.alive.is_empty() || roll < 10 {
            let user = format!("u{}", self.next_user);
            self.next_user += 1;
            self.alive.push((user.clone(), 0));
            WalOp::AddUser { user }
        } else if roll < 70 || with_prefs.is_empty() {
            let i = self.rng.random_range(0..self.alive.len());
            self.alive[i].1 += 1;
            let user = self.alive[i].0.clone();
            let pref = self.fresh_pref();
            WalOp::InsertPreference { user, pref }
        } else if roll < 82 {
            let i = with_prefs[self.rng.random_range(0..with_prefs.len())];
            let index = self.rng.random_range(0..self.alive[i].1);
            let score = self.rng.random_range(0..=1000) as f64 / 1000.0;
            WalOp::UpdateScore {
                user: self.alive[i].0.clone(),
                index,
                score,
            }
        } else if roll < 94 {
            let i = with_prefs[self.rng.random_range(0..with_prefs.len())];
            let index = self.rng.random_range(0..self.alive[i].1);
            self.alive[i].1 -= 1;
            WalOp::RemovePreference {
                user: self.alive[i].0.clone(),
                index,
            }
        } else {
            let i = self.rng.random_range(0..self.alive.len());
            let (user, _) = self.alive.swap_remove(i);
            WalOp::RemoveUser { user }
        }
    }
}

/// Where a run stopped and what it acknowledged.
struct RunOutcome {
    /// Per shard, the attempted ops in LSN order: `ops[s][i]` carries
    /// LSN `i + 1`. The crashed in-flight op (if any) is the last entry
    /// of its shard — recovery may or may not have persisted it.
    ops_by_shard: Vec<Vec<WalOp>>,
    /// Per shard, the highest LSN that was durably acknowledged.
    durable_lsn: Vec<u64>,
    /// Whether an injected fault ended the run early.
    crashed: bool,
    /// Site hit counts observed while the plan was installed.
    hits: HashMap<String, u64>,
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// Silence the default "thread panicked" stderr spew while injected
/// panics fly; restores the previous hook on drop.
struct QuietPanics {
    prev: Option<PanicHook>,
}

impl QuietPanics {
    fn new() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        Self { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// Run the seeded workload against a fresh durable directory, with
/// `plan` (possibly rule-free, for calibration) installed between
/// bootstrap and the simulated kill. Returns what was acked; the
/// directory is left exactly as the "crash" left it.
fn run_workload(dir: &Path, cfg: &FuzzConfig, plan: &Arc<FaultPlan>) -> Result<RunOutcome, String> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;

    let db = MultiUserDb::new(tiny_env(), tiny_relation(), 2);
    let db = Arc::new(ShardedMultiUserDb::from_db(db, cfg.shards));
    // Bootstrap before the plan goes in: creation legitimately passes
    // through the storage and manifest fault sites, and a crash there
    // just means "the db never existed".
    let durable =
        DurableDb::create(dir, db, cfg.wal_options()).map_err(|e| format!("bootstrap: {e}"))?;

    let mut workload = Workload::new(cfg.seed);
    let mut outcome = RunOutcome {
        ops_by_shard: vec![Vec::new(); cfg.shards],
        durable_lsn: vec![0; cfg.shards],
        crashed: false,
        hits: HashMap::new(),
    };

    let _quiet = QuietPanics::new();
    let guard = ctxpref_faults::install(Arc::clone(plan));
    'workload: for i in 0..cfg.ops {
        let op = workload.next_op();
        let shard = durable.db().shard_of(op.user());
        match catch_unwind(AssertUnwindSafe(|| durable.apply(&op))) {
            Ok(Ok(ack)) => {
                outcome.ops_by_shard[shard].push(op);
                debug_assert_eq!(ack.lsn as usize, outcome.ops_by_shard[shard].len());
                if ack.durable {
                    outcome.durable_lsn[shard] = ack.lsn;
                }
            }
            Ok(Err(_)) | Err(_) => {
                // Injected error or panic mid-append: the op is in
                // flight — it holds the shard's next LSN iff its bytes
                // made it down intact, which only recovery can tell.
                outcome.ops_by_shard[shard].push(op);
                outcome.crashed = true;
                break 'workload;
            }
        }
        let flush_due =
            cfg.flush_every > 0 && (i + 1) % cfg.flush_every == 0 && !cfg.sync.is_per_record();
        let checkpoint_due = cfg.checkpoint_every > 0 && (i + 1) % cfg.checkpoint_every == 0;
        for step in 0..2 {
            let result = match step {
                0 if flush_due => catch_unwind(AssertUnwindSafe(|| durable.flush().map(|_| ()))),
                1 if checkpoint_due => {
                    catch_unwind(AssertUnwindSafe(|| durable.checkpoint().map(|_| ())))
                }
                _ => continue,
            };
            match result {
                Ok(Ok(())) => {
                    // Everything appended so far is now fsynced (a
                    // checkpoint flushes every shard before rotating).
                    for s in 0..cfg.shards {
                        outcome.durable_lsn[s] = outcome.ops_by_shard[s].len() as u64;
                    }
                }
                Ok(Err(_)) | Err(_) => {
                    outcome.crashed = true;
                    break 'workload;
                }
            }
        }
    }
    outcome.hits = plan.hit_counts();
    drop(guard);

    if cfg.lose_unsynced {
        // A power cut also takes the page cache with it.
        durable
            .drop_unsynced_tails()
            .map_err(|e| format!("drop unsynced tails: {e}"))?;
    }
    drop(durable); // The kill: no flush, no checkpoint, no goodbye.
    Ok(outcome)
}

/// Recover the directory (no plan installed) and check the acked
/// durability invariant against `outcome`. Returns records replayed.
fn check_recovery(dir: &Path, cfg: &FuzzConfig, outcome: &RunOutcome) -> Result<u64, String> {
    let ctx = |what: &str| format!("seed={} policy={:?} {what}", cfg.seed, cfg.sync);
    let (recovered, report) =
        DurableDb::recover(dir, cfg.wal_options()).map_err(|e| ctx(&format!("recovery: {e}")))?;

    let mut model = MultiUserDb::new(tiny_env(), tiny_relation(), 2);
    for shard in 0..cfg.shards {
        let lsn = report.shard_lsns[shard];
        let attempted = outcome.ops_by_shard[shard].len() as u64;
        if outcome.durable_lsn[shard] > lsn {
            return Err(ctx(&format!(
                "LOST ACKED WRITE on shard {shard}: durably acked lsn \
                 {} but recovered only {lsn}",
                outcome.durable_lsn[shard]
            )));
        }
        if lsn > attempted {
            return Err(ctx(&format!(
                "PHANTOM WRITE on shard {shard}: recovered lsn {lsn} but only \
                 {attempted} ops were ever attempted"
            )));
        }
        for op in &outcome.ops_by_shard[shard][..lsn as usize] {
            // Only-valid workload: every recovered op must apply.
            op.apply_multi(&mut model)
                .map_err(|e| ctx(&format!("model replay rejected {op:?}: {e}")))?;
        }
    }

    let mut want = Vec::new();
    let mut got = Vec::new();
    write_multi_user(&mut want, &model).map_err(|e| ctx(&format!("serialize model: {e}")))?;
    write_multi_user(&mut got, &recovered.db().snapshot())
        .map_err(|e| ctx(&format!("serialize recovered: {e}")))?;
    if want != got {
        return Err(ctx(&format!(
            "STATE DIVERGENCE: recovered db is not the acked prefix \
             (model {} bytes, recovered {} bytes; recovered_lsn={})",
            want.len(),
            got.len(),
            report.recovered_lsn()
        )));
    }

    // The recovered instance must be live: it accepts new mutations.
    recovered
        .add_user("post-recovery-probe")
        .map_err(|e| ctx(&format!("recovered db refused a new write: {e}")))?;
    Ok(report.replayed)
}

/// The crash plan for one site: a panic at the `k`-th hit, except at
/// write sites whose even hits are truncation decisions — there a torn
/// write (with a seeded keep-fraction) is injected instead, exercising
/// the torn-tail recovery path.
fn crash_plan(cfg: &FuzzConfig, site: &str, k: u64, frac: f64) -> Arc<FaultPlan> {
    let b = FaultPlan::builder(cfg.seed);
    let torn_site = site == sites::WAL_APPEND_WRITE && k.is_multiple_of(2);
    if torn_site || site == sites::STORAGE_SAVE_WRITE {
        // `storage.save.write` and the even hits of `wal.append.write`
        // are `truncated_len` decisions: only Truncate rules bite there.
        b.truncate_at(site, &[k], frac).build()
    } else {
        b.panic_at(site, &[k]).build()
    }
}

/// Run the full fuzz family for one seed: a clean calibration run plus
/// one crash run per registered durability site. Returns `Err` with a
/// reproducing description on the first invariant violation.
pub fn run_seed(dir: &Path, cfg: &FuzzConfig) -> Result<FuzzReport, String> {
    // Calibration: empty plan, so every `hit` is counted but none fire.
    let counting = FaultPlan::builder(cfg.seed).build();
    let clean_dir = dir.join("clean");
    let outcome = run_workload(&clean_dir, cfg, &counting)?;
    if outcome.crashed {
        return Err(format!(
            "seed={}: clean run crashed without a fault plan",
            cfg.seed
        ));
    }
    let mut total_replayed =
        check_recovery(&clean_dir, cfg, &outcome).map_err(|e| format!("{e} [clean run]"))?;

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x000c_4a54_c4a5);
    let mut report = FuzzReport {
        sites_tested: Vec::new(),
        sites_missed: Vec::new(),
        total_replayed: 0,
    };
    for &site in DURABILITY_SITES {
        let hits = outcome.hits.get(site).copied().unwrap_or(0);
        if hits == 0 {
            report.sites_missed.push(site.to_string());
            continue;
        }
        let k = 1 + rng.next_u64() % hits;
        let frac = rng.random_range(0..=9) as f64 / 10.0;
        let plan = crash_plan(cfg, site, k, frac);
        let run_dir = dir.join(site.replace('.', "-"));
        let crash_outcome = run_workload(&run_dir, cfg, &plan)
            .map_err(|e| format!("seed={} site={site} hit={k}: {e}", cfg.seed))?;
        // Truncation with frac near 1.0 keeps the whole record — the
        // run may legitimately complete without crashing; the recovery
        // check below still applies either way.
        total_replayed += check_recovery(&run_dir, cfg, &crash_outcome)
            .map_err(|e| format!("{e} [site={site} hit={k} frac={frac}]"))?;
        report.sites_tested.push(site.to_string());
        let _ = std::fs::remove_dir_all(&run_dir);
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
    report.total_replayed = total_replayed;
    Ok(report)
}
