//! Record framing and operation payload encoding.
//!
//! Every mutating operation is logged as one framed record:
//!
//! ```text
//! [u32 payload_len | u64 lsn | u64 checksum | payload…]      (little endian)
//! ```
//!
//! The checksum is FNV-1a 64 over `payload_len ‖ lsn ‖ payload`, so a
//! bit flip anywhere in the frame — including the length field — fails
//! verification. Payloads are single text lines in the `ctxpref v1`
//! token dialect (escaped names, structural preference clauses), so a
//! log is greppable and the encoding reuses the storage crate's
//! round-trip-tested serializers.

use ctxpref_context::ContextEnvironment;
use ctxpref_core::{CoreError, MultiUserDb, ShardedMultiUserDb};
use ctxpref_profile::ContextualPreference;
use ctxpref_relation::Relation;
use ctxpref_storage::{escape, parse_pref_tokens, pref_tokens, unescape};

use crate::error::WalError;

/// Bytes of the per-record frame header: `u32` payload length, `u64`
/// LSN, `u64` checksum.
pub const FRAME_HEADER: usize = 4 + 8 + 8;

/// Sanity cap on a single record payload. A length field above this is
/// treated as frame damage, never as a real record.
pub const MAX_PAYLOAD: u32 = 1 << 24;

fn fnv_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The frame checksum: FNV-1a 64 over length, LSN, and payload.
pub fn frame_checksum(lsn: u64, payload: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv_update(h, &(payload.len() as u32).to_le_bytes());
    h = fnv_update(h, &lsn.to_le_bytes());
    fnv_update(h, payload)
}

/// A parsed frame header: declared payload length, LSN, checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Declared payload length (unvalidated — may exceed the cap).
    pub len: u32,
    /// The record's log sequence number.
    pub lsn: u64,
    /// The stored FNV-1a checksum to verify against.
    pub checksum: u64,
}

/// Parse a frame header from the start of `buf` without panicking:
/// `None` means fewer than [`FRAME_HEADER`] bytes were available (a
/// truncated header, the signature of a torn tail).
pub fn parse_frame_header(buf: &[u8]) -> Option<FrameHeader> {
    let len = u32::from_le_bytes(buf.get(..4)?.try_into().ok()?);
    let lsn = u64::from_le_bytes(buf.get(4..12)?.try_into().ok()?);
    let checksum = u64::from_le_bytes(buf.get(12..20)?.try_into().ok()?);
    Some(FrameHeader { len, lsn, checksum })
}

/// Frame `payload` as the record carrying `lsn`.
pub fn frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&frame_checksum(lsn, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One mutating operation of the multi-user database, as logged.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Register `user` with an empty profile.
    AddUser {
        /// The user name.
        user: String,
    },
    /// Remove `user` and their profile.
    RemoveUser {
        /// The user name.
        user: String,
    },
    /// Insert a preference into `user`'s profile.
    InsertPreference {
        /// The user name.
        user: String,
        /// The preference to insert.
        pref: ContextualPreference,
    },
    /// Remove `user`'s preference at `index`.
    RemovePreference {
        /// The user name.
        user: String,
        /// Position in the profile's preference list.
        index: usize,
    },
    /// Re-score `user`'s preference at `index`.
    UpdateScore {
        /// The user name.
        user: String,
        /// Position in the profile's preference list.
        index: usize,
        /// The new interest score.
        score: f64,
    },
}

impl WalOp {
    /// The user this operation targets (every logged op is per-user, so
    /// the WAL shards by it).
    pub fn user(&self) -> &str {
        match self {
            Self::AddUser { user }
            | Self::RemoveUser { user }
            | Self::InsertPreference { user, .. }
            | Self::RemovePreference { user, .. }
            | Self::UpdateScore { user, .. } => user,
        }
    }

    /// Encode as a single text line (no trailing newline). Preferences
    /// use the storage crate's `pref` token dialect, so the payload
    /// round-trips exactly like a saved profile line.
    pub fn encode(&self, env: &ContextEnvironment, rel: &Relation) -> Vec<u8> {
        match self {
            Self::AddUser { user } => format!("add {}", escape(user)),
            Self::RemoveUser { user } => format!("rm {}", escape(user)),
            Self::InsertPreference { user, pref } => {
                format!("ins {} {}", escape(user), pref_tokens(pref, env, rel))
            }
            Self::RemovePreference { user, index } => {
                format!("del {} {index}", escape(user))
            }
            Self::UpdateScore { user, index, score } => {
                format!("score {} {index} {score:?}", escape(user))
            }
        }
        .into_bytes()
    }

    /// Decode a payload produced by [`Self::encode`] against the
    /// environment and relation of the database being recovered.
    pub fn decode(
        payload: &[u8],
        env: &ContextEnvironment,
        rel: &Relation,
    ) -> Result<Self, WalError> {
        let bad = |reason: String| WalError::Payload { reason };
        let text =
            std::str::from_utf8(payload).map_err(|_| bad("payload is not utf-8".to_string()))?;
        let toks: Vec<&str> = text.split_whitespace().collect();
        let user = |tok: &str| -> Result<String, WalError> {
            unescape(tok).ok_or_else(|| bad(format!("bad escape in user {tok:?}")))
        };
        match toks.split_first() {
            Some((&"add", [u])) => Ok(Self::AddUser { user: user(u)? }),
            Some((&"rm", [u])) => Ok(Self::RemoveUser { user: user(u)? }),
            Some((&"ins", [u, rest @ ..])) if !rest.is_empty() => {
                let pref = parse_pref_tokens(rest, env, rel)
                    .map_err(|e| bad(format!("bad pref payload: {e}")))?;
                Ok(Self::InsertPreference {
                    user: user(u)?,
                    pref,
                })
            }
            Some((&"del", [u, idx])) => Ok(Self::RemovePreference {
                user: user(u)?,
                index: idx.parse().map_err(|_| bad(format!("bad index {idx:?}")))?,
            }),
            Some((&"score", [u, idx, s])) => Ok(Self::UpdateScore {
                user: user(u)?,
                index: idx.parse().map_err(|_| bad(format!("bad index {idx:?}")))?,
                score: s.parse().map_err(|_| bad(format!("bad score {s:?}")))?,
            }),
            _ => Err(bad(format!("unrecognized op line {text:?}"))),
        }
    }

    /// Apply to the sharded serving core (the live mutation path).
    pub fn apply_sharded(&self, db: &ShardedMultiUserDb) -> Result<(), CoreError> {
        match self {
            Self::AddUser { user } => db.add_user(user),
            Self::RemoveUser { user } => db.remove_user(user).map(|_| ()),
            Self::InsertPreference { user, pref } => db.insert_preference(user, pref.clone()),
            Self::RemovePreference { user, index } => {
                db.remove_preference(user, *index).map(|_| ())
            }
            Self::UpdateScore { user, index, score } => {
                db.update_preference_score(user, *index, *score)
            }
        }
    }

    /// Apply to a plain multi-user database (the recovery replay path).
    /// Semantically identical to [`Self::apply_sharded`]: both delegate
    /// to the shared `UserSlot` implementation, so a rejected live op
    /// is rejected identically on replay.
    pub fn apply_multi(&self, db: &mut MultiUserDb) -> Result<(), CoreError> {
        match self {
            Self::AddUser { user } => db.add_user(user),
            Self::RemoveUser { user } => db.remove_user(user).map(|_| ()),
            Self::InsertPreference { user, pref } => db.insert_preference(user, pref.clone()),
            Self::RemovePreference { user, index } => {
                db.remove_preference(user, *index).map(|_| ())
            }
            Self::UpdateScore { user, index, score } => {
                db.update_preference_score(user, *index, *score)
            }
        }
    }
}
