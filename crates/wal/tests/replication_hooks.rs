//! Tests for the durable layer's replication hooks and the
//! exclusive-directory lock that keeps checkpoint GC from racing a
//! concurrent recovery.

use std::path::PathBuf;
use std::sync::Arc;

use ctxpref_core::ShardedMultiUserDb;
use ctxpref_wal::{tiny_env, tiny_relation, DurableDb, ReplApply, WalError, WalOp, WalOptions};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ctxpref-wal-repl-hooks-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fresh_db(shards: usize) -> Arc<ShardedMultiUserDb> {
    Arc::new(ShardedMultiUserDb::new(
        tiny_env(),
        tiny_relation(),
        2,
        shards,
    ))
}

fn create(dir: &std::path::Path, shards: usize) -> DurableDb {
    DurableDb::create(dir, fresh_db(shards), WalOptions::default()).unwrap()
}

#[test]
fn directory_lock_refuses_a_second_owner() {
    let dir = tempdir("lock");
    let primary = create(&dir, 2);
    primary.add_user("alice").unwrap();

    // While `primary` is alive (and may checkpoint-GC at any moment),
    // a concurrent recover of the same directory must fail fast with a
    // clear error, not read files being deleted out from under it.
    let err = DurableDb::recover(&dir, WalOptions::default()).unwrap_err();
    assert!(matches!(err, WalError::Locked { .. }), "{err}");

    // A concurrent checkpoint on the owner is unaffected.
    primary.checkpoint().unwrap();

    // Dropping the owner releases the lock; recovery then succeeds.
    drop(primary);
    let (recovered, _) = DurableDb::recover(&dir, WalOptions::default()).unwrap();
    assert_eq!(recovered.db().user_count(), 1);
}

#[test]
fn create_refuses_a_locked_fresh_directory() {
    let dir = tempdir("lock-create");
    let a = create(&dir.join("node"), 2);
    let err = DurableDb::create(&dir.join("node"), fresh_db(2), WalOptions::default()).unwrap_err();
    // The manifest already exists, so AlreadyExists fires first — the
    // lock protects the recover path; create is guarded by both.
    assert!(
        matches!(
            err,
            WalError::AlreadyExists { .. } | WalError::Locked { .. }
        ),
        "{err}"
    );
    drop(a);
}

#[test]
fn apply_replicated_applies_duplicates_and_gaps() {
    let dir = tempdir("apply");
    let primary = create(&dir.join("p"), 2);
    let replica = create(&dir.join("r"), 2);

    let op = WalOp::AddUser {
        user: "alice".to_string(),
    };
    let shard = primary.db().shard_of("alice");
    let ack = primary.apply(&op).unwrap();
    let payload = op.encode(primary.db().env(), primary.db().relation());

    // First delivery applies.
    let r = replica.apply_replicated(shard, ack.lsn, &payload).unwrap();
    assert!(matches!(r, ReplApply::Applied { .. }), "{r:?}");
    assert_eq!(replica.db().user_count(), 1);

    // A duplicated delivery is dropped by the LSN cursor.
    let r = replica.apply_replicated(shard, ack.lsn, &payload).unwrap();
    assert_eq!(r, ReplApply::Duplicate);
    assert_eq!(replica.db().user_count(), 1);

    // Skipping ahead reports the LSN the shard actually needs.
    let r = replica
        .apply_replicated(shard, ack.lsn + 5, &payload)
        .unwrap();
    assert_eq!(
        r,
        ReplApply::Gap {
            expected: ack.lsn + 1
        }
    );
}

#[test]
fn read_shard_from_ships_records_in_lsn_order() {
    let dir = tempdir("read");
    let primary = create(&dir, 1);
    for i in 0..6 {
        primary.add_user(&format!("u{i}")).unwrap();
    }
    let recs = primary.read_shard_from(0, 1, 100).unwrap().unwrap();
    assert_eq!(recs.len(), 6);
    assert_eq!(
        recs.iter().map(|r| r.lsn).collect::<Vec<_>>(),
        (1..=6).collect::<Vec<_>>()
    );

    // Resuming mid-stream and bounding the batch both work.
    let recs = primary.read_shard_from(0, 4, 2).unwrap().unwrap();
    assert_eq!(recs.iter().map(|r| r.lsn).collect::<Vec<_>>(), vec![4, 5]);

    // Fully caught up: an empty batch, not a gap.
    let recs = primary.read_shard_from(0, 7, 100).unwrap().unwrap();
    assert!(recs.is_empty());
}

#[test]
fn read_shard_from_reports_gc_of_the_requested_tail() {
    let dir = tempdir("read-gc");
    let primary = create(&dir, 1);
    for i in 0..4 {
        primary.add_user(&format!("u{i}")).unwrap();
    }
    // The checkpoint rotates and GCs segments holding LSNs 1..=4.
    primary.checkpoint().unwrap();
    primary.add_user("u4").unwrap();

    // A cursor below the checkpoint can no longer be served from the
    // live log: the caller must fall back to a snapshot.
    assert!(primary.read_shard_from(0, 2, 100).unwrap().is_none());
    // A cursor at the live tail still works.
    let recs = primary.read_shard_from(0, 5, 100).unwrap().unwrap();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].lsn, 5);
}

#[test]
fn snapshot_install_round_trips_and_survives_recovery() {
    let dir = tempdir("install");
    let primary = create(&dir.join("p"), 3);
    for i in 0..10 {
        primary.add_user(&format!("u{i}")).unwrap();
    }
    let (stripes, lsns) = primary.snapshot_with_lsns();

    let replica_dir = dir.join("r");
    let replica = create(&replica_dir, 3);
    replica.add_user("stale-user").unwrap();
    replica.install_stripes(stripes, &lsns).unwrap();

    // Contents replaced, stale state gone, LSN cursors at the
    // primary's watermark.
    assert_eq!(replica.db().user_count(), 10);
    assert!(replica.db().profile("stale-user").is_err());
    for (shard, &lsn) in lsns.iter().enumerate() {
        let got = replica
            .apply_replicated(shard, lsn + 7, b"add probe")
            .unwrap();
        assert_eq!(got, ReplApply::Gap { expected: lsn + 1 });
    }

    // The install is durable: a crash (drop) and recovery keeps it.
    drop(replica);
    let (recovered, _) = DurableDb::recover(&replica_dir, WalOptions::default()).unwrap();
    assert_eq!(recovered.db().user_count(), 10);
    assert!(recovered.db().profile("u3").is_ok());
}

#[test]
fn resync_shard_discards_a_divergent_suffix() {
    let dir = tempdir("resync");
    let a = create(&dir.join("a"), 1);
    let b = create(&dir.join("b"), 1);
    for i in 0..3 {
        let op = WalOp::AddUser {
            user: format!("u{i}"),
        };
        a.apply(&op).unwrap();
        let payload = op.encode(a.db().env(), a.db().relation());
        b.apply_replicated(0, (i + 1) as u64, &payload).unwrap();
    }
    // `b` diverges: two extra users the (new) primary never saw.
    b.add_user("deposed-1").unwrap();
    b.add_user("deposed-2").unwrap();
    assert_eq!(b.db().user_count(), 5);

    // Anti-entropy re-seats shard 0 of `b` at `a`'s state + watermark.
    b.resync_shard(0, a.db().stripe_users(0), 3).unwrap();
    assert_eq!(b.db().user_count(), 3);
    assert!(b.db().profile("deposed-1").is_err());

    // The sequence moved backward: LSN 4 is accepted again, and the
    // resync survives recovery.
    let op = WalOp::AddUser {
        user: "u3".to_string(),
    };
    let payload = op.encode(a.db().env(), a.db().relation());
    assert!(matches!(
        b.apply_replicated(0, 4, &payload).unwrap(),
        ReplApply::Applied { .. }
    ));
    let b_dir = dir.join("b");
    drop(b);
    let (recovered, _) = DurableDb::recover(&b_dir, WalOptions::default()).unwrap();
    assert_eq!(recovered.db().user_count(), 4);
    assert!(recovered.db().profile("deposed-2").is_err());
}
