//! The crash-recovery fuzz matrix plus end-to-end durability tests.
//!
//! The fuzz walks every registered durability fault site (WAL append
//! write/sync, rotation, manifest swap, and the checkpoint's
//! `storage.save.*` path) for a fixed matrix of seeds: even seeds run
//! per-record fsync, odd seeds group commit, and every other
//! group-commit seed also loses the unsynced page-cache tail (a power
//! cut, not just a process kill). Any violation aborts with the
//! reproducing seed and site in the panic message.
//!
//! Override the matrix with `CTXPREF_FUZZ_SEEDS=start..end` (e.g.
//! `CTXPREF_FUZZ_SEEDS=7..8` to replay one seed).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_wal::{run_seed, DurableDb, FuzzConfig, SyncPolicy, WalOptions};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};

/// Fault plans are process-global: every test here either installs one
/// or would trip over another test's, so they all serialize.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A fresh directory under the system temp dir; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ctxpref-recovery-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study_db(users: usize) -> ShardedMultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 4);
    let mut db = MultiUserDb::new(env.clone(), rel, 8);
    for (i, demo) in all_demographics().into_iter().take(users).enumerate() {
        let profile = default_profile(&env, db.relation(), demo);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    ShardedMultiUserDb::from_db(db, 4)
}

#[test]
fn durable_round_trip_with_checkpoint_and_replay() {
    let _serial = fault_lock();
    let tmp = TempDir::new("roundtrip");
    let db = std::sync::Arc::new(study_db(3));
    let durable = DurableDb::create(&tmp.0, db, WalOptions::default()).unwrap();

    // Mutations before the checkpoint land in the snapshot…
    durable.add_user("walter").unwrap();
    let pref = {
        let db = durable.db();
        let attr = db.relation().schema().require_attr("name").unwrap();
        ctxpref_profile::ContextualPreference::new(
            ctxpref_context::ContextDescriptor::empty(),
            ctxpref_profile::AttributeClause::eq(attr, "poi0".into()),
            0.9,
        )
        .unwrap()
    };
    durable.insert_preference("walter", pref.clone()).unwrap();
    let ckpt = durable.checkpoint().unwrap();
    assert_eq!(ckpt.generation, 1);

    // …and mutations after it must come back via replay.
    durable.add_user("wendy").unwrap();
    durable.insert_preference("wendy", pref).unwrap();
    durable.update_preference_score("walter", 0, 0.4).unwrap();
    let status = durable.wal_status();
    assert!(status.appends >= 5, "appends: {}", status.appends);
    drop(durable); // Crash: no flush, no checkpoint.

    let (recovered, report) = DurableDb::recover(&tmp.0, WalOptions::default()).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.replayed, 3);
    assert_eq!(report.rejected, 0);
    let db = recovered.db();
    assert!(db.users_sorted().contains(&"wendy".to_string()));
    let snap = db.snapshot();
    assert_eq!(
        snap.profile("walter").unwrap().preferences()[0].score(),
        0.4
    );
}

#[test]
fn checkpoint_garbage_collects_old_generations() {
    let _serial = fault_lock();
    let tmp = TempDir::new("gc");
    let db = std::sync::Arc::new(study_db(2));
    let durable = DurableDb::create(&tmp.0, db, WalOptions::default()).unwrap();
    for i in 0..3 {
        durable.add_user(&format!("extra{i}")).unwrap();
        durable.checkpoint().unwrap();
    }
    let files: Vec<String> = std::fs::read_dir(&tmp.0)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| n.starts_with("checkpoint-"))
        .collect();
    assert_eq!(
        files,
        vec!["checkpoint-3.db".to_string()],
        "old generations not collected"
    );
    // Old segments are gone too: each shard keeps only its live tail.
    for shard in 0..durable.db().num_shards() {
        let manifest = durable.manifest();
        let segs: Vec<_> = std::fs::read_dir(tmp.0.join(format!("shard-{shard}")))
            .unwrap()
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .collect();
        for seg in &segs {
            let n: u64 = seg
                .strip_prefix("seg-")
                .unwrap()
                .strip_suffix(".wal")
                .unwrap()
                .parse()
                .unwrap();
            assert!(
                n >= manifest.shards[shard].first_live_segment,
                "stale segment {seg} on shard {shard}"
            );
        }
    }
}

#[test]
fn group_commit_recovery_after_power_cut_keeps_flushed_prefix() {
    let _serial = fault_lock();
    let tmp = TempDir::new("power-cut");
    let opts = WalOptions {
        sync: SyncPolicy::GroupCommit {
            flush_interval: Duration::from_millis(5),
        },
        ..WalOptions::default()
    };
    let db = std::sync::Arc::new(study_db(1));
    let durable = DurableDb::create(&tmp.0, db, opts).unwrap();
    durable.add_user("kept").unwrap();
    durable.flush().unwrap();
    let ack = durable.add_user("lost").unwrap();
    assert!(
        !ack.durable,
        "group-commit acks are not durable until flushed"
    );
    durable.drop_unsynced_tails().unwrap(); // The power cut.
    drop(durable);

    let (recovered, _) = DurableDb::recover(&tmp.0, opts).unwrap();
    let users = recovered.db().users_sorted();
    assert!(users.contains(&"kept".to_string()));
    assert!(
        !users.contains(&"lost".to_string()),
        "unflushed, unacked-durable write surfaced"
    );
}

/// The matrix: `CTXPREF_FUZZ_SEEDS=a..b` overrides the default 0..32.
fn seed_range() -> std::ops::Range<u64> {
    let Ok(spec) = std::env::var("CTXPREF_FUZZ_SEEDS") else {
        return 0..32;
    };
    let parse = |s: &str| s.trim().parse::<u64>().ok();
    match spec.split_once("..").map(|(a, b)| (parse(a), parse(b))) {
        Some((Some(a), Some(b))) if a < b => a..b,
        _ => panic!("CTXPREF_FUZZ_SEEDS must look like '0..32', got {spec:?}"),
    }
}

#[test]
fn crash_recovery_fuzz_matrix() {
    let _serial = fault_lock();
    let tmp = TempDir::new("fuzz");
    let mut sites_covered = std::collections::BTreeSet::new();
    let mut total_replayed = 0;
    for seed in seed_range() {
        let cfg = FuzzConfig::for_seed(seed);
        match run_seed(&tmp.0.join(format!("seed-{seed}")), &cfg) {
            Ok(report) => {
                assert!(
                    report.sites_missed.is_empty(),
                    "seed={seed}: workload never reached sites {:?} — \
                     grow the workload so every site is crash-tested",
                    report.sites_missed
                );
                sites_covered.extend(report.sites_tested);
                total_replayed += report.total_replayed;
            }
            Err(violation) => panic!(
                "DURABILITY VIOLATION (reproduce with CTXPREF_FUZZ_SEEDS={seed}..{}):\n{violation}",
                seed + 1
            ),
        }
    }
    assert_eq!(
        sites_covered.len(),
        ctxpref_faults::sites::DURABILITY_SITES.len(),
        "site coverage drifted: {sites_covered:?}"
    );
    assert!(total_replayed > 0, "the fuzz never exercised replay");
}
