//! Disk-fault chaos for the storage layer: ENOSPC windows, read I/O
//! errors, and at-rest corruption (bit flips / truncation of sealed
//! segments), with the background scrubber and quarantine-aware
//! recovery asserting the self-healing invariants:
//!
//! * no panic under any injected disk fault;
//! * a disk-full window sheds writes with a typed retryable error and
//!   writes resume on their own when the window closes;
//! * at-rest damage is quarantined (never silently replayed) and the
//!   healing checkpoint keeps every durably-acked write recoverable;
//! * recovery consults quarantine: a scrub that crashed before its
//!   heal landed still restarts clean.
//!
//! Override the 32-seed matrix with `CTXPREF_FUZZ_SEEDS=a..b`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_faults::{at_rest, sites, FaultPlan};
use ctxpref_wal::segment::SEGMENT_HEADER;
use ctxpref_wal::{DurableDb, SyncPolicy, WalError, WalOptions};
use ctxpref_workload::reference::{poi_env, poi_relation};

/// Fault plans are process-global; every test here serializes.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-disk-chaos-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn empty_db(shards: usize) -> Arc<ShardedMultiUserDb> {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 4);
    let db = MultiUserDb::new(env, rel, 8);
    Arc::new(ShardedMultiUserDb::from_db(db, shards))
}

fn small_segments(sync: SyncPolicy) -> WalOptions {
    WalOptions {
        sync,
        // Small segments so a modest workload seals several of them —
        // the scrubber only ever looks at sealed files.
        segment_max_bytes: 256,
    }
}

fn a_pref(db: &ShardedMultiUserDb) -> ctxpref_profile::ContextualPreference {
    let attr = db.relation().schema().require_attr("name").unwrap();
    ctxpref_profile::ContextualPreference::new(
        ctxpref_context::ContextDescriptor::empty(),
        ctxpref_profile::AttributeClause::eq(attr, "poi0".into()),
        0.9,
    )
    .unwrap()
}

/// Sealed segment numbers of `shard` (everything but the append
/// target).
fn sealed_segments(durable: &DurableDb, shard: usize) -> Vec<u64> {
    let status = durable.wal_status();
    let current = status.shards[shard].seg_no;
    let first_live = durable.manifest().shards[shard].first_live_segment;
    ctxpref_wal::segment::list_segments(durable.dir(), shard)
        .unwrap()
        .into_iter()
        .filter(|&s| s >= first_live && s < current)
        .collect()
}

#[test]
fn disk_full_window_sheds_typed_and_resumes() {
    let _serial = fault_lock();
    let tmp = TempDir::new("enospc");
    let durable = DurableDb::create(&tmp.0, empty_db(2), WalOptions::default()).unwrap();
    durable.add_user("before").unwrap();

    // Appends 2..=4 land inside the full-disk window.
    let plan = FaultPlan::builder(11)
        .fail_between(sites::DISK_FULL, 2, 4)
        .build();
    plan.run(|| {
        durable.add_user("first fits").unwrap();
        for i in 0..3 {
            let err = durable.add_user(&format!("shed{i}")).unwrap_err();
            match err {
                ctxpref_wal::DurableError::Wal(e) => {
                    assert!(e.is_disk_full(), "expected DiskFull, got {e}")
                }
                other => panic!("expected DiskFull, got {other}"),
            }
        }
        // Reads keep serving mid-window.
        assert!(durable.db().users_sorted().contains(&"before".to_string()));
        // The window closed: writes resume with no operator action.
        durable.add_user("after the window").unwrap();
    });

    let users = durable.db().users_sorted();
    assert!(users.contains(&"after the window".to_string()));
    assert!(
        !users.iter().any(|u| u.starts_with("shed")),
        "a shed write must not be applied: {users:?}"
    );
    assert_eq!(durable.wal_health().disk_full_sheds, 3);

    // Shed writes were never logged: recovery sees none of them.
    drop(durable);
    let (recovered, _) = DurableDb::recover(&tmp.0, WalOptions::default()).unwrap();
    assert!(
        !recovered
            .db()
            .users_sorted()
            .iter()
            .any(|u| u.starts_with("shed")),
        "a shed write surfaced from the log"
    );
}

#[test]
fn scrub_quarantines_bit_rot_and_heals() {
    let _serial = fault_lock();
    let tmp = TempDir::new("bitrot");
    let durable =
        DurableDb::create(&tmp.0, empty_db(2), small_segments(SyncPolicy::PerRecord)).unwrap();
    let pref = a_pref(durable.db());
    for i in 0..30 {
        durable.add_user(&format!("user{i}")).unwrap();
        durable
            .insert_preference(&format!("user{i}"), pref.clone())
            .unwrap();
    }
    let users_before = durable.db().users_sorted();

    // A clean pass verifies and quarantines nothing.
    let clean = durable.scrub().unwrap();
    assert!(clean.segments_verified > 0, "workload sealed no segments");
    assert_eq!(clean.checkpoints_verified, 1);
    assert!(!clean.found_damage());
    assert!(!clean.healed);

    // Rot one sealed segment at rest.
    let shard = (0..2)
        .find(|&s| !sealed_segments(&durable, s).is_empty())
        .expect("no shard has sealed segments");
    let seg_no = sealed_segments(&durable, shard)[0];
    let path = ctxpref_wal::segment::segment_path(durable.dir(), shard, seg_no);
    at_rest::flip_bit(&path, 99, SEGMENT_HEADER as u64)
        .unwrap()
        .expect("segment has no payload to damage");

    let report = durable.scrub().unwrap();
    assert_eq!(report.quarantined.len(), 1, "{report:?}");
    assert_eq!(report.quarantined[0].shard, Some(shard));
    assert!(report.healed, "healing checkpoint failed: {report:?}");
    assert!(!path.exists(), "corrupt segment left in service");
    assert!(report.quarantined[0].quarantined.exists());

    // The live state never flinched, and — because the heal cut a new
    // checkpoint — a crash right now recovers everything.
    assert_eq!(durable.db().users_sorted(), users_before);
    drop(durable);
    let (recovered, report) =
        DurableDb::recover(&tmp.0, small_segments(SyncPolicy::PerRecord)).unwrap();
    assert_eq!(recovered.db().users_sorted(), users_before);
    assert_eq!(report.rescued_shards, 0, "clean recovery needed a rescue");
}

#[test]
fn scrub_treats_read_errors_as_transient() {
    let _serial = fault_lock();
    let tmp = TempDir::new("read-err");
    let durable =
        DurableDb::create(&tmp.0, empty_db(2), small_segments(SyncPolicy::PerRecord)).unwrap();
    for i in 0..30 {
        durable.add_user(&format!("user{i}")).unwrap();
    }
    let sealed: usize = (0..2).map(|s| sealed_segments(&durable, s).len()).sum();
    assert!(sealed > 0);

    // Every scrub read fails; nothing may be quarantined for it.
    let plan = FaultPlan::builder(5)
        .fail(sites::WAL_SCRUB, 1.0)
        .fail(sites::CHECKPOINT_READ, 1.0)
        .build();
    let report = plan.run(|| durable.scrub().unwrap());
    assert_eq!(report.segments_verified, 0);
    assert_eq!(report.checkpoints_verified, 0);
    assert_eq!(report.read_errors as usize, sealed + 1);
    assert!(!report.found_damage(), "a flaky read is not corruption");

    // The next (clean) pass verifies everything.
    let report = durable.scrub().unwrap();
    assert_eq!(report.segments_verified as usize, sealed);
    assert_eq!(report.read_errors, 0);
}

#[test]
fn recovery_consults_quarantine_after_crashed_heal() {
    let _serial = fault_lock();
    let tmp = TempDir::new("rescue");
    let opts = small_segments(SyncPolicy::PerRecord);
    let durable = DurableDb::create(&tmp.0, empty_db(2), opts).unwrap();
    for i in 0..30 {
        durable.add_user(&format!("user{i}")).unwrap();
    }
    let shard = (0..2)
        .find(|&s| !sealed_segments(&durable, s).is_empty())
        .unwrap();
    let seg_no = sealed_segments(&durable, shard)[0];
    drop(durable); // Crash.

    // Simulate a scrub that quarantined a segment and died before its
    // healing checkpoint: move the file by hand, leave no new manifest.
    let src = ctxpref_wal::segment::segment_path(&tmp.0, shard, seg_no);
    let qdir = ctxpref_wal::scrub::quarantine_shard_dir(&tmp.0, shard);
    std::fs::create_dir_all(&qdir).unwrap();
    std::fs::rename(&src, qdir.join(src.file_name().unwrap())).unwrap();

    // Without quarantine this directory shape is a hard error; with it
    // the node restarts clean (but behind on that shard).
    let (recovered, report) = DurableDb::recover(&tmp.0, opts).unwrap();
    assert_eq!(report.rescued_shards, 1, "{report:?}");
    // The records of the quarantined segment (and everything after it
    // on that shard) are honestly gone — this is the single-node story;
    // the replication variant asserts a healthy peer repairs them.
    let lost = 30 - recovered.db().users_sorted().len();
    assert!(lost > 0, "quarantining a live segment must cost something");

    // The rescue checkpointed, so a second recovery is clean and
    // identical — the node does not keep re-rescuing.
    let after_rescue = recovered.db().users_sorted();
    drop(recovered);
    let (again, report2) = DurableDb::recover(&tmp.0, opts).unwrap();
    assert_eq!(report2.rescued_shards, 0, "{report2:?}");
    assert_eq!(again.db().users_sorted(), after_rescue);
}

#[test]
fn unexplained_corruption_still_refuses_to_start() {
    let _serial = fault_lock();
    let tmp = TempDir::new("no-rescue");
    let opts = small_segments(SyncPolicy::PerRecord);
    let durable = DurableDb::create(&tmp.0, empty_db(2), opts).unwrap();
    for i in 0..30 {
        durable.add_user(&format!("user{i}")).unwrap();
    }
    let shard = (0..2)
        .find(|&s| !sealed_segments(&durable, s).is_empty())
        .unwrap();
    let seg_no = sealed_segments(&durable, shard)[0];
    drop(durable);

    // Same missing-segment shape as the rescue test, but with no
    // quarantine to explain it: recovery must refuse to guess.
    std::fs::remove_file(ctxpref_wal::segment::segment_path(&tmp.0, shard, seg_no)).unwrap();
    let err = DurableDb::recover(&tmp.0, opts).unwrap_err();
    assert!(
        matches!(err, WalError::LsnGap { .. } | WalError::Manifest { .. }),
        "unexplained damage must not be rescued: {err}"
    );
}

#[test]
fn group_commit_flush_failure_then_retry_accounts_once() {
    let _serial = fault_lock();
    let tmp = TempDir::new("flush-retry");
    let opts = WalOptions {
        sync: SyncPolicy::GroupCommit {
            flush_interval: Duration::from_millis(5),
        },
        ..WalOptions::default()
    };
    let durable = DurableDb::create(&tmp.0, empty_db(1), opts).unwrap();
    for i in 0..3 {
        durable.add_user(&format!("user{i}")).unwrap();
    }
    let before = durable.wal_status();
    assert_eq!(before.shards[0].pending, 3);
    assert_eq!(before.shards[0].synced_lsn, 0);

    // The fsync fails: nothing may be marked durable.
    let plan = FaultPlan::builder(3)
        .fail_at(sites::WAL_APPEND_SYNC, &[1])
        .build();
    let err = plan.run(|| durable.flush()).unwrap_err();
    assert!(matches!(err, WalError::Io(_)), "{err}");
    let mid = durable.wal_status();
    assert_eq!(
        mid.shards[0].pending, 3,
        "failed flush must not consume pending"
    );
    assert_eq!(
        mid.shards[0].synced_lsn, 0,
        "failed flush must not advance synced_lsn"
    );
    assert_eq!(mid.batches, 0);

    // The retry syncs exactly the once-pending records: no double count.
    assert_eq!(durable.flush().unwrap(), 3);
    let after = durable.wal_status();
    assert_eq!(after.shards[0].pending, 0);
    assert_eq!(after.shards[0].synced_lsn, 3);
    assert_eq!(after.batches, 1);
    assert_eq!(
        durable.flush().unwrap(),
        0,
        "second retry re-synced records"
    );
    assert_eq!(durable.wal_status().batches, 1);
}

#[test]
fn per_record_sync_failure_never_acks_what_the_disk_refused() {
    let _serial = fault_lock();
    let tmp = TempDir::new("sync-refuse");
    let durable = DurableDb::create(&tmp.0, empty_db(1), WalOptions::default()).unwrap();
    durable.add_user("kept").unwrap();
    let appends_before = durable.wal_appends();

    let plan = FaultPlan::builder(3)
        .fail_at(sites::WAL_APPEND_SYNC, &[1])
        .build();
    plan.run(|| durable.add_user("refused")).unwrap_err();
    assert_eq!(
        durable.wal_appends(),
        appends_before,
        "a refused record must not count as appended"
    );
    assert!(!durable.db().users_sorted().contains(&"refused".to_string()));

    // The retry gets the same LSN the refused attempt would have had.
    let ack = durable.add_user("retried").unwrap();
    assert!(ack.durable);
    assert_eq!(durable.wal_status().shards[0].synced_lsn, 2);
    assert_eq!(durable.wal_appends(), appends_before + 1);
}

#[test]
fn rotate_failures_are_counted_and_surfaced() {
    let _serial = fault_lock();
    let tmp = TempDir::new("rotate-fail");
    let durable =
        DurableDb::create(&tmp.0, empty_db(1), small_segments(SyncPolicy::PerRecord)).unwrap();

    let plan = FaultPlan::builder(3)
        .fail_every(sites::WAL_ROTATE, 1)
        .build();
    plan.run(|| {
        for i in 0..20 {
            durable.add_user(&format!("user{i}")).unwrap();
        }
    });
    let status = durable.wal_status();
    assert!(
        status.rotate_failures > 0,
        "no rotation failure recorded: {status:?}"
    );
    assert_eq!(durable.wal_health().rotate_failures, status.rotate_failures);

    // With the plan gone the stuck segment rotates on the next append
    // past the cap; the failure count stays as history.
    durable.add_user("unstick").unwrap();
    assert!(durable.wal_status().rotations > 0);
}

/// The matrix: `CTXPREF_FUZZ_SEEDS=a..b` overrides the default 0..32.
fn seed_range() -> std::ops::Range<u64> {
    let Ok(spec) = std::env::var("CTXPREF_FUZZ_SEEDS") else {
        return 0..32;
    };
    let parse = |s: &str| s.trim().parse::<u64>().ok();
    match spec.split_once("..").map(|(a, b)| (parse(a), parse(b))) {
        Some((Some(a), Some(b))) if a < b => a..b,
        _ => panic!("CTXPREF_FUZZ_SEEDS must look like '0..32', got {spec:?}"),
    }
}

/// The 32-seed disk-chaos matrix. Per seed: a workload runs through an
/// ENOSPC window and scrub passes under injected read errors (no
/// panic, typed sheds only); then a seed-chosen sealed segment takes
/// at-rest damage (bit flip on even seeds, truncation on odd), the
/// scrubber quarantines and heals, the process "crashes", and recovery
/// must come back with every durably-acked write intact.
#[test]
fn disk_chaos_matrix() {
    let _serial = fault_lock();
    for seed in seed_range() {
        let result = std::panic::catch_unwind(|| run_disk_chaos_seed(seed));
        if let Err(p) = result {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".to_string());
            panic!("disk-chaos seed {seed} failed: {msg}");
        }
    }
}

fn run_disk_chaos_seed(seed: u64) {
    let tmp = TempDir::new(&format!("matrix-{seed}"));
    let sync = if seed.is_multiple_of(2) {
        SyncPolicy::PerRecord
    } else {
        SyncPolicy::GroupCommit {
            flush_interval: Duration::from_millis(5),
        }
    };
    let opts = small_segments(sync);
    let durable = DurableDb::create(&tmp.0, empty_db(4), opts).unwrap();

    // Live phase under chaos: an ENOSPC window opens partway in, scrub
    // runs concurrently with injected read errors, and nothing may
    // panic. Acked writes are tracked; shed writes must shed typed.
    let window = (5 + seed % 7, 15 + seed % 11);
    let plan = FaultPlan::builder(seed)
        .fail_between(sites::DISK_FULL, window.0, window.1)
        .fail(sites::WAL_SCRUB, 0.3)
        .fail(sites::CHECKPOINT_READ, 0.3)
        .build();
    let mut acked: Vec<String> = Vec::new();
    plan.run(|| {
        for i in 0..60 {
            let user = format!("user{i}");
            match durable.add_user(&user) {
                Ok(_) => acked.push(user),
                Err(ctxpref_wal::DurableError::Wal(e)) if e.is_disk_full() => {}
                Err(e) => panic!("seed {seed}: unexpected append error: {e}"),
            }
            if i % 20 == 10 {
                // Scrub mid-workload: read errors are transient, no
                // quarantine without real damage, appends unblocked.
                let report = durable.scrub().unwrap();
                assert!(
                    !report.found_damage(),
                    "seed {seed}: phantom quarantine: {report:?}"
                );
            }
        }
    });
    assert!(
        acked.len() < 60 && acked.len() > 30,
        "seed {seed}: window {window:?} acked {}",
        acked.len()
    );
    durable.flush().unwrap();
    // Under group commit only flushed records are durably acked — and
    // the flush above made all of them so.

    // At-rest damage on a seed-chosen sealed segment (if any shard has
    // one), then scrub: quarantine + heal.
    let mut damaged = false;
    for probe in 0..4usize {
        let shard = ((seed as usize) + probe) % 4;
        let sealed = sealed_segments(&durable, shard);
        if let Some(&seg_no) = sealed.first() {
            let path = ctxpref_wal::segment::segment_path(durable.dir(), shard, seg_no);
            let hurt = if seed.is_multiple_of(2) {
                at_rest::flip_bit(&path, seed, SEGMENT_HEADER as u64).unwrap()
            } else {
                at_rest::truncate(&path, seed, SEGMENT_HEADER as u64).unwrap()
            };
            if hurt.is_some() {
                damaged = true;
                break;
            }
        }
    }
    let report = durable.scrub().unwrap();
    if damaged {
        // Truncation can mimic a torn tail *only* on a last segment;
        // sealed segments always promote damage to quarantine.
        assert_eq!(
            report.quarantined.len(),
            1,
            "seed {seed}: damage not quarantined: {report:?}"
        );
        assert!(report.healed, "seed {seed}: heal failed: {report:?}");
    }

    // Crash + recover: no panic, and every acked write survives (the
    // healing checkpoint covers the quarantined range).
    let before = durable.db().users_sorted();
    drop(durable);
    let (recovered, rec_report) = DurableDb::recover(&tmp.0, opts).unwrap();
    assert_eq!(
        rec_report.rescued_shards, 0,
        "seed {seed}: healed directory still needed a rescue: {rec_report:?}"
    );
    let after = recovered.db().users_sorted();
    assert_eq!(after, before, "seed {seed}: recovery changed the state");
    for user in &acked {
        assert!(
            after.contains(user),
            "seed {seed}: durably-acked {user} lost after damage + scrub + recovery"
        );
    }
}
