//! DAG compression of the profile tree.
//!
//! Section 3.3 describes the profile tree as "a directed acyclic graph
//! with a single root node": nothing requires distinct parents to point
//! to distinct children. [`CompressedProfileTree`] exploits that degree
//! of freedom by hash-consing structurally identical subtrees — two
//! context values whose sub-contexts carry identical preferences share
//! one physical subtree, and identical leaf entry-sets are stored once.
//!
//! Compression is a read-only snapshot: build a [`crate::ProfileTree`],
//! then [`crate::ProfileTree::compress`] it. Lookups (`exact_lookup`,
//! `search_cs`) behave identically and use the same cell-access
//! accounting, so the compressed index slots into every experiment as
//! an ablation (`repro -- dag`).

use std::collections::HashMap;

use ctxpref_context::{ContextEnvironment, ContextState, CtxValue, DistanceKind};

use crate::access::AccessCounter;
use crate::ordering::ParamOrder;
use crate::tree::{Candidate, LeafEntry, LeafId, ProfileTree, TreeStats};

#[derive(Debug, Clone, Copy)]
struct Cell {
    key: CtxValue,
    child: u32,
}

#[derive(Debug, Clone, Default)]
struct Node {
    cells: Vec<Cell>,
}

/// A hash-consed, immutable profile tree: same contents and lookup
/// behaviour as the [`ProfileTree`] it was compressed from, with
/// structurally identical subtrees and leaves shared.
#[derive(Debug, Clone)]
pub struct CompressedProfileTree {
    env: ContextEnvironment,
    order: ParamOrder,
    nodes: Vec<Node>,
    leaves: Vec<Vec<LeafEntry>>,
    root: u32,
}

/// Hashable fingerprint of a leaf: sorted `(clause debug, score bits)`.
fn leaf_key(entries: &[LeafEntry]) -> Vec<(String, u64)> {
    let mut key: Vec<(String, u64)> = entries
        .iter()
        .map(|e| (format!("{:?}", e.clause), e.score.to_bits()))
        .collect();
    key.sort();
    key
}

impl ProfileTree {
    /// Compress into a shared-subtree DAG (read-only snapshot).
    pub fn compress(&self) -> CompressedProfileTree {
        let mut builder = DagBuilder {
            nodes: Vec::new(),
            leaves: Vec::new(),
            node_index: HashMap::new(),
            leaf_index: HashMap::new(),
        };
        // Recurse over the source tree via its public path enumeration:
        // rebuild a nested representation first.
        let depth = self.order().len();
        let mut paths = self.paths();
        // Sort for deterministic construction.
        paths.sort_by(|a, b| a.0.cmp(&b.0));
        let root = builder.build_level(self, &paths, 0, depth);
        CompressedProfileTree {
            env: self.env().clone(),
            order: self.order().clone(),
            nodes: builder.nodes,
            leaves: builder.leaves,
            root,
        }
    }
}

/// Paths grouped under one key at one level.
type PathGroup<'a> = Vec<(ContextState, &'a [LeafEntry])>;

struct DagBuilder {
    nodes: Vec<Node>,
    leaves: Vec<Vec<LeafEntry>>,
    node_index: HashMap<Vec<(u32, u32)>, u32>,
    leaf_index: HashMap<Vec<(String, u64)>, u32>,
}

impl DagBuilder {
    /// Build the node covering `paths` (all sharing a key prefix of
    /// length `level` in tree order), returning its id.
    fn build_level(
        &mut self,
        tree: &ProfileTree,
        paths: &[(ContextState, &[LeafEntry])],
        level: usize,
        depth: usize,
    ) -> u32 {
        // Group paths by their key at this level (tree order).
        let param = tree.order().param_at(level);
        let mut groups: Vec<(CtxValue, PathGroup)> = Vec::new();
        for (state, entries) in paths {
            let key = state.value(param);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, g)) => g.push((state.clone(), entries)),
                None => groups.push((key, vec![(state.clone(), entries)])),
            }
        }
        let mut cells: Vec<(u32, u32)> = Vec::with_capacity(groups.len());
        for (key, group) in groups {
            let child = if level + 1 == depth {
                self.intern_leaf(group[0].1)
            } else {
                self.build_level(tree, &group, level + 1, depth)
            };
            cells.push((key.0, child));
        }
        cells.sort();
        self.intern_node(cells)
    }

    fn intern_leaf(&mut self, entries: &[LeafEntry]) -> u32 {
        let key = leaf_key(entries);
        if let Some(&id) = self.leaf_index.get(&key) {
            return id;
        }
        let id = self.leaves.len() as u32;
        self.leaves.push(entries.to_vec());
        self.leaf_index.insert(key, id);
        id
    }

    fn intern_node(&mut self, cells: Vec<(u32, u32)>) -> u32 {
        if let Some(&id) = self.node_index.get(&cells) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            cells: cells
                .iter()
                .map(|&(k, c)| Cell {
                    key: ctxpref_hierarchy::ValueId(k),
                    child: c,
                })
                .collect(),
        });
        self.node_index.insert(cells, id);
        id
    }
}

impl CompressedProfileTree {
    /// The context environment the DAG indexes.
    pub fn env(&self) -> &ContextEnvironment {
        &self.env
    }

    /// The parameter-to-level assignment (same as the source tree).
    pub fn order(&self) -> &ParamOrder {
        &self.order
    }

    fn depth(&self) -> usize {
        self.order.len()
    }

    /// The entries of a (shared) leaf.
    pub fn leaf(&self, id: LeafId) -> &[LeafEntry] {
        &self.leaves[id.index()]
    }

    /// Exact-match lookup, identical contract to
    /// [`ProfileTree::exact_lookup`].
    pub fn exact_lookup(
        &self,
        state: &ContextState,
        counter: &mut AccessCounter,
    ) -> Option<(LeafId, &[LeafEntry])> {
        let mut node = self.root as usize;
        for level in 0..self.depth() {
            let key = state.value(self.order.param_at(level));
            let cells = &self.nodes[node].cells;
            let mut found = None;
            for (i, c) in cells.iter().enumerate() {
                if c.key == key {
                    counter.add(i as u64 + 1);
                    found = Some(c.child);
                    break;
                }
            }
            let Some(child) = found else {
                counter.add(cells.len() as u64);
                return None;
            };
            if level + 1 == self.depth() {
                let leaf = LeafId(child);
                return Some((leaf, &self.leaves[leaf.index()]));
            }
            node = child as usize;
        }
        unreachable!("depth ≥ 1 by construction")
    }

    /// `Search_CS` over the DAG, identical contract to
    /// [`ProfileTree::search_cs`].
    pub fn search_cs(
        &self,
        state: &ContextState,
        kind: DistanceKind,
        counter: &mut AccessCounter,
    ) -> Vec<Candidate> {
        let mut out = Vec::new();
        let mut path: Vec<CtxValue> = Vec::with_capacity(self.depth());
        self.search_rec(
            self.root as usize,
            0.0,
            state,
            kind,
            counter,
            &mut path,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn search_rec(
        &self,
        node: usize,
        dist: f64,
        state: &ContextState,
        kind: DistanceKind,
        counter: &mut AccessCounter,
        path: &mut Vec<CtxValue>,
        out: &mut Vec<Candidate>,
    ) {
        let level = path.len();
        let param = self.order.param_at(level);
        let h = self.env.hierarchy(param);
        let target = state.value(param);
        let bottom = level + 1 == self.depth();
        let cells = &self.nodes[node].cells;
        counter.add(cells.len() as u64);
        for cell in cells {
            if !h.is_ancestor_or_self(cell.key, target) {
                continue;
            }
            let d = dist + kind.value_dist(&self.env, param, cell.key, target);
            path.push(cell.key);
            if bottom {
                out.push(Candidate {
                    state: self.state_from_path(path),
                    distance: d,
                    leaf: LeafId(cell.child),
                });
            } else {
                self.search_rec(cell.child as usize, d, state, kind, counter, path, out);
            }
            path.pop();
        }
    }

    fn state_from_path(&self, path: &[CtxValue]) -> ContextState {
        let mut values = vec![ctxpref_hierarchy::ValueId(0); self.depth()];
        for (level, &v) in path.iter().enumerate() {
            values[self.order.param_at(level).index()] = v;
        }
        ContextState::from_values_unchecked(values)
    }

    /// Size statistics under the same byte model as [`TreeStats`].
    /// Shared nodes/leaves are counted once — that is the point.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            internal_nodes: self.nodes.len(),
            internal_cells: self.nodes.iter().map(|n| n.cells.len()).sum(),
            leaf_nodes: self.leaves.len(),
            leaf_entries: self.leaves.iter().map(Vec::len).sum(),
        }
    }

    /// Number of *distinct physical* leaves (≤ the source tree's state
    /// count).
    pub fn unique_leaf_count(&self) -> usize {
        self.leaves.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::{AttributeClause, ContextualPreference};
    use crate::profile::Profile;
    use ctxpref_context::{parse_descriptor, ContextEnvironment};
    use ctxpref_hierarchy::Hierarchy;
    use ctxpref_relation::AttrId;

    fn env() -> ContextEnvironment {
        ContextEnvironment::new(vec![
            Hierarchy::flat("weather", &["cold", "mild", "warm", "hot"]).unwrap(),
            Hierarchy::flat("company", &["friends", "family"]).unwrap(),
        ])
        .unwrap()
    }

    fn pref(env: &ContextEnvironment, d: &str, value: &str, score: f64) -> ContextualPreference {
        ContextualPreference::new(
            parse_descriptor(env, d).unwrap(),
            AttributeClause::eq(AttrId(0), value.into()),
            score,
        )
        .unwrap()
    }

    #[test]
    fn identical_subtrees_are_shared() {
        let env = env();
        let mut profile = Profile::new(env.clone());
        // The same (company → clause) structure under all four weather
        // values: four identical subtrees collapse into one.
        profile
            .insert(pref(
                &env,
                "weather in {cold, mild, warm, hot} and company = friends",
                "brewery",
                0.9,
            ))
            .unwrap();
        let tree = ProfileTree::from_profile(&profile, ParamOrder::identity(&env)).unwrap();
        let dag = tree.compress();
        let t = tree.stats();
        let d = dag.stats();
        assert_eq!(t.leaf_entries, 4, "tree stores four copies");
        assert_eq!(d.leaf_entries, 1, "dag shares the single leaf");
        assert!(d.internal_cells < t.internal_cells);
        assert_eq!(dag.unique_leaf_count(), 1);
        assert!(d.total_bytes() < t.total_bytes());
    }

    #[test]
    fn lookups_match_source_tree() {
        let env = env();
        let mut profile = Profile::new(env.clone());
        for (d, v, s) in [
            (
                "weather in {cold, mild} and company = friends",
                "brewery",
                0.9,
            ),
            ("weather in {warm, hot} and company = friends", "beach", 0.8),
            ("company = family", "zoo", 0.7),
            ("weather = hot", "aquarium", 0.6),
        ] {
            profile.insert(pref(&env, d, v, s)).unwrap();
        }
        let tree = ProfileTree::from_profile(&profile, ParamOrder::identity(&env)).unwrap();
        let dag = tree.compress();
        let wh = env.hierarchy(ctxpref_context::ParamId(0));
        let ch = env.hierarchy(ctxpref_context::ParamId(1));
        for &w in wh.edom().collect::<Vec<_>>().iter() {
            for &c in ch.edom().collect::<Vec<_>>().iter() {
                let q = ContextState::from_values_unchecked(vec![w, c]);
                let mut c1 = AccessCounter::new();
                let mut c2 = AccessCounter::new();
                let te = tree.exact_lookup(&q, &mut c1).map(|(_, e)| {
                    let mut v: Vec<String> = e.iter().map(|x| format!("{x:?}")).collect();
                    v.sort();
                    v
                });
                let de = dag.exact_lookup(&q, &mut c2).map(|(_, e)| {
                    let mut v: Vec<String> = e.iter().map(|x| format!("{x:?}")).collect();
                    v.sort();
                    v
                });
                assert_eq!(te, de);
                // Covering search agrees on (state, distance) sets.
                let mut s1: Vec<(String, String)> = tree
                    .search_cs(&q, DistanceKind::Jaccard, &mut c1)
                    .into_iter()
                    .map(|x| {
                        (
                            x.state.display(&env).to_string(),
                            format!("{:.9}", x.distance),
                        )
                    })
                    .collect();
                let mut s2: Vec<(String, String)> = dag
                    .search_cs(&q, DistanceKind::Jaccard, &mut c2)
                    .into_iter()
                    .map(|x| {
                        (
                            x.state.display(&env).to_string(),
                            format!("{:.9}", x.distance),
                        )
                    })
                    .collect();
                s1.sort();
                s2.sort();
                assert_eq!(s1, s2);
            }
        }
    }

    #[test]
    fn compression_is_idempotent_in_size() {
        let env = env();
        let mut profile = Profile::new(env.clone());
        for (i, w) in ["cold", "mild", "warm", "hot"].iter().enumerate() {
            profile
                .insert(pref(
                    &env,
                    &format!("weather = {w}"),
                    "x",
                    0.1 * (i + 1) as f64,
                ))
                .unwrap();
        }
        let tree = ProfileTree::from_profile(&profile, ParamOrder::identity(&env)).unwrap();
        let dag = tree.compress();
        assert!(dag.stats().total_cells() <= tree.stats().total_cells());
        assert_eq!(dag.order().len(), 2);
        assert_eq!(dag.env().len(), 2);
    }
}
