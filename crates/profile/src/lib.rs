#![warn(missing_docs)]
//! Contextual preferences, profiles, and the profile tree index.
//!
//! Implements Sections 3.2–3.3 of *"Adding Context to Preferences"*
//! (ICDE 2007):
//!
//! * [`ContextualPreference`] — the triple `(cod, attributes_clause,
//!   interest_score)` of Definition 5, with the conflict test of
//!   Definition 6.
//! * [`Profile`] — a set of non-conflicting contextual preferences
//!   (Definition 7), with conflict detection on insertion.
//! * [`ProfileTree`] — the paper's index (Section 3.3): a DAG with one
//!   level per context parameter plus a leaf level, nodes made of
//!   `[key, pointer]` cells, `all` keys for unspecified parameters, and
//!   leaves holding `[attribute θ value, interest_score]` entries.
//!   Conflicts are detected with a single root-to-leaf traversal per
//!   state. The tree reports exact size statistics ([`TreeStats`]) under
//!   a documented byte model so the storage experiments of Section 5.2
//!   (Figures 5 and 6) can be reproduced.
//! * [`SerialStore`] — the sequential-scan baseline the paper compares
//!   against, with the same statistics and access counting.
//! * [`ParamOrder`] — assignments of context parameters to tree levels,
//!   including the size cost model `m1·(1 + m2·(1 + … (1 + mn)))` of
//!   Section 3.3 and the heuristics the experiments explore (larger
//!   domains lower in the tree; skew-aware ordering by active domain).
//! * [`AccessCounter`] — cell-access accounting shared by every lookup
//!   path, the metric of Figure 7.

mod access;
mod dag;
mod error;
mod ordering;
mod preference;
mod profile;
mod serial;
mod tree;

pub use access::AccessCounter;
pub use dag::CompressedProfileTree;
pub use error::ProfileError;
pub use ordering::ParamOrder;
pub use preference::{AttributeClause, ContextualPreference};
pub use profile::Profile;
pub use serial::{SerialRecord, SerialStore};
pub use tree::{Candidate, LeafEntry, LeafId, ProfileTree, TreeStats};

/// Byte cost of one `[key, pointer]` cell of an internal profile-tree
/// node: a 4-byte interned value key plus a 4-byte child pointer. The
/// same model prices one context value of a serially stored preference
/// (4 bytes, no pointer needed) — see `DESIGN.md` §4.
pub const CELL_BYTES: usize = 8;

/// Byte cost of one serialized context value in the serial store.
pub const SERIAL_VALUE_BYTES: usize = 4;

/// Byte cost of one leaf entry `[attribute θ value, interest_score]`:
/// 2-byte attribute id + 2-byte operator + 4-byte value handle + 4-byte
/// score.
pub const LEAF_ENTRY_BYTES: usize = 12;
