use ctxpref_context::{ContextEnvironment, ContextState, DistanceKind};

use crate::access::AccessCounter;
use crate::error::ProfileError;
use crate::preference::ContextualPreference;
use crate::profile::Profile;
use crate::tree::{Candidate, LeafEntry, LeafId};
use crate::{LEAF_ENTRY_BYTES, SERIAL_VALUE_BYTES};

/// One serially stored preference state: the expanded context state
/// plus its `[attribute θ value, score]` entry.
#[derive(Debug, Clone)]
pub struct SerialRecord {
    /// The expanded context state of the record.
    pub state: ContextState,
    /// The `[attribute θ value, score]` payload.
    pub entry: LeafEntry,
}

/// The sequential-scan baseline of Section 5.2: preferences are stored
/// "serially", one record per (context state, attribute clause) pair,
/// with no index. Exact matches scan until the matching state is found;
/// covering matches must scan the whole store.
///
/// The same [`AccessCounter`] unit as the profile tree is used: one
/// access per context-value comparison. Storage statistics price each
/// context value at [`SERIAL_VALUE_BYTES`] (no pointer is needed) and
/// each entry at [`LEAF_ENTRY_BYTES`], and count `n + 1` "cells" per
/// record — matching Figure 5, where 522 three-parameter preferences
/// occupy ≈ 2200 cells serially.
#[derive(Debug, Clone)]
pub struct SerialStore {
    env: ContextEnvironment,
    records: Vec<SerialRecord>,
}

impl SerialStore {
    /// An empty store over `env`.
    pub fn new(env: ContextEnvironment) -> Self {
        Self {
            env,
            records: Vec::new(),
        }
    }

    /// Build from a whole profile (no conflict checking — a [`Profile`]
    /// is conflict-free by construction).
    pub fn from_profile(profile: &Profile) -> Result<Self, ProfileError> {
        let mut store = Self::new(profile.env().clone());
        for pref in profile.iter() {
            store.insert(pref)?;
        }
        Ok(store)
    }

    /// The context environment.
    pub fn env(&self) -> &ContextEnvironment {
        &self.env
    }

    /// Append one record per state of the preference's descriptor.
    /// Exact `(state, clause, score)` duplicates are skipped; a
    /// conflicting record (Definition 6) is rejected.
    pub fn insert(&mut self, pref: &ContextualPreference) -> Result<(), ProfileError> {
        let states = pref.descriptor().states(&self.env)?;
        for state in &states {
            for r in &self.records {
                if r.state == *state
                    && r.entry.clause == *pref.clause()
                    && r.entry.score != pref.score()
                {
                    return Err(ProfileError::Conflict {
                        state: state.clone(),
                        existing_score: r.entry.score,
                        new_score: pref.score(),
                    });
                }
            }
        }
        for state in states {
            let duplicate = self.records.iter().any(|r| {
                r.state == state
                    && r.entry.clause == *pref.clause()
                    && r.entry.score == pref.score()
            });
            if !duplicate {
                let record = SerialRecord {
                    state,
                    entry: LeafEntry {
                        clause: pref.clause().clone(),
                        score: pref.score(),
                    },
                };
                // Keep records for one state contiguous so the
                // exact-match scan can stop at the first non-matching
                // record after a hit (the paper's "scanned until the
                // matching state is found" cost model).
                match self.records.iter().rposition(|r| r.state == record.state) {
                    Some(i) => self.records.insert(i + 1, record),
                    None => self.records.push(record),
                }
            }
        }
        Ok(())
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in storage order.
    pub fn records(&self) -> &[SerialRecord] {
        &self.records
    }

    /// Exact-match lookup: scan records in order, comparing context
    /// values until a mismatch (each comparison is one cell access), and
    /// stop as soon as the matching state has been seen — "the profile
    /// is scanned until the matching state is found". All entries of the
    /// matching state are returned (they may be scattered, so the scan
    /// only ends early when the store was built state-contiguously; we
    /// conservatively keep scanning after the first hit only while
    /// collecting further hits is possible, i.e. to the end — but charge
    /// the paper's early-exit cost model by stopping at the first hit
    /// when `first_only` semantics suffice). This method returns every
    /// matching entry and charges the full scan up to the *last* match
    /// or the end, whichever the early-exit policy permits.
    pub fn exact_lookup(
        &self,
        state: &ContextState,
        counter: &mut AccessCounter,
    ) -> Vec<&LeafEntry> {
        let mut out = Vec::new();
        for r in &self.records {
            let mut matched = true;
            for (a, b) in r.state.values().iter().zip(state.values()) {
                counter.bump();
                if a != b {
                    matched = false;
                    break;
                }
            }
            if matched {
                out.push(&r.entry);
                // Early exit once a match is found and the remaining
                // records cannot extend it: the paper's model stops at
                // the first matching state. Records for one state are
                // inserted contiguously, so stop at the first
                // non-matching record after a hit.
            } else if !out.is_empty() {
                break;
            }
        }
        out
    }

    /// Covering search over the whole store (the non-exact-match case of
    /// Figure 7): every record whose state equals or covers `state`,
    /// with its distance. Non-exact matches "need to scan the whole
    /// profile".
    pub fn search_covering(
        &self,
        state: &ContextState,
        kind: DistanceKind,
        counter: &mut AccessCounter,
    ) -> Vec<Candidate> {
        let mut out: Vec<Candidate> = Vec::new();
        for (idx, r) in self.records.iter().enumerate() {
            let mut covers = true;
            for (i, (_, h)) in self.env.iter().enumerate() {
                counter.bump();
                let p = ctxpref_context::ParamId(i as u16);
                if !h.is_ancestor_or_self(r.state.value(p), state.value(p)) {
                    covers = false;
                    break;
                }
            }
            if covers {
                out.push(Candidate {
                    state: r.state.clone(),
                    distance: kind.state_dist(&self.env, &r.state, state),
                    leaf: LeafId(idx as u32),
                });
            }
        }
        out
    }

    /// The entries of a "leaf": for the serial store, candidate `leaf`
    /// ids index records.
    pub fn leaf(&self, id: LeafId) -> &[LeafEntry] {
        std::slice::from_ref(&self.records[id.index()].entry)
    }

    /// Total cells: `n` context values + 1 entry per record.
    pub fn total_cells(&self) -> usize {
        self.records.len() * (self.env.len() + 1)
    }

    /// Total bytes under the documented model.
    pub fn total_bytes(&self) -> usize {
        self.records.len() * (self.env.len() * SERIAL_VALUE_BYTES + LEAF_ENTRY_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::AttributeClause;
    use ctxpref_context::parse_descriptor;
    use ctxpref_hierarchy::{Hierarchy, HierarchyBuilder};
    use ctxpref_relation::AttrId;

    fn env() -> ContextEnvironment {
        let mut loc = HierarchyBuilder::new("location", &["City", "Country"]);
        loc.add("Country", "Greece", None).unwrap();
        loc.add("City", "Athens", Some("Greece")).unwrap();
        loc.add("City", "Ioannina", Some("Greece")).unwrap();
        ContextEnvironment::new(vec![
            loc.build().unwrap(),
            Hierarchy::flat("weather", &["cold", "warm"]).unwrap(),
        ])
        .unwrap()
    }

    fn pref(env: &ContextEnvironment, d: &str, value: &str, score: f64) -> ContextualPreference {
        ContextualPreference::new(
            parse_descriptor(env, d).unwrap(),
            AttributeClause::eq(AttrId(0), value.into()),
            score,
        )
        .unwrap()
    }

    #[test]
    fn insert_expands_states() {
        let env = env();
        let mut s = SerialStore::new(env.clone());
        s.insert(&pref(
            &env,
            "location in {Athens, Ioannina} and weather = warm",
            "x",
            0.5,
        ))
        .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_cells(), 2 * 3);
        assert_eq!(s.total_bytes(), 2 * (2 * 4 + 12));
        assert!(!s.is_empty());
        assert_eq!(s.records().len(), 2);
    }

    #[test]
    fn conflicts_and_duplicates() {
        let env = env();
        let mut s = SerialStore::new(env.clone());
        s.insert(&pref(&env, "weather = warm", "x", 0.5)).unwrap();
        assert!(matches!(
            s.insert(&pref(&env, "weather = warm", "x", 0.9))
                .unwrap_err(),
            ProfileError::Conflict { .. }
        ));
        s.insert(&pref(&env, "weather = warm", "x", 0.5)).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn exact_lookup_counts_and_stops_early() {
        let env = env();
        let mut s = SerialStore::new(env.clone());
        s.insert(&pref(
            &env,
            "location = Athens and weather = warm",
            "a",
            0.1,
        ))
        .unwrap();
        s.insert(&pref(
            &env,
            "location = Athens and weather = cold",
            "b",
            0.2,
        ))
        .unwrap();
        s.insert(&pref(
            &env,
            "location = Ioannina and weather = warm",
            "c",
            0.3,
        ))
        .unwrap();
        let q = ContextState::parse(&env, &["Athens", "cold"]).unwrap();
        let mut counter = AccessCounter::new();
        let hits = s.exact_lookup(&q, &mut counter);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].score, 0.2);
        // Record 1: compare 2 values (warm mismatch at 2nd) → 2 cells;
        // record 2: 2 values match → 2 cells; record 3: first value
        // mismatches → 1 cell, and the early-exit triggers before it...
        // Early exit happens *after* scanning record 3's first value.
        assert_eq!(counter.cells(), 2 + 2 + 1);
        // A missing state scans everything.
        counter.reset();
        let none = s.exact_lookup(
            &ContextState::parse(&env, &["Ioannina", "cold"]).unwrap(),
            &mut counter,
        );
        assert!(none.is_empty());
        // Records 1–2 mismatch on the first value (1 cell each); record 3
        // matches Ioannina but mismatches on weather (2 cells).
        assert_eq!(counter.cells(), 1 + 1 + 2);
    }

    #[test]
    fn covering_search_scans_everything() {
        let env = env();
        let mut s = SerialStore::new(env.clone());
        s.insert(&pref(&env, "location = Greece", "a", 0.1))
            .unwrap();
        s.insert(&pref(
            &env,
            "location = Athens and weather = warm",
            "b",
            0.2,
        ))
        .unwrap();
        s.insert(&pref(&env, "location = Ioannina", "c", 0.3))
            .unwrap();
        let q = ContextState::parse(&env, &["Athens", "warm"]).unwrap();
        let mut counter = AccessCounter::new();
        let cands = s.search_covering(&q, DistanceKind::Hierarchy, &mut counter);
        assert_eq!(cands.len(), 2);
        for c in &cands {
            assert!(c.state.covers(&q, &env));
            assert_eq!(s.leaf(c.leaf).len(), 1);
        }
        let exact = cands.iter().find(|c| c.distance == 0.0).unwrap();
        assert_eq!(exact.state, q);
        let cover = cands.iter().find(|c| c.distance > 0.0).unwrap();
        // (Greece, all): 1 level up on location + 1 on weather = 2.
        assert_eq!(cover.distance, 2.0);
    }

    #[test]
    fn from_profile_roundtrip() {
        let env = env();
        let mut p = Profile::new(env.clone());
        p.insert(pref(&env, "weather = warm", "x", 0.5)).unwrap();
        p.insert(pref(&env, "location = Athens", "y", 0.7)).unwrap();
        let s = SerialStore::from_profile(&p).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.env().len(), 2);
    }
}
