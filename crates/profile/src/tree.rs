use std::fmt;

use ctxpref_context::{ContextEnvironment, ContextState, CtxValue, DistanceKind};

use crate::access::AccessCounter;
use crate::error::ProfileError;
use crate::ordering::ParamOrder;
use crate::preference::{AttributeClause, ContextualPreference};
use crate::profile::Profile;
use crate::{CELL_BYTES, LEAF_ENTRY_BYTES};

/// Identifies a leaf node of a [`ProfileTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeafId(pub u32);

impl LeafId {
    #[inline]
    /// Zero-based index of the leaf.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One `[attribute θ value, interest_score]` entry of a leaf node.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafEntry {
    /// The attribute clause `A θ a`.
    pub clause: AttributeClause,
    /// The interest score in `[0, 1]`.
    pub score: f64,
}

/// A `[key, pointer]` cell of an internal node.
#[derive(Debug, Clone, Copy)]
struct Cell {
    key: CtxValue,
    /// Index into `nodes` for non-bottom levels, into `leaves` for the
    /// bottom parameter level.
    child: u32,
}

#[derive(Debug, Clone, Default)]
struct Node {
    cells: Vec<Cell>,
}

/// A candidate path produced by `Search_CS` (Algorithm 1): a stored
/// context state that equals or covers the searched state, its distance
/// from the searched state, and the leaf holding its preference entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The stored context state spelled by the path.
    pub state: ContextState,
    /// Distance from the searched state under the chosen metric.
    pub distance: f64,
    /// The leaf holding the path's preference entries.
    pub leaf: LeafId,
}

/// Size statistics of a [`ProfileTree`] under the byte model documented
/// on [`crate::CELL_BYTES`] / [`crate::LEAF_ENTRY_BYTES`] — the
/// quantities plotted in Figures 5 and 6 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TreeStats {
    /// Internal (non-leaf) nodes.
    pub internal_nodes: usize,
    /// `[key, pointer]` cells across internal nodes.
    pub internal_cells: usize,
    /// Leaf nodes (distinct stored context states).
    pub leaf_nodes: usize,
    /// `[attribute θ value, score]` entries across leaves.
    pub leaf_entries: usize,
}

impl TreeStats {
    /// Total cells, counting each leaf entry as one cell (the unit of
    /// Figures 5–6: a 522-preference profile stored serially is ~2200
    /// cells ≈ 522 × (3 context values + 1 leaf entry)).
    pub fn total_cells(&self) -> usize {
        self.internal_cells + self.leaf_entries
    }

    /// Total bytes under the documented cost model.
    pub fn total_bytes(&self) -> usize {
        self.internal_cells * CELL_BYTES + self.leaf_entries * LEAF_ENTRY_BYTES
    }
}

/// The profile tree (Section 3.3): an index over the context states of
/// a profile's preferences.
///
/// * One level per context parameter (assigned by a [`ParamOrder`]),
///   plus a leaf level — height `n + 1`.
/// * Each internal node at level `k` holds `[key, pointer]` cells whose
///   keys are values of `edom(C_{order[k]})` (including `all` for
///   unspecified parameters); no two cells of one node share a key.
/// * Each root-to-leaf path spells one stored context state; the leaf
///   holds every `[attribute θ value, interest_score]` associated with
///   that state.
/// * Conflicts (Definition 6) are detected during insertion with a
///   single root-to-leaf traversal per state.
#[derive(Debug, Clone)]
pub struct ProfileTree {
    env: ContextEnvironment,
    order: ParamOrder,
    nodes: Vec<Node>,
    leaves: Vec<Vec<LeafEntry>>,
    /// Arena slots freed by [`ProfileTree::remove_state_entry`], reused
    /// by subsequent insertions.
    free_nodes: Vec<u32>,
    free_leaves: Vec<u32>,
}

impl ProfileTree {
    /// An empty tree over `env` with the given parameter-to-level
    /// assignment.
    pub fn new(env: ContextEnvironment, order: ParamOrder) -> Result<Self, ProfileError> {
        if order.len() != env.len() {
            return Err(ProfileError::InvalidOrder(format!(
                "order has {} levels for {} parameters",
                order.len(),
                env.len()
            )));
        }
        Ok(Self {
            env,
            order,
            nodes: vec![Node::default()],
            leaves: Vec::new(),
            free_nodes: Vec::new(),
            free_leaves: Vec::new(),
        })
    }

    /// Build a tree from a whole profile.
    pub fn from_profile(profile: &Profile, order: ParamOrder) -> Result<Self, ProfileError> {
        let mut tree = Self::new(profile.env().clone(), order)?;
        for pref in profile.iter() {
            tree.insert(pref)?;
        }
        Ok(tree)
    }

    /// The context environment the tree indexes.
    pub fn env(&self) -> &ContextEnvironment {
        &self.env
    }

    /// The parameter-to-level assignment.
    pub fn order(&self) -> &ParamOrder {
        &self.order
    }

    /// Number of context parameters = height of the tree minus one.
    #[inline]
    fn depth(&self) -> usize {
        self.order.len()
    }

    /// The entries of a leaf.
    pub fn leaf(&self, id: LeafId) -> &[LeafEntry] {
        &self.leaves[id.index()]
    }

    /// Insert one contextual preference: one path per state of its
    /// descriptor's context.
    ///
    /// Conflict handling follows Section 3.3: before any path is
    /// created, every state is checked with a root-to-leaf traversal; if
    /// some state already stores the same attribute clause with a
    /// different score, the whole insertion is rejected (atomically) and
    /// the caller can notify the user. Re-inserting an identical
    /// `(state, clause, score)` is a no-op.
    pub fn insert(&mut self, pref: &ContextualPreference) -> Result<(), ProfileError> {
        let states = pref.descriptor().states(&self.env)?;
        // Phase 1: detect conflicts without mutating.
        for state in &states {
            if let Some(leaf) = self.locate_leaf(state) {
                for entry in &self.leaves[leaf.index()] {
                    if entry.clause == *pref.clause() && entry.score != pref.score() {
                        return Err(ProfileError::Conflict {
                            state: state.clone(),
                            existing_score: entry.score,
                            new_score: pref.score(),
                        });
                    }
                }
            }
        }
        // Phase 2: insert paths.
        for state in &states {
            let leaf = self.ensure_path(state);
            let entries = &mut self.leaves[leaf.index()];
            let duplicate = entries
                .iter()
                .any(|e| e.clause == *pref.clause() && e.score == pref.score());
            if !duplicate {
                entries.push(LeafEntry {
                    clause: pref.clause().clone(),
                    score: pref.score(),
                });
            }
        }
        Ok(())
    }

    /// Walk the path of `state`, returning its leaf if fully present.
    fn locate_leaf(&self, state: &ContextState) -> Option<LeafId> {
        let mut node = 0usize;
        for level in 0..self.depth() {
            let key = state.value(self.order.param_at(level));
            let cell = self.nodes[node].cells.iter().find(|c| c.key == key)?;
            if level + 1 == self.depth() {
                return Some(LeafId(cell.child));
            }
            node = cell.child as usize;
        }
        unreachable!("depth ≥ 1 by construction")
    }

    /// Walk the path of `state`, creating nodes/cells as needed; returns
    /// the leaf.
    fn ensure_path(&mut self, state: &ContextState) -> LeafId {
        let mut node = 0usize;
        for level in 0..self.depth() {
            let key = state.value(self.order.param_at(level));
            let bottom = level + 1 == self.depth();
            let existing = self.nodes[node]
                .cells
                .iter()
                .find(|c| c.key == key)
                .map(|c| c.child);
            let child = match existing {
                Some(c) => c,
                None => {
                    let c = if bottom {
                        match self.free_leaves.pop() {
                            Some(i) => i,
                            None => {
                                self.leaves.push(Vec::new());
                                (self.leaves.len() - 1) as u32
                            }
                        }
                    } else {
                        match self.free_nodes.pop() {
                            Some(i) => i,
                            None => {
                                self.nodes.push(Node::default());
                                (self.nodes.len() - 1) as u32
                            }
                        }
                    };
                    self.nodes[node].cells.push(Cell { key, child: c });
                    c
                }
            };
            if bottom {
                return LeafId(child);
            }
            node = child as usize;
        }
        unreachable!("depth ≥ 1 by construction")
    }

    /// Exact-match lookup: a single root-to-leaf traversal (the first
    /// case of the paper's query-complexity analysis). Returns the leaf
    /// for `state` if the exact state is stored.
    ///
    /// `counter` is charged one access per `[key, pointer]` cell
    /// examined by the linear scan of each visited node.
    pub fn exact_lookup(
        &self,
        state: &ContextState,
        counter: &mut AccessCounter,
    ) -> Option<(LeafId, &[LeafEntry])> {
        let mut node = 0usize;
        for level in 0..self.depth() {
            let key = state.value(self.order.param_at(level));
            let cells = &self.nodes[node].cells;
            let mut found = None;
            for (i, c) in cells.iter().enumerate() {
                if c.key == key {
                    counter.add(i as u64 + 1);
                    found = Some(c.child);
                    break;
                }
            }
            let Some(child) = found else {
                counter.add(cells.len() as u64);
                return None;
            };
            if level + 1 == self.depth() {
                let leaf = LeafId(child);
                return Some((leaf, &self.leaves[leaf.index()]));
            }
            node = child as usize;
        }
        unreachable!("depth ≥ 1 by construction")
    }

    /// `Search_CS` (Algorithm 1): find every stored path whose context
    /// state equals or covers `state`, each annotated with its distance
    /// from `state` under `kind`.
    ///
    /// The traversal descends from the root; at level `k` with searched
    /// value `c_k`, it follows every cell whose key is `c_k` itself or
    /// an ancestor of `c_k` (including `all`), accumulating the
    /// per-parameter distance contribution. Every cell of every visited
    /// node is charged to `counter` (the linear scan must classify each
    /// cell).
    pub fn search_cs(
        &self,
        state: &ContextState,
        kind: DistanceKind,
        counter: &mut AccessCounter,
    ) -> Vec<Candidate> {
        let mut out = Vec::new();
        let mut path: Vec<CtxValue> = Vec::with_capacity(self.depth());
        self.search_rec(0, 0.0, state, kind, counter, &mut path, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn search_rec(
        &self,
        node: usize,
        dist: f64,
        state: &ContextState,
        kind: DistanceKind,
        counter: &mut AccessCounter,
        path: &mut Vec<CtxValue>,
        out: &mut Vec<Candidate>,
    ) {
        let level = path.len();
        let param = self.order.param_at(level);
        let h = self.env.hierarchy(param);
        let target = state.value(param);
        let bottom = level + 1 == self.depth();
        let cells = &self.nodes[node].cells;
        counter.add(cells.len() as u64);
        for cell in cells {
            if !h.is_ancestor_or_self(cell.key, target) {
                continue;
            }
            let d = dist + kind.value_dist(&self.env, param, cell.key, target);
            path.push(cell.key);
            if bottom {
                out.push(Candidate {
                    state: self.state_from_path(path),
                    distance: d,
                    leaf: LeafId(cell.child),
                });
            } else {
                self.search_rec(cell.child as usize, d, state, kind, counter, path, out);
            }
            path.pop();
        }
    }

    /// Reconstruct a state (in parameter order) from a root-to-leaf key
    /// path (in tree-level order).
    fn state_from_path(&self, path: &[CtxValue]) -> ContextState {
        let mut values = vec![ctxpref_hierarchy::ValueId(0); self.depth()];
        for (level, &v) in path.iter().enumerate() {
            values[self.order.param_at(level).index()] = v;
        }
        ContextState::from_values_unchecked(values)
    }

    /// Enumerate every stored `(state, leaf entries)` pair, in
    /// depth-first order. Used by tests and by tree re-organization.
    pub fn paths(&self) -> Vec<(ContextState, &[LeafEntry])> {
        let mut out = Vec::with_capacity(self.leaves.len());
        let mut path = Vec::with_capacity(self.depth());
        self.paths_rec(0, &mut path, &mut out);
        out
    }

    fn paths_rec<'a>(
        &'a self,
        node: usize,
        path: &mut Vec<CtxValue>,
        out: &mut Vec<(ContextState, &'a [LeafEntry])>,
    ) {
        let bottom = path.len() + 1 == self.depth();
        for cell in &self.nodes[node].cells {
            path.push(cell.key);
            if bottom {
                out.push((
                    self.state_from_path(path),
                    &self.leaves[cell.child as usize],
                ));
            } else {
                self.paths_rec(cell.child as usize, path, out);
            }
            path.pop();
        }
    }

    /// Rebuild the same contents under a different parameter order.
    pub fn reorder(&self, order: ParamOrder) -> Result<Self, ProfileError> {
        let mut tree = Self::new(self.env.clone(), order)?;
        for (state, entries) in self.paths() {
            let leaf = tree.ensure_path(&state);
            tree.leaves[leaf.index()].extend(entries.iter().cloned());
        }
        Ok(tree)
    }

    /// Size statistics (Figures 5–6). Freed arena slots (after
    /// removals) hold no cells/entries and internal node/leaf counts
    /// exclude them.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            internal_nodes: self.nodes.len() - self.free_nodes.len(),
            internal_cells: self.nodes.iter().map(|n| n.cells.len()).sum(),
            leaf_nodes: self.leaves.len() - self.free_leaves.len(),
            leaf_entries: self.leaves.iter().map(Vec::len).sum(),
        }
    }

    /// Number of distinct stored context states.
    pub fn state_count(&self) -> usize {
        self.leaves.len() - self.free_leaves.len()
    }

    /// Remove every path/entry the preference contributed: for each
    /// state of its descriptor, drop the `(clause, score)` entry and
    /// prune the path if its leaf becomes empty.
    ///
    /// Physical entries are shared: if another preference contributed an
    /// identical `(state, clause, score)` triple, the entry disappears
    /// for it as well — callers that maintain a logical
    /// [`Profile`] alongside the tree (such as `ContextualDb`) must skip
    /// the states still contributed by remaining preferences, using
    /// [`Self::remove_state_entry`] directly.
    pub fn remove(&mut self, pref: &ContextualPreference) -> Result<usize, ProfileError> {
        let mut removed = 0;
        for state in pref.descriptor().states(&self.env)? {
            if self.remove_state_entry(&state, pref.clause(), pref.score()) {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Remove the `(clause, score)` entry stored under one exact context
    /// state, pruning emptied nodes. Returns whether an entry existed.
    pub fn remove_state_entry(
        &mut self,
        state: &ContextState,
        clause: &AttributeClause,
        score: f64,
    ) -> bool {
        // Record the path root → bottom as (node, cell position).
        let mut path: Vec<(usize, usize)> = Vec::with_capacity(self.depth());
        let mut node = 0usize;
        let mut leaf = None;
        for level in 0..self.depth() {
            let key = state.value(self.order.param_at(level));
            let Some(pos) = self.nodes[node].cells.iter().position(|c| c.key == key) else {
                return false;
            };
            let child = self.nodes[node].cells[pos].child;
            path.push((node, pos));
            if level + 1 == self.depth() {
                leaf = Some(child);
            } else {
                node = child as usize;
            }
        }
        let leaf = leaf.expect("depth ≥ 1 by construction");
        let entries = &mut self.leaves[leaf as usize];
        let Some(i) = entries
            .iter()
            .position(|e| e.clause == *clause && e.score == score)
        else {
            return false;
        };
        entries.swap_remove(i);
        if !entries.is_empty() {
            return true;
        }
        // Leaf emptied: prune the path bottom-up while nodes empty out.
        self.free_leaves.push(leaf);
        for level in (0..self.depth()).rev() {
            let (node, pos) = path[level];
            let child = self.nodes[node].cells[pos].child;
            let child_gone =
                level + 1 == self.depth() || self.nodes[child as usize].cells.is_empty();
            if !child_gone {
                break;
            }
            self.nodes[node].cells.swap_remove(pos);
            if level + 1 < self.depth() {
                self.free_nodes.push(child);
            }
        }
        true
    }

    /// Update the score of the `(state, clause)` entry under one exact
    /// context state. Returns whether an entry was found.
    pub fn update_state_entry(
        &mut self,
        state: &ContextState,
        clause: &AttributeClause,
        score: f64,
    ) -> bool {
        let Some(leaf) = self.locate_leaf(state) else {
            return false;
        };
        let entries = &mut self.leaves[leaf.index()];
        match entries.iter_mut().find(|e| e.clause == *clause) {
            Some(e) => {
                e.score = score;
                true
            }
            None => false,
        }
    }
}

impl fmt::Display for ProfileTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "ProfileTree[order {}, {} states, {} cells, {} bytes]",
            self.order.display(&self.env),
            self.state_count(),
            s.total_cells(),
            s.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_context::{parse_descriptor, ContextDescriptor};
    use ctxpref_hierarchy::{Hierarchy, HierarchyBuilder};
    use ctxpref_relation::AttrId;

    /// The paper's Figure 4 environment, with parameters ordered
    /// (accompanying_people, temperature, location) as in the figure.
    fn fig4_env() -> ContextEnvironment {
        let people =
            Hierarchy::flat("accompanying_people", &["friends", "family", "alone"]).unwrap();
        let mut temp = HierarchyBuilder::new("temperature", &["Conditions", "Characterization"]);
        temp.add("Characterization", "bad", None).unwrap();
        temp.add("Characterization", "good", None).unwrap();
        temp.add_leaves("bad", &["freezing", "cold"]).unwrap();
        temp.add_leaves("good", &["mild", "warm", "hot"]).unwrap();
        let mut loc = HierarchyBuilder::new("location", &["Region", "City", "Country"]);
        loc.add("Country", "Greece", None).unwrap();
        loc.add("City", "Athens", Some("Greece")).unwrap();
        loc.add("City", "Ioannina", Some("Greece")).unwrap();
        loc.add_leaves("Athens", &["Plaka", "Kifisia"]).unwrap();
        loc.add_leaves("Ioannina", &["Perama"]).unwrap();
        ContextEnvironment::new(vec![people, temp.build().unwrap(), loc.build().unwrap()]).unwrap()
    }

    fn pref(
        env: &ContextEnvironment,
        descriptor: &str,
        attr: u16,
        value: &str,
        score: f64,
    ) -> ContextualPreference {
        let cod = parse_descriptor(env, descriptor).unwrap();
        ContextualPreference::new(cod, AttributeClause::eq(AttrId(attr), value.into()), score)
            .unwrap()
    }

    /// Figure 4's three preferences.
    fn fig4_tree() -> (ContextEnvironment, ProfileTree) {
        let env = fig4_env();
        let mut tree = ProfileTree::new(env.clone(), ParamOrder::identity(&env)).unwrap();
        tree.insert(&pref(
            &env,
            "location = Kifisia and temperature = warm and accompanying_people = friends",
            1,
            "cafeteria",
            0.9,
        ))
        .unwrap();
        tree.insert(&pref(
            &env,
            "accompanying_people = friends",
            1,
            "brewery",
            0.9,
        ))
        .unwrap();
        tree.insert(&pref(
            &env,
            "location = Plaka and temperature in {warm, hot}",
            0,
            "Acropolis",
            0.8,
        ))
        .unwrap();
        (env, tree)
    }

    #[test]
    fn figure_4_shape() {
        let (env, tree) = fig4_tree();
        // Stored states: (friends, warm, Kifisia), (friends, all, all),
        // (all, warm, Plaka), (all, hot, Plaka) — 4 paths.
        assert_eq!(tree.state_count(), 4);
        let stats = tree.stats();
        assert_eq!(stats.leaf_entries, 4);
        // Root: {friends, all} = 2 cells; level 2: friends→{warm, all},
        // all→{warm, hot}; level 3: 4 nodes with 1 cell each
        // (Kifisia / all / Plaka / Plaka).
        assert_eq!(stats.internal_cells, 2 + 2 + 2 + 4);
        assert_eq!(stats.total_cells(), 10 + 4);
        let paths = tree.paths();
        let rendered: Vec<String> = paths
            .iter()
            .map(|(s, _)| s.display(&env).to_string())
            .collect();
        assert!(rendered.contains(&"(friends, warm, Kifisia)".to_string()));
        assert!(rendered.contains(&"(friends, all, all)".to_string()));
        assert!(rendered.contains(&"(all, warm, Plaka)".to_string()));
        assert!(rendered.contains(&"(all, hot, Plaka)".to_string()));
    }

    #[test]
    fn exact_lookup_hits_and_misses() {
        let (env, tree) = fig4_tree();
        let mut counter = AccessCounter::new();
        let s = ContextState::parse(&env, &["friends", "warm", "Kifisia"]).unwrap();
        let (_, entries) = tree.exact_lookup(&s, &mut counter).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].score, 0.9);
        assert!(counter.cells() >= 3, "must examine ≥ one cell per level");
        // Exact states that are not stored miss.
        let miss = ContextState::parse(&env, &["family", "warm", "Kifisia"]).unwrap();
        assert!(tree.exact_lookup(&miss, &mut counter).is_none());
        let near = ContextState::parse(&env, &["friends", "hot", "Kifisia"]).unwrap();
        assert!(tree.exact_lookup(&near, &mut counter).is_none());
    }

    #[test]
    fn search_cs_returns_all_covering_paths() {
        let (env, tree) = fig4_tree();
        let mut counter = AccessCounter::new();
        // Query the paper's running state (friends, warm, Kifisia):
        // covered by itself and by (friends, all, all).
        let q = ContextState::parse(&env, &["friends", "warm", "Kifisia"]).unwrap();
        let mut cands = tree.search_cs(&q, DistanceKind::Hierarchy, &mut counter);
        cands.sort_by(|a, b| a.distance.partial_cmp(&b.distance).unwrap());
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].distance, 0.0);
        assert_eq!(cands[0].state, q);
        // (friends, all, all): levels (0, 2, 3) vs (0, 0, 0) → dist 2 + 3.
        assert_eq!(cands[1].distance, 5.0);
        assert_eq!(
            cands[1].state.display(&env).to_string(),
            "(friends, all, all)"
        );
        // Every candidate must cover the query (Algorithm 1's contract).
        for c in &cands {
            assert!(c.state.covers(&q, &env));
        }
        assert!(counter.cells() > 0);
    }

    #[test]
    fn search_cs_with_extended_query_state() {
        let (env, tree) = fig4_tree();
        let mut counter = AccessCounter::new();
        // A rough query state at city level: (all, warm, Athens). Plaka
        // is *below* Athens, so (all, warm, Plaka) must NOT match.
        let q = ContextState::parse(&env, &["all", "warm", "Athens"]).unwrap();
        let cands = tree.search_cs(&q, DistanceKind::Hierarchy, &mut counter);
        assert!(cands.iter().all(|c| c.state.covers(&q, &env)));
        assert!(cands
            .iter()
            .all(|c| !c.state.display(&env).to_string().contains("Plaka")));
    }

    #[test]
    fn search_cs_jaccard_orders_candidates() {
        let (env, tree) = fig4_tree();
        let mut counter = AccessCounter::new();
        let q = ContextState::parse(&env, &["friends", "warm", "Kifisia"]).unwrap();
        let cands = tree.search_cs(&q, DistanceKind::Jaccard, &mut counter);
        let exact = cands.iter().find(|c| c.state == q).unwrap();
        let cover = cands.iter().find(|c| c.state != q).unwrap();
        assert_eq!(exact.distance, 0.0);
        assert!(cover.distance > 0.0);
    }

    #[test]
    fn conflicts_detected_on_insert() {
        let env = fig4_env();
        let mut tree = ProfileTree::new(env.clone(), ParamOrder::identity(&env)).unwrap();
        tree.insert(&pref(
            &env,
            "accompanying_people = friends",
            1,
            "brewery",
            0.9,
        ))
        .unwrap();
        // Same state & clause, different score → conflict.
        let err = tree
            .insert(&pref(
                &env,
                "accompanying_people = friends",
                1,
                "brewery",
                0.5,
            ))
            .unwrap_err();
        assert!(matches!(err, ProfileError::Conflict { .. }));
        // Identical preference → no-op, no duplicate entries.
        tree.insert(&pref(
            &env,
            "accompanying_people = friends",
            1,
            "brewery",
            0.9,
        ))
        .unwrap();
        assert_eq!(tree.stats().leaf_entries, 1);
        // Same state, different clause → fine, same leaf.
        tree.insert(&pref(
            &env,
            "accompanying_people = friends",
            1,
            "cafeteria",
            0.4,
        ))
        .unwrap();
        assert_eq!(tree.state_count(), 1);
        assert_eq!(tree.stats().leaf_entries, 2);
    }

    #[test]
    fn conflicting_multi_state_insert_is_atomic() {
        let env = fig4_env();
        let mut tree = ProfileTree::new(env.clone(), ParamOrder::identity(&env)).unwrap();
        tree.insert(&pref(&env, "temperature = warm", 0, "Acropolis", 0.8))
            .unwrap();
        let before = tree.stats();
        // Descriptor expanding to {warm, hot}: warm conflicts, so even
        // the hot path must not be created.
        let err = tree
            .insert(&pref(
                &env,
                "temperature in {warm, hot}",
                0,
                "Acropolis",
                0.2,
            ))
            .unwrap_err();
        assert!(matches!(err, ProfileError::Conflict { .. }));
        assert_eq!(tree.stats(), before);
    }

    #[test]
    fn reorder_preserves_contents() {
        let (env, tree) = fig4_tree();
        let reordered = tree
            .reorder(
                ParamOrder::by_names(&env, &["location", "temperature", "accompanying_people"])
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(reordered.state_count(), tree.state_count());
        assert_eq!(reordered.stats().leaf_entries, tree.stats().leaf_entries);
        let mut a: Vec<String> = tree
            .paths()
            .iter()
            .map(|(s, _)| s.display(&env).to_string())
            .collect();
        let mut b: Vec<String> = reordered
            .paths()
            .iter()
            .map(|(s, _)| s.display(&env).to_string())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Exact lookups behave identically.
        let q = ContextState::parse(&env, &["friends", "warm", "Kifisia"]).unwrap();
        let mut c1 = AccessCounter::new();
        let mut c2 = AccessCounter::new();
        assert_eq!(
            tree.exact_lookup(&q, &mut c1).map(|(_, e)| e.len()),
            reordered.exact_lookup(&q, &mut c2).map(|(_, e)| e.len())
        );
    }

    #[test]
    fn from_profile_builds_everything() {
        let env = fig4_env();
        let mut profile = Profile::new(env.clone());
        profile
            .insert(pref(
                &env,
                "accompanying_people = friends",
                1,
                "brewery",
                0.9,
            ))
            .unwrap();
        profile
            .insert(pref(
                &env,
                "location = Plaka and temperature in {warm, hot}",
                0,
                "Acropolis",
                0.8,
            ))
            .unwrap();
        let tree = ProfileTree::from_profile(&profile, ParamOrder::identity(&env)).unwrap();
        assert_eq!(tree.state_count(), 3);
        assert!(tree.to_string().contains("states"));
    }

    #[test]
    fn empty_descriptor_stores_all_path() {
        let env = fig4_env();
        let mut tree = ProfileTree::new(env.clone(), ParamOrder::identity(&env)).unwrap();
        let p = ContextualPreference::new(
            ContextDescriptor::empty(),
            AttributeClause::eq(AttrId(0), "Acropolis".into()),
            0.6,
        )
        .unwrap();
        tree.insert(&p).unwrap();
        let all = ContextState::all(&env);
        let mut counter = AccessCounter::new();
        assert!(tree.exact_lookup(&all, &mut counter).is_some());
        // The (all, all, all) path covers every detailed query state.
        let q = ContextState::parse(&env, &["friends", "warm", "Kifisia"]).unwrap();
        let cands = tree.search_cs(&q, DistanceKind::Hierarchy, &mut counter);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].state, all);
    }

    #[test]
    fn order_length_is_validated() {
        let env = fig4_env();
        let env2 = ContextEnvironment::new(vec![Hierarchy::flat("x", &["a"]).unwrap()]).unwrap();
        let bad = ParamOrder::identity(&env2);
        assert!(matches!(
            ProfileTree::new(env, bad).unwrap_err(),
            ProfileError::InvalidOrder(_)
        ));
    }
}
