use std::fmt;

use ctxpref_context::{ContextDescriptor, ContextEnvironment};
use ctxpref_relation::{AttrId, CompareOp, Predicate, Schema, Value};

use crate::error::ProfileError;

/// An attribute clause `A θ a` of Definition 5. The paper's exposition
/// simplifies to a single clause of the form `A = a`; the full operator
/// set `θ ∈ {=, <, >, ≤, ≥, ≠}` of the definition is supported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeClause {
    /// The attribute the clause constrains.
    pub attr: AttrId,
    /// The comparison operator θ.
    pub op: CompareOp,
    /// The constant the attribute is compared against.
    pub value: Value,
}

impl AttributeClause {
    /// A clause `attr θ value`.
    pub fn new(attr: AttrId, op: CompareOp, value: Value) -> Self {
        Self { attr, op, value }
    }

    /// The paper's simplified `A = a` form.
    pub fn eq(attr: AttrId, value: Value) -> Self {
        Self::new(attr, CompareOp::Eq, value)
    }

    /// Resolve names against a schema: `AttributeClause::parse(&schema,
    /// "type", CompareOp::Eq, "brewery".into())`.
    pub fn resolve(
        schema: &Schema,
        attr: &str,
        op: CompareOp,
        value: Value,
    ) -> Result<Self, ctxpref_relation::RelationError> {
        Ok(Self::new(schema.require_attr(attr)?, op, value))
    }

    /// The selection predicate `σ_{A θ a}` this clause denotes.
    pub fn predicate(&self) -> Predicate {
        Predicate::new(self.attr, self.op, self.value.clone())
    }

    /// Render against a schema, e.g. `type = brewery`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a AttributeClause, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    "{} {} {}",
                    self.1.attr_name(self.0.attr),
                    self.0.op,
                    self.0.value
                )
            }
        }
        D(self, schema)
    }
}

/// A contextual preference (Definition 5): a context descriptor that
/// scopes where the preference applies, an attribute clause selecting
/// database tuples, and an interest score in `[0, 1]` (1 = extreme
/// interest, 0 = no interest).
#[derive(Debug, Clone, PartialEq)]
pub struct ContextualPreference {
    descriptor: ContextDescriptor,
    clause: AttributeClause,
    score: f64,
}

impl ContextualPreference {
    /// Build a preference, validating the interest score.
    pub fn new(
        descriptor: ContextDescriptor,
        clause: AttributeClause,
        score: f64,
    ) -> Result<Self, ProfileError> {
        if !(0.0..=1.0).contains(&score) || score.is_nan() {
            return Err(ProfileError::InvalidScore(score));
        }
        Ok(Self {
            descriptor,
            clause,
            score,
        })
    }

    /// The context descriptor scoping the preference.
    pub fn descriptor(&self) -> &ContextDescriptor {
        &self.descriptor
    }

    /// The attribute clause selecting tuples.
    pub fn clause(&self) -> &AttributeClause {
        &self.clause
    }

    /// The interest score in `[0, 1]`.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Replace the score (used when a user updates a preference).
    pub fn with_score(&self, score: f64) -> Result<Self, ProfileError> {
        Self::new(self.descriptor.clone(), self.clause.clone(), score)
    }

    /// The conflict test of Definition 6: two preferences conflict iff
    /// their contexts share a state, their clauses are identical, and
    /// their scores differ.
    pub fn conflicts_with(
        &self,
        other: &ContextualPreference,
        env: &ContextEnvironment,
    ) -> Result<bool, ProfileError> {
        if self.clause != other.clause || self.score == other.score {
            return Ok(false);
        }
        Ok(self.descriptor.overlaps(&other.descriptor, env)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_context::ContextDescriptor;
    use ctxpref_hierarchy::Hierarchy;
    use ctxpref_relation::AttrType;

    fn env() -> ContextEnvironment {
        ContextEnvironment::new(vec![
            Hierarchy::flat("weather", &["cold", "warm"]).unwrap(),
            Hierarchy::flat("company", &["friends", "family"]).unwrap(),
        ])
        .unwrap()
    }

    fn schema() -> Schema {
        Schema::new(&[("name", AttrType::Str), ("type", AttrType::Str)]).unwrap()
    }

    #[test]
    fn score_validation() {
        let cod = ContextDescriptor::empty();
        let clause = AttributeClause::eq(AttrId(0), "Acropolis".into());
        assert!(ContextualPreference::new(cod.clone(), clause.clone(), 0.8).is_ok());
        assert!(ContextualPreference::new(cod.clone(), clause.clone(), 0.0).is_ok());
        assert!(ContextualPreference::new(cod.clone(), clause.clone(), 1.0).is_ok());
        assert!(matches!(
            ContextualPreference::new(cod.clone(), clause.clone(), 1.5).unwrap_err(),
            ProfileError::InvalidScore(_)
        ));
        assert!(matches!(
            ContextualPreference::new(cod.clone(), clause.clone(), -0.1).unwrap_err(),
            ProfileError::InvalidScore(_)
        ));
        assert!(matches!(
            ContextualPreference::new(cod, clause, f64::NAN).unwrap_err(),
            ProfileError::InvalidScore(_)
        ));
    }

    #[test]
    fn clause_resolution_and_predicate() {
        let s = schema();
        let c = AttributeClause::resolve(&s, "type", CompareOp::Eq, "brewery".into()).unwrap();
        assert_eq!(c.attr, AttrId(1));
        assert_eq!(c.display(&s).to_string(), "type = brewery");
        let p = c.predicate();
        assert_eq!(p.attr, AttrId(1));
        assert!(AttributeClause::resolve(&s, "zz", CompareOp::Eq, Value::Int(0)).is_err());
    }

    #[test]
    fn conflict_requires_overlap_same_clause_different_score() {
        let env = env();
        let warm = ContextDescriptor::empty()
            .with_eq(&env, "weather", "warm")
            .unwrap();
        let cold = ContextDescriptor::empty()
            .with_eq(&env, "weather", "cold")
            .unwrap();
        let clause = AttributeClause::eq(AttrId(0), "Acropolis".into());
        let other = AttributeClause::eq(AttrId(0), "Benaki".into());

        let a = ContextualPreference::new(warm.clone(), clause.clone(), 0.8).unwrap();
        // Same state, same clause, different score → conflict (the
        // paper's 0.8 vs 0.3 Acropolis example).
        let b = a.with_score(0.3).unwrap();
        assert!(a.conflicts_with(&b, &env).unwrap());
        // Same everything → no conflict (it is the same preference).
        assert!(!a.conflicts_with(&a.clone(), &env).unwrap());
        // Different clause → no conflict.
        let c = ContextualPreference::new(warm, other, 0.3).unwrap();
        assert!(!a.conflicts_with(&c, &env).unwrap());
        // Disjoint contexts → no conflict.
        let d = ContextualPreference::new(cold, clause, 0.3).unwrap();
        assert!(!a.conflicts_with(&d, &env).unwrap());
    }

    #[test]
    fn conflict_is_symmetric() {
        let env = env();
        let warm = ContextDescriptor::empty()
            .with_eq(&env, "weather", "warm")
            .unwrap();
        let clause = AttributeClause::eq(AttrId(0), "x".into());
        let a = ContextualPreference::new(warm.clone(), clause.clone(), 0.8).unwrap();
        // `b` covers more states (weather unspecified → all) but shares
        // none with `a` at the *state* level: (warm, all-company) vs
        // (all, all). Definition 6 compares exact states.
        let b = ContextualPreference::new(ContextDescriptor::empty(), clause, 0.2).unwrap();
        assert_eq!(
            a.conflicts_with(&b, &env).unwrap(),
            b.conflicts_with(&a, &env).unwrap()
        );
    }
}
