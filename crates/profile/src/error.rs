use std::error::Error;
use std::fmt;

use ctxpref_context::{ContextError, ContextState};

/// Errors of the preference / profile layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// An interest score outside `[0, 1]` (or NaN) was supplied
    /// (Definition 5 requires a real number between 0 and 1).
    InvalidScore(f64),
    /// Inserting the preference would conflict with an existing one
    /// (Definition 6): same context state, same attribute clause,
    /// different interest score. The offending state is reported so the
    /// user can be notified, as Section 3.3 prescribes.
    Conflict {
        /// A witness state shared by both preferences.
        state: ContextState,
        /// The score already stored.
        existing_score: f64,
        /// The rejected new score.
        new_score: f64,
    },
    /// An underlying context-model error (descriptor expansion etc.).
    Context(ContextError),
    /// A parameter order that is not a permutation of the environment's
    /// parameters.
    InvalidOrder(String),
    /// The operation mixes objects built over different context
    /// environments.
    EnvironmentMismatch,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidScore(s) => {
                write!(f, "interest score must be a real number in [0, 1], got {s}")
            }
            Self::Conflict {
                existing_score,
                new_score,
                ..
            } => write!(
                f,
                "conflicting preference: same context state and attribute clause already \
                 scored {existing_score}, refusing {new_score}"
            ),
            Self::Context(e) => write!(f, "context error: {e}"),
            Self::InvalidOrder(msg) => write!(f, "invalid parameter order: {msg}"),
            Self::EnvironmentMismatch => {
                write!(f, "objects belong to different context environments")
            }
        }
    }
}

impl Error for ProfileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Context(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ContextError> for ProfileError {
    fn from(e: ContextError) -> Self {
        Self::Context(e)
    }
}
