use ctxpref_context::ContextEnvironment;

use crate::error::ProfileError;
use crate::preference::ContextualPreference;

/// A profile `P` (Definition 7): a set of non-conflicting contextual
/// preferences over one context environment.
///
/// `Profile` is the *logical* representation; [`crate::ProfileTree`] and
/// [`crate::SerialStore`] are physical ones built from it. Insertion
/// performs the pairwise conflict check of Definition 6 (the tree
/// detects the same conflicts in a single root-to-leaf traversal — see
/// `ProfileTree::insert`).
#[derive(Debug, Clone)]
pub struct Profile {
    env: ContextEnvironment,
    prefs: Vec<ContextualPreference>,
}

impl Profile {
    /// An empty profile over `env`.
    pub fn new(env: ContextEnvironment) -> Self {
        Self {
            env,
            prefs: Vec::new(),
        }
    }

    /// The context environment.
    pub fn env(&self) -> &ContextEnvironment {
        &self.env
    }

    /// Number of preferences.
    pub fn len(&self) -> usize {
        self.prefs.len()
    }

    /// True iff the profile holds no preferences.
    pub fn is_empty(&self) -> bool {
        self.prefs.is_empty()
    }

    /// The preferences, in insertion order.
    pub fn preferences(&self) -> &[ContextualPreference] {
        &self.prefs
    }

    /// Iterate over the preferences.
    pub fn iter(&self) -> impl Iterator<Item = &ContextualPreference> {
        self.prefs.iter()
    }

    /// Insert a preference after checking it conflicts with no existing
    /// one. Exact duplicates (same descriptor, clause, and score) are
    /// ignored, returning `Ok(false)`.
    pub fn insert(&mut self, pref: ContextualPreference) -> Result<bool, ProfileError> {
        for existing in &self.prefs {
            if existing.conflicts_with(&pref, &self.env)? {
                // Recover a witness state for the error message.
                let state = existing
                    .descriptor()
                    .states(&self.env)?
                    .into_iter()
                    .find(|s| {
                        pref.descriptor()
                            .states(&self.env)
                            .map(|ss| ss.contains(s))
                            .unwrap_or(false)
                    })
                    .unwrap_or_else(|| ctxpref_context::ContextState::all(&self.env));
                return Err(ProfileError::Conflict {
                    state,
                    existing_score: existing.score(),
                    new_score: pref.score(),
                });
            }
            if existing == &pref {
                return Ok(false);
            }
        }
        self.prefs.push(pref);
        Ok(true)
    }

    /// Insert without conflict checking (used by generators that are
    /// conflict-free by construction; the profile tree will still catch
    /// violations when built).
    pub fn insert_unchecked(&mut self, pref: ContextualPreference) {
        self.prefs.push(pref);
    }

    /// Remove the preference at `index`, returning it.
    pub fn remove(&mut self, index: usize) -> ContextualPreference {
        self.prefs.remove(index)
    }

    /// Update the interest score of the preference at `index`. Score
    /// updates never conflict: the old preference is replaced.
    pub fn update_score(&mut self, index: usize, score: f64) -> Result<(), ProfileError> {
        let updated = self.prefs[index].with_score(score)?;
        self.prefs[index] = updated;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::AttributeClause;
    use ctxpref_context::ContextDescriptor;
    use ctxpref_hierarchy::Hierarchy;
    use ctxpref_relation::AttrId;

    fn env() -> ContextEnvironment {
        ContextEnvironment::new(vec![Hierarchy::flat("weather", &["cold", "warm"]).unwrap()])
            .unwrap()
    }

    fn pref(
        env: &ContextEnvironment,
        weather: &str,
        name: &str,
        score: f64,
    ) -> ContextualPreference {
        let cod = ContextDescriptor::empty()
            .with_eq(env, "weather", weather)
            .unwrap();
        ContextualPreference::new(cod, AttributeClause::eq(AttrId(0), name.into()), score).unwrap()
    }

    #[test]
    fn insert_and_conflict() {
        let env = env();
        let mut p = Profile::new(env.clone());
        assert!(p.is_empty());
        assert!(p.insert(pref(&env, "warm", "Acropolis", 0.8)).unwrap());
        assert!(p.insert(pref(&env, "cold", "Acropolis", 0.3)).unwrap());
        assert_eq!(p.len(), 2);
        // Conflicting: warm + Acropolis already scored 0.8.
        let err = p.insert(pref(&env, "warm", "Acropolis", 0.1)).unwrap_err();
        match err {
            ProfileError::Conflict {
                existing_score,
                new_score,
                state,
            } => {
                assert_eq!(existing_score, 0.8);
                assert_eq!(new_score, 0.1);
                assert_eq!(state.display(&env).to_string(), "(warm)");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Exact duplicate is a no-op.
        assert!(!p.insert(pref(&env, "warm", "Acropolis", 0.8)).unwrap());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn remove_and_update() {
        let env = env();
        let mut p = Profile::new(env.clone());
        p.insert(pref(&env, "warm", "Acropolis", 0.8)).unwrap();
        p.update_score(0, 0.5).unwrap();
        assert_eq!(p.preferences()[0].score(), 0.5);
        assert!(p.update_score(0, 2.0).is_err());
        let removed = p.remove(0);
        assert_eq!(removed.score(), 0.5);
        assert!(p.is_empty());
    }

    #[test]
    fn iteration() {
        let env = env();
        let mut p = Profile::new(env.clone());
        p.insert(pref(&env, "warm", "a", 0.1)).unwrap();
        p.insert(pref(&env, "warm", "b", 0.2)).unwrap();
        assert_eq!(p.iter().count(), 2);
        assert_eq!(p.env().len(), 1);
    }
}
