use std::fmt;

use ctxpref_context::{ContextEnvironment, ParamId};

use crate::error::ProfileError;
use crate::profile::Profile;

/// An assignment of context parameters to profile-tree levels: tree
/// level `k` stores the values of `order[k]`.
///
/// Section 3.3 observes that the maximum number of cells is
/// `m1·(1 + m2·(1 + … (1 + mn)))` where `mi` is the domain cardinality
/// of the parameter at level `i`, which is minimized by placing
/// parameters with *larger* domains *lower* in the tree. Figure 6
/// (right) refines this: under skew, the *active* domain (values
/// actually appearing in preferences) is what matters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamOrder {
    levels: Vec<ParamId>,
}

impl ParamOrder {
    /// The identity order: parameter `Ci` at tree level `i`.
    pub fn identity(env: &ContextEnvironment) -> Self {
        Self {
            levels: env.param_ids().collect(),
        }
    }

    /// Build from an explicit permutation of the environment's
    /// parameters.
    pub fn new(env: &ContextEnvironment, levels: Vec<ParamId>) -> Result<Self, ProfileError> {
        if levels.len() != env.len() {
            return Err(ProfileError::InvalidOrder(format!(
                "expected {} parameters, got {}",
                env.len(),
                levels.len()
            )));
        }
        let mut seen = vec![false; env.len()];
        for &p in &levels {
            if p.index() >= env.len() || seen[p.index()] {
                return Err(ProfileError::InvalidOrder(format!(
                    "not a permutation: parameter {p} repeated or out of range"
                )));
            }
            seen[p.index()] = true;
        }
        Ok(Self { levels })
    }

    /// Build from parameter names, root level first.
    pub fn by_names(env: &ContextEnvironment, names: &[&str]) -> Result<Self, ProfileError> {
        let mut levels = Vec::with_capacity(names.len());
        for &n in names {
            levels.push(env.require_param(n)?);
        }
        Self::new(env, levels)
    }

    /// The parameter stored at tree level `k` (0-based, root first).
    #[inline]
    pub fn param_at(&self, level: usize) -> ParamId {
        self.levels[level]
    }

    /// Number of levels (= number of parameters).
    #[inline]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    #[inline]
    /// True iff the order covers no parameters (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The parameters, root level first.
    pub fn params(&self) -> &[ParamId] {
        &self.levels
    }

    /// The paper's space heuristic: parameters with larger extended
    /// domains go lower in the tree (ascending `|edom(Ci)|` from the
    /// root). Ties keep parameter order.
    pub fn by_ascending_domain(env: &ContextEnvironment) -> Self {
        let mut levels: Vec<ParamId> = env.param_ids().collect();
        levels.sort_by_key(|&p| (env.hierarchy(p).edom_size(), p));
        Self { levels }
    }

    /// The skew-aware refinement of Figure 6 (right): order by ascending
    /// *active* domain — the number of distinct values of each parameter
    /// that actually appear in the profile's preference states.
    pub fn by_ascending_active_domain(env: &ContextEnvironment, profile: &Profile) -> Self {
        let mut distinct: Vec<std::collections::HashSet<ctxpref_context::CtxValue>> =
            vec![Default::default(); env.len()];
        for pref in profile.iter() {
            if let Ok(sets) = pref.descriptor().value_sets(env) {
                for (i, set) in sets.into_iter().enumerate() {
                    distinct[i].extend(set);
                }
            }
        }
        let mut levels: Vec<ParamId> = env.param_ids().collect();
        levels.sort_by_key(|&p| (distinct[p.index()].len(), p));
        Self { levels }
    }

    /// Every permutation of the parameters — the experiments of
    /// Figures 5–6 enumerate all `n!` orderings (6 for `n = 3`).
    /// Permutations are produced in lexicographic order of parameter
    /// ids, so "order 1" … "order 6" match the paper's numbering when
    /// parameters are declared in ascending-domain order.
    pub fn all_orders(env: &ContextEnvironment) -> Vec<Self> {
        let ids: Vec<ParamId> = env.param_ids().collect();
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(ids.len());
        let mut used = vec![false; ids.len()];
        permute(&ids, &mut current, &mut used, &mut out);
        out
    }

    /// The worst-case cell count `m1·(1 + m2·(1 + … (1 + mn)))` of
    /// Section 3.3, taking `mi` as the extended-domain cardinality of
    /// the parameter at level `i`. Saturating.
    pub fn max_cells(&self, env: &ContextEnvironment) -> u128 {
        self.levels.iter().rev().fold(0u128, |inner, &p| {
            let m = env.hierarchy(p).edom_size() as u128;
            m.saturating_mul(1u128.saturating_add(inner))
        })
    }

    /// Render as `(location, temperature, …)` root-first.
    pub fn display<'a>(&'a self, env: &'a ContextEnvironment) -> impl fmt::Display + 'a {
        struct D<'a>(&'a ParamOrder, &'a ContextEnvironment);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "(")?;
                for (i, &p) in self.0.levels.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.1.hierarchy(p).name())?;
                }
                write!(f, ")")
            }
        }
        D(self, env)
    }
}

fn permute(
    ids: &[ParamId],
    current: &mut Vec<ParamId>,
    used: &mut [bool],
    out: &mut Vec<ParamOrder>,
) {
    if current.len() == ids.len() {
        out.push(ParamOrder {
            levels: current.clone(),
        });
        return;
    }
    for (i, &id) in ids.iter().enumerate() {
        if !used[i] {
            used[i] = true;
            current.push(id);
            permute(ids, current, used, out);
            current.pop();
            used[i] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_hierarchy::Hierarchy;

    fn env() -> ContextEnvironment {
        ContextEnvironment::new(vec![
            Hierarchy::balanced("big", &[100, 10]).unwrap(), // edom 111
            Hierarchy::balanced("small", &[4]).unwrap(),     // edom 5
            Hierarchy::balanced("mid", &[20, 5]).unwrap(),   // edom 26
        ])
        .unwrap()
    }

    #[test]
    fn identity_and_validation() {
        let e = env();
        let id = ParamOrder::identity(&e);
        assert_eq!(id.params(), &[ParamId(0), ParamId(1), ParamId(2)]);
        assert_eq!(id.param_at(1), ParamId(1));
        assert_eq!(id.len(), 3);
        assert!(!id.is_empty());
        assert!(ParamOrder::new(&e, vec![ParamId(0)]).is_err());
        assert!(ParamOrder::new(&e, vec![ParamId(0), ParamId(0), ParamId(1)]).is_err());
        assert!(ParamOrder::new(&e, vec![ParamId(0), ParamId(1), ParamId(9)]).is_err());
        ParamOrder::new(&e, vec![ParamId(2), ParamId(0), ParamId(1)]).unwrap();
    }

    #[test]
    fn by_names_resolves() {
        let e = env();
        let o = ParamOrder::by_names(&e, &["small", "mid", "big"]).unwrap();
        assert_eq!(o.params(), &[ParamId(1), ParamId(2), ParamId(0)]);
        assert!(ParamOrder::by_names(&e, &["small", "mid", "nope"]).is_err());
        assert_eq!(o.display(&e).to_string(), "(small, mid, big)");
    }

    #[test]
    fn ascending_domain_puts_large_last() {
        let e = env();
        let o = ParamOrder::by_ascending_domain(&e);
        assert_eq!(o.params(), &[ParamId(1), ParamId(2), ParamId(0)]);
    }

    #[test]
    fn all_orders_enumerates_permutations() {
        let e = env();
        let all = ParamOrder::all_orders(&e);
        assert_eq!(all.len(), 6);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn max_cells_formula() {
        let e = env();
        // Ascending: small(5), mid(26), big(111):
        // 5 * (1 + 26 * (1 + 111)) = 5 * (1 + 2912) = 14565.
        let asc = ParamOrder::by_names(&e, &["small", "mid", "big"]).unwrap();
        assert_eq!(asc.max_cells(&e), 14565);
        // Descending: 111 * (1 + 26 * (1 + 5)) = 111 * 157 = 17427.
        let desc = ParamOrder::by_names(&e, &["big", "mid", "small"]).unwrap();
        assert_eq!(desc.max_cells(&e), 17427);
        // The paper's claim: ascending-domain order minimizes the bound.
        let best = ParamOrder::all_orders(&e)
            .into_iter()
            .min_by_key(|o| o.max_cells(&e))
            .unwrap();
        assert_eq!(best.params(), asc.params());
    }
}
