/// Counts cell accesses during lookups — the cost metric of the paper's
/// performance evaluation (Figure 7 reports "number of cells accessed
/// to find related preferences to queries").
///
/// A *cell access* is one `[key, pointer]` cell examined in a profile
/// tree node, one context value examined in a serially stored
/// preference, or one leaf entry read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounter {
    cells: u64,
}

impl AccessCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` cell accesses.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.cells += n;
    }

    /// Record one cell access.
    #[inline]
    pub fn bump(&mut self) {
        self.cells += 1;
    }

    /// Total cells accessed so far.
    #[inline]
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// Reset to zero (for reuse across queries).
    pub fn reset(&mut self) {
        self.cells = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let mut c = AccessCounter::new();
        assert_eq!(c.cells(), 0);
        c.bump();
        c.add(4);
        assert_eq!(c.cells(), 5);
        c.reset();
        assert_eq!(c.cells(), 0);
    }
}
